#!/usr/bin/env python3
"""Documentation checker: internal links and CLI subcommand references.

Run from the repo root (CI's docs job does; ``tests/test_docs.py`` reuses
the functions):

    PYTHONPATH=src python tools/check_docs.py

Checks, over ``docs/*.md`` and ``README.md``:

* every relative markdown link ``[text](path)`` resolves to a file that
  exists (anchors are checked against the target file's headings);
* every ``repro <subcommand>`` named in a code span or fenced block is a
  real CLI subcommand — ``repro <cmd> --help`` must exit 0 — so the docs
  cannot drift ahead of (or behind) the CLI surface.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_INLINE_CODE = re.compile(r"`[^`]+`")
_SUBCOMMAND = re.compile(
    # Lookbehind keeps path-embedded mentions (~/.cache/repro, src/repro)
    # from reading their following word as a subcommand.
    r"(?:python -m repro\.cli|(?<![\w./-])repro)\s+([a-z][a-z0-9-]*)\b"
)
# Tokens that follow "repro" in code spans without being subcommands.
# ("daemon": docs quote the `repro serve` startup banner verbatim.)
_NOT_SUBCOMMANDS = frozenset({"console", "daemon"})


def doc_files() -> list[Path]:
    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    readme = REPO_ROOT / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def _slug(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\s-]", "", heading)
    return re.sub(r"\s+", "-", heading).strip("-")


def _anchors(path: Path) -> set[str]:
    return {_slug(h) for h in _HEADING.findall(path.read_text())}


def check_links(files: list[Path]) -> list[str]:
    """Relative-link problems across ``files`` (empty list = all good)."""
    problems = []
    for path in files:
        for target in _LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            raw, _, anchor = target.partition("#")
            resolved = (path.parent / raw).resolve() if raw else path
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
                continue
            if anchor and resolved.suffix == ".md" and _slug(
                anchor
            ) not in _anchors(resolved):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: missing anchor "
                    f"#{anchor} in {raw or path.name}"
                )
    return problems


def referenced_subcommands(files: list[Path]) -> set[str]:
    """`repro <cmd>` names appearing in the docs' code spans and blocks."""
    commands: set[str] = set()
    for path in files:
        text = path.read_text()
        code = "\n".join(
            _FENCE.findall(text) + _INLINE_CODE.findall(text)
        )
        commands.update(_SUBCOMMAND.findall(code))
    return commands - _NOT_SUBCOMMANDS


def check_subcommands(commands: set[str]) -> list[str]:
    """`repro <cmd> --help` failures for every referenced subcommand."""
    problems = []
    for command in sorted(commands):
        outcome = subprocess.run(
            [sys.executable, "-m", "repro.cli", command, "--help"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        if outcome.returncode != 0:
            stderr = outcome.stderr.strip()
            problems.append(
                f"documented subcommand `repro {command}` is not a real "
                f"CLI command (--help exited {outcome.returncode}): "
                f"{stderr.splitlines()[-1] if stderr else ''}"
            )
    return problems


def main() -> int:
    files = doc_files()
    if not files:
        print("no documentation files found", file=sys.stderr)
        return 1
    problems = check_links(files)
    commands = referenced_subcommands(files)
    if not commands:
        problems.append(
            "docs reference no `repro <cmd>` subcommands at all — the "
            "command check has nothing to pin"
        )
    problems += check_subcommands(commands)
    for name in files:
        print(f"checked {name.relative_to(REPO_ROOT)}")
    print(f"subcommands verified: {', '.join(sorted(commands)) or 'none'}")
    if problems:
        print("\n".join(problems), file=sys.stderr)
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
