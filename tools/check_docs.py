#!/usr/bin/env python3
"""Documentation checker — compatibility shim.

The implementation moved to :mod:`repro.analysis.docs` (the ``RPR4xx``
rules of ``repro lint --docs``); this wrapper keeps the historical
entry point and function signatures alive for CI muscle memory and
``tests/test_docs.py``:

    PYTHONPATH=src python tools/check_docs.py

is now exactly ``repro lint --docs --select RPR4`` with text output.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import docs as _docs  # noqa: E402

NOT_SUBCOMMANDS = _docs.NOT_SUBCOMMANDS


def doc_files() -> list[Path]:
    return _docs.doc_files(REPO_ROOT)


def check_links(files: list[Path]) -> list[str]:
    """Relative-link problems across ``files`` (empty list = all good)."""
    return [
        f"{finding.file}: {finding.message}"
        for finding in _docs.link_problems(files, REPO_ROOT)
    ]


def referenced_subcommands(files: list[Path]) -> set[str]:
    """`repro <cmd>` names appearing in the docs' code spans and blocks."""
    return set(_docs.subcommand_mentions(files))


def check_subcommands(commands: set[str]) -> list[str]:
    """`repro <cmd> --help` failures for every referenced subcommand."""
    mentions = {
        command: (REPO_ROOT / "README.md", 1) for command in commands
    }
    return [
        finding.message
        for finding in _docs.subcommand_problems(mentions, REPO_ROOT)
    ]


def main() -> int:
    findings = _docs.doc_findings(REPO_ROOT)
    files = doc_files()
    for name in files:
        print(f"checked {name.relative_to(REPO_ROOT)}")
    commands = referenced_subcommands(files)
    print(f"subcommands verified: {', '.join(sorted(commands)) or 'none'}")
    if findings:
        print(
            "\n".join(finding.text() for finding in findings),
            file=sys.stderr,
        )
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
