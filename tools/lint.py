#!/usr/bin/env python3
"""CI entry point for the repo's static analysis: ``repro lint``.

One process, one exit-code contract (0 clean / 1 findings / 2 error)
covering both the AST invariant rules (RPR1xx–RPR3xx) and the docs
checks (RPR4xx).  Runs, from any working directory:

    PYTHONPATH=src python -m repro.cli lint <repo>/src --docs

Extra *flags* are forwarded to ``repro lint`` (the CI job adds
``--format github --report lint-report.json``); to lint different
paths, call ``repro lint`` directly.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main  # noqa: E402


def run(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    return main([
        "lint", str(REPO_ROOT / "src"), "--docs",
        "--root", str(REPO_ROOT), *argv,
    ])


if __name__ == "__main__":
    raise SystemExit(run())
