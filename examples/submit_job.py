#!/usr/bin/env python3
"""Submit experiments to the `repro serve` job daemon and collect results.

Starts an in-process daemon on an ephemeral port (so the example is
self-contained — against a real deployment you would only construct the
``ServiceClient``), submits two jobs, waits for both, and prints the
run tables plus the daemon's own metrics. See docs/service.md for the
HTTP API this client wraps.
"""

import tempfile

from repro.pipeline import RunResult
from repro.reporting import render_run_table
from repro.service import Service, ServiceClient


def main() -> None:
    # A daemon you would normally start with `repro serve`. port=0 binds
    # an ephemeral port; state_dir holds the crash-safe event log.
    state_dir = tempfile.mkdtemp(prefix="repro-state-")
    with Service(state_dir=state_dir, port=0, workers=2) as service:
        client = ServiceClient(host=service.host, port=service.port)
        print(f"daemon up on http://{service.host}:{service.port} "
              f"({service.supervisor.num_workers} workers)")

        # 1. Submit two independent jobs; the pool runs them concurrently.
        #    A spec dict is exactly what an experiment TOML parses to.
        ids = []
        for attack in ("scope", "redundancy"):
            job = client.submit(
                {
                    "name": f"oracle-less-{attack}",
                    "benchmarks": [{"name": "c432"}],
                    "lock": {"locker": "rll", "key_size": 8, "seed": 7},
                    "synth": {"recipe": "none"},
                    "attacks": [{"name": attack}],
                },
                name=attack,
            )
            ids.append(job["id"])
            print(f"submitted {job['id']} ({attack}): {job['state']}")

        # 2. Wait for both (server-side the jobs run regardless; wait()
        #    is a client-side poll).
        for job_id in ids:
            job = client.wait(job_id, timeout_s=300)
            print(f"\njob {job_id} -> {job['state']} "
                  f"(attempts={job['attempts']})")
            run = RunResult.from_dict(job["result"])
            print(render_run_table(run))

        # 3. The daemon's aggregated view: per-job event logs + metrics.
        events = client.events(ids[0])
        print(f"\njob {ids[0]} logged {len(events)} events "
              f"({events[0]['event']} ... {events[-1]['event']})")
        metrics = client.metrics()
        for name in ("service.jobs_submitted", "service.jobs_completed",
                     "service.stages_executed", "service.stages_cached"):
            print(f"  {name}: {metrics.get(name, 0)}")


if __name__ == "__main__":
    main()
