#!/usr/bin/env python3
"""Explore the synthesis substrate directly: recipes, AIG stats, PPA.

Shows how the library can be used as a plain logic-synthesis toolkit,
independent of the security story: parse/construct circuits, apply ABC-style
recipes, inspect AIG statistics and map to the NanGate45-flavoured library.
"""

from repro import (
    RESYN2,
    Recipe,
    aig_from_netlist,
    analyze_ppa,
    apply_recipe,
    load_iscas85,
    map_aig,
    optimize_mapping,
    random_recipe,
)
from repro.netlist.bench_io import parse_bench
from repro.reporting import render_table


def main() -> None:
    # Hand-written .bench input works too.
    text = """
    INPUT(a)
    INPUT(b)
    INPUT(c)
    INPUT(d)
    OUTPUT(y)
    t1 = AND(a, b)
    t2 = AND(a, c)
    t3 = OR(t1, t2)
    y  = XOR(t3, d)
    """
    tiny = parse_bench("\n".join(l.strip() for l in text.splitlines()))
    tiny_aig = aig_from_netlist(tiny)
    optimized = apply_recipe(tiny_aig, Recipe.parse("b; rw; rf"))
    print(f"hand-written circuit: {tiny_aig.num_ands()} -> "
          f"{optimized.num_ands()} AND nodes "
          "(a(b+c) sharing found by rewrite)")

    # Recipe comparison on a benchmark.
    design = load_iscas85("c3540", scale="quick")
    aig = aig_from_netlist(design)
    recipes = {
        "resyn2": RESYN2,
        "rewrite only": Recipe.parse("rw; rw; rw"),
        "balance only": Recipe.parse("b; b"),
        "random-10": random_recipe(10, seed=4),
    }
    rows = []
    for name, recipe in recipes.items():
        result = apply_recipe(aig, recipe)
        mapped = map_aig(result)
        report = analyze_ppa(mapped)
        tuned = analyze_ppa(optimize_mapping(mapped))
        rows.append(
            [
                name,
                result.num_ands(),
                result.depth(),
                report.area,
                report.delay,
                tuned.delay,
                report.power,
            ]
        )
    print()
    print(render_table(
        ["recipe", "ands", "depth", "area um2", "delay ps",
         "delay +opt ps", "power uW"],
        rows,
        title=f"recipe comparison on c3540 (start: {aig.num_ands()} ands)",
    ))


if __name__ == "__main__":
    main()
