#!/usr/bin/env python3
"""SAT-resilient defenses vs. the oracle-guided attacks, in one grid.

The query-complexity story of the logic-locking literature, reproduced
end to end through the pipeline:

* bare **RLL** falls to the exact SAT attack in a handful of DIPs;
* **Anti-SAT** (and the RLL+Anti-SAT compound) starves the exact attack —
  the DIP count scales like ``2^width``, so the default budget runs out
  and the attack returns a *partial* key;
* **AppSAT** side-steps the point function: it settles on an approximate
  key (measured error of about one minterm) after a few DIPs.

Everything runs through declarative :class:`ExperimentSpec` grids, so each
(locker x attack) cell is cached and the whole sweep reruns warm.
"""

from repro.pipeline import (
    AttackSpec,
    BenchmarkSpec,
    ExperimentSpec,
    LockSpec,
    Runner,
    SynthSpec,
)
from repro.reporting import (
    QueryComplexityRecord,
    render_query_complexity_table,
)

BENCH = "c432"
LOCKERS = ("rll", "antisat", "rll+antisat")
ATTACKS = (
    AttackSpec("sat", params={"max_iterations": 64}),
    AttackSpec("appsat", params={"max_iterations": 64, "query_period": 4}),
)


def spec_for(locker: str) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"sat-resilience-{locker}",
        benchmarks=(BenchmarkSpec(name=BENCH),),
        lock=LockSpec(locker=locker, key_size=6, seed=7),
        synth=SynthSpec(recipe="none"),
        attacks=ATTACKS,
    )


def main() -> None:
    runner = Runner(jobs=2)
    records = []
    for locker in LOCKERS:
        print(f"{BENCH}: attacking the {locker} lock...")
        run = runner.run(spec_for(locker))
        for cell in run.cells:
            records.append(QueryComplexityRecord.from_cell(locker, cell))
    print()
    print(render_query_complexity_table(records))
    print()
    print("Reading the table: 'exact' cells recovered a provably correct")
    print("key; 'budget!' cells ran out of DIPs (the defense held against")
    print("the exact attack); '~err=' cells are AppSAT's approximate keys")
    print("with their measured error rates.")


if __name__ == "__main__":
    main()
