#!/usr/bin/env python3
"""Quickstart: lock a design, synthesize it, attack it, defend it.

Runs in under a minute on a laptop (tiny scaled-down budgets); see
examples/defense_flow.py for the full ALMOST pipeline with an adversarially
trained proxy model.
"""

from repro import (
    RESYN2,
    AlmostConfig,
    AlmostDefense,
    OmlaAttack,
    OmlaConfig,
    ProxyConfig,
    build_resyn2_proxy,
    load_iscas85,
    lock_rll,
    synthesize_and_map,
)


def main() -> None:
    # 1. A benchmark circuit, locked with plain RLL (fully vulnerable).
    design = load_iscas85("c1908", scale="quick")
    locked = lock_rll(design, key_size=16, seed=7)
    print(f"design {design.name}: {design.num_gates()} gates, "
          f"locked with {locked.key_size} key bits (key={locked.key})")

    # 2. The defender's conventional flow: resyn2 + technology mapping.
    netlist, mapped = synthesize_and_map(locked.netlist, RESYN2)
    print(f"resyn2 flow: {mapped.num_cells()} cells, "
          f"area {mapped.total_area():.1f} um^2")

    # 3. The attacker: OMLA, self-referencing against the known recipe.
    attack = OmlaAttack(
        RESYN2, OmlaConfig(epochs=15, num_relocks=4, relock_key_bits=16, seed=1)
    )
    training_data = attack.generate_training_data(locked.netlist)
    attack.train(training_data)
    baseline_result = attack.attack(mapped, locked.key)
    print(f"OMLA vs resyn2 netlist: {100 * baseline_result.accuracy:.1f}% "
          "key recovery")

    # 4. The ALMOST defense: search a recipe that drives the attack to ~50%.
    proxy = build_resyn2_proxy(
        locked, ProxyConfig(num_samples=48, epochs=15, relock_key_bits=16, seed=2)
    )
    defense = AlmostDefense(proxy, AlmostConfig(sa_iterations=10, seed=3))
    result = defense.generate_recipe()
    print(f"ALMOST recipe: {result.recipe} "
          f"(proxy-predicted accuracy {100 * result.predicted_accuracy:.1f}%)")

    # 5. Attack the ALMOST-synthesized netlist with a recipe-aware attacker.
    almost_netlist, almost_mapped = synthesize_and_map(
        locked.netlist, result.recipe
    )
    aware_attack = OmlaAttack(
        result.recipe,
        OmlaConfig(epochs=15, num_relocks=4, relock_key_bits=16, seed=4),
    )
    aware_attack.train(aware_attack.generate_training_data(locked.netlist))
    almost_result = aware_attack.attack(almost_mapped, locked.key)
    print(f"OMLA vs ALMOST netlist: {100 * almost_result.accuracy:.1f}% "
          "key recovery (50% = random guessing)")


if __name__ == "__main__":
    main()
