#!/usr/bin/env python3
"""Sec. IV-E threat study: can the attacker re-synthesize ALMOST away?

Builds an ALMOST-defended netlist, then plays the attacker: SA-search
recipes minimizing delay (and area) on the defended netlist while tracking
the proxy attack accuracy at every step.  Prints the two series and their
correlation — the defense holds if optimizing PPA does not recover accuracy.
"""

from repro import (
    AlmostConfig,
    ProxyConfig,
    build_resyn2_proxy,
    load_iscas85,
    lock_rll,
    synthesize_netlist,
)
from repro.core.almost import AlmostDefense
from repro.flows import attacker_resynthesis_sweep
from repro.flows.resynthesis import accuracy_metric_correlation
from repro.reporting import render_table

BENCH = "c1355"


def main() -> None:
    design = load_iscas85(BENCH, scale="quick")
    locked = lock_rll(design, key_size=16, seed=31)
    proxy = build_resyn2_proxy(
        locked, ProxyConfig(num_samples=48, epochs=15, relock_key_bits=24, seed=1)
    )
    defense = AlmostDefense(proxy, AlmostConfig(sa_iterations=10, seed=2))
    result = defense.generate_recipe()
    almost_netlist = synthesize_netlist(locked.netlist, result.recipe)
    print(f"ALMOST recipe on {BENCH}: {result.recipe} "
          f"(predicted accuracy {100 * result.predicted_accuracy:.1f}%)")

    for objective in ("delay", "area"):
        points = attacker_resynthesis_sweep(
            almost_netlist, proxy, objective=objective, iterations=12, seed=3
        )
        rows = [
            [p.iteration, p.recipe, p.metric_ratio, 100 * p.attack_accuracy]
            for p in points
        ]
        print()
        print(render_table(
            ["iter", "recipe", f"{objective} ratio", "attack acc %"],
            rows,
            title=f"attacker re-synthesis for {objective}",
        ))
        print(f"correlation({objective}, accuracy) = "
              f"{accuracy_metric_correlation(points):+.3f}")


if __name__ == "__main__":
    main()
