#!/usr/bin/env python3
"""The ALMOST defense flow (paper Fig. 3) as one pipeline experiment.

The declarative spec drives the whole defender story: lock the design, run
the ALMOST SA recipe search (the ``almost`` defense stage, proxy training
included), synthesize with the security-aware recipe, and evaluate real
attacks against the result — then the same attacks against the plain
``resyn2`` baseline for contrast.  Every stage is content-hash cached, so
rerunning (or re-evaluating with one more attack) reuses the expensive
search instead of repeating it.  Takes a few minutes cold at the default
budgets.
"""

from repro.flows import ppa_overhead_table
from repro.pipeline import (
    AttackSpec,
    BenchmarkSpec,
    DefenseSpec,
    ExperimentSpec,
    LockSpec,
    Runner,
)
from repro.reporting import render_run_table, render_table

BENCH = "c1355"
KEY_SIZE = 16

ATTACKS = (
    AttackSpec("scope"),
    AttackSpec("redundancy", params={"num_patterns": 128, "seed": 3}),
)

DEFENDED = ExperimentSpec(
    name="almost-defense",
    benchmarks=(BenchmarkSpec(name=BENCH, scale="quick"),),
    lock=LockSpec(locker="rll", key_size=KEY_SIZE, seed=5),
    defense=DefenseSpec(
        name="almost", iterations=15, samples=64, epochs=20, seed=11
    ),
    attacks=ATTACKS,
)

BASELINE = ExperimentSpec(
    name="resyn2-baseline",
    benchmarks=DEFENDED.benchmarks,
    lock=DEFENDED.lock,
    attacks=ATTACKS,
)


def main() -> None:
    runner = Runner(jobs=2)

    print(f"{BENCH}: running ALMOST SA search + attack evaluation...")
    defended = runner.run(DEFENDED)
    info = defended.cells[0].details["defense"]
    print(f"security-aware recipe: {defended.cells[0].recipe}")
    print(f"proxy-predicted attack accuracy: "
          f"{100 * info['predicted_accuracy']:.1f}%")

    print("\nevaluating the same attacks on the resyn2 baseline...")
    baseline = runner.run(BASELINE)

    print()
    print(render_run_table(defended, title="ALMOST recipe (defense on)"))
    print()
    print(render_run_table(baseline, title="resyn2 baseline (no defense)"))

    # --- PPA cost of the security-aware recipe --------------------------
    base_netlist = runner.cell_artifacts(BASELINE).get("synth").netlist
    almost_netlist = runner.cell_artifacts(DEFENDED).get("synth").netlist
    ppa = ppa_overhead_table(base_netlist, almost_netlist, name=BENCH)
    print("\nPPA overhead vs resyn2 (%):")
    print(render_table(list(ppa.row().keys()), [list(ppa.row().values())]))


if __name__ == "__main__":
    main()
