#!/usr/bin/env python3
"""The full ALMOST defense flow (paper Fig. 3) on one circuit.

Trains all three proxy variants (M_resyn2 / M_random / the adversarially
trained M*), compares their consistency across the recipe space, runs the
SA recipe search with M* as the evaluator, and reports the PPA cost of the
security-aware recipe.  Takes a few minutes at the default budgets.
"""

import numpy as np

from repro import (
    RESYN2,
    AlmostConfig,
    AlmostDefense,
    ProxyConfig,
    build_random_proxy,
    build_resyn2_proxy,
    load_iscas85,
    lock_rll,
    random_recipe,
    synthesize_netlist,
    train_adversarial_attack,
)
from repro.core.adversarial import AdversarialConfig
from repro.flows import ppa_overhead_table
from repro.reporting import render_table

BENCH = "c1355"
KEY_SIZE = 16
CONFIG = ProxyConfig(
    num_samples=64, epochs=20, relock_key_bits=24, num_random_recipes=6, seed=11
)


def main() -> None:
    design = load_iscas85(BENCH, scale="quick")
    locked = lock_rll(design, key_size=KEY_SIZE, seed=5)
    print(f"{BENCH}: {design.num_gates()} gates, key size {KEY_SIZE}")

    # --- proxy model comparison (Table I in miniature) -------------------
    print("\ntraining proxy models...")
    proxies = {
        "M_resyn2": build_resyn2_proxy(locked, CONFIG),
        "M_random": build_random_proxy(locked, CONFIG),
        "M*": train_adversarial_attack(
            locked,
            CONFIG,
            AdversarialConfig(period=6, augment_samples=16, sa_iterations=4),
        ),
    }
    random_set = [random_recipe(10, seed=100 + i) for i in range(4)]
    rows = []
    for name, proxy in proxies.items():
        on_resyn2 = proxy.predicted_accuracy(RESYN2) * 100
        on_random = np.mean(
            [proxy.predicted_accuracy(r) * 100 for r in random_set]
        )
        rows.append([name, on_resyn2, on_random, abs(on_resyn2 - on_random)])
    print(render_table(
        ["model", "resyn2 %", "random set %", "gap"], rows,
        title="proxy consistency",
    ))

    # --- security-aware recipe search ------------------------------------
    print("\nrunning ALMOST SA search with M* ...")
    defense = AlmostDefense(
        proxies["M*"], AlmostConfig(sa_iterations=15, seed=9)
    )
    result = defense.generate_recipe()
    print(f"recipe: {result.recipe}")
    print(f"predicted attack accuracy: {100 * result.predicted_accuracy:.1f}%")
    print("accuracy trace:",
          " ".join(f"{a:.2f}" for a in result.accuracy_trace()))

    # --- PPA cost ----------------------------------------------------------
    baseline = synthesize_netlist(locked.netlist, RESYN2)
    variant = synthesize_netlist(locked.netlist, result.recipe)
    ppa = ppa_overhead_table(baseline, variant, name=BENCH)
    print("\nPPA overhead vs resyn2 (%):")
    print(render_table(
        list(ppa.row().keys()), [list(ppa.row().values())],
    ))


if __name__ == "__main__":
    main()
