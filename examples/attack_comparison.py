#!/usr/bin/env python3
"""Compare all four oracle-less attacks on one locked benchmark.

Runs OMLA (GNN), SnapShot (MLP), SCOPE (unsupervised) and the redundancy
attack against the same resyn2-synthesized locked circuit and prints a
side-by-side accuracy table — the paper's Sec. II threat landscape.
"""

from repro import (
    RESYN2,
    OmlaAttack,
    OmlaConfig,
    RedundancyAttack,
    ScopeAttack,
    SnapShotAttack,
    load_iscas85,
    lock_rll,
    synthesize_and_map,
)
from repro.attacks.base import majority_baseline_accuracy
from repro.reporting import render_table

BENCH = "c1908"
KEY_SIZE = 16


def main() -> None:
    design = load_iscas85(BENCH, scale="quick")
    locked = lock_rll(design, key_size=KEY_SIZE, seed=23)
    netlist, mapped = synthesize_and_map(locked.netlist, RESYN2)
    print(f"{BENCH}: {design.num_gates()} gates, key {locked.key}")

    rows = []

    # OMLA: GNN over key-gate localities (self-referencing training).
    omla = OmlaAttack(
        RESYN2, OmlaConfig(epochs=20, num_relocks=6, relock_key_bits=16, seed=1)
    )
    training_data = omla.generate_training_data(locked.netlist)
    omla.train(training_data)
    rows.append(["OMLA (GNN)", 100 * omla.attack(mapped, locked.key).accuracy])

    # SnapShot: MLP over flattened locality histograms, same training data.
    snapshot = SnapShotAttack(epochs=60, seed=2)
    snapshot.train(training_data)
    rows.append(
        ["SnapShot (MLP)", 100 * snapshot.attack(mapped, locked.key).accuracy]
    )

    # SCOPE: unsupervised constant-propagation analysis.
    rows.append(
        ["SCOPE", 100 * ScopeAttack().attack(netlist, locked.key).accuracy]
    )

    # Redundancy: testability comparison per key hypothesis.
    rows.append(
        [
            "Redundancy",
            100
            * RedundancyAttack(num_patterns=128, seed=3)
            .attack(netlist, locked.key)
            .accuracy,
        ]
    )
    rows.append(
        ["majority-bit baseline", 100 * majority_baseline_accuracy(locked.key)]
    )
    rows.append(["random guessing", 50.0])

    print()
    print(render_table(["attack", "key-recovery %"], rows,
                       title=f"oracle-less attacks vs {BENCH} + resyn2"))


if __name__ == "__main__":
    main()
