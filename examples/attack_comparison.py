#!/usr/bin/env python3
"""Compare the oracle-less attacks on one locked benchmark — via the pipeline.

One declarative :class:`ExperimentSpec` replaces the old hand-wired
lock → synthesize → train → attack plumbing: the grid is
1 benchmark × 4 attacks, the lock/synth prefix is computed once and
content-hash cached, and rerunning this script is nearly free (every stage
hits the artifact cache).  The printed table is the paper's Sec. II threat
landscape.
"""

from repro.attacks.base import majority_baseline_accuracy
from repro.pipeline import (
    AttackSpec,
    BenchmarkSpec,
    ExperimentSpec,
    LockSpec,
    run_experiment,
)
from repro.reporting import render_table

BENCH = "c1908"
KEY_SIZE = 16

SPEC = ExperimentSpec(
    name="attack-comparison",
    benchmarks=(BenchmarkSpec(name=BENCH, scale="quick"),),
    lock=LockSpec(locker="rll", key_size=KEY_SIZE, seed=23),
    attacks=(
        AttackSpec("omla", params={
            "epochs": 20, "relock_bits": 16, "num_relocks": 6, "seed": 1,
        }),
        AttackSpec("snapshot", params={
            "epochs": 60, "relock_bits": 16, "num_relocks": 6, "seed": 2,
        }),
        AttackSpec("scope"),
        AttackSpec("redundancy", params={"num_patterns": 128, "seed": 3}),
    ),
)

LABELS = {
    "omla": "OMLA (GNN)",
    "snapshot": "SnapShot (MLP)",
    "scope": "SCOPE",
    "redundancy": "Redundancy",
}


def main() -> None:
    run = run_experiment(SPEC, jobs=2)
    print(f"{BENCH}: {len(run.cells)} attack cells, "
          f"{run.executed_stages} stages executed / "
          f"{run.cached_stages} cached, {run.elapsed_s:.1f}s")

    rows = [
        [LABELS.get(cell.attack, cell.attack), 100 * cell.accuracy]
        for cell in run.cells
    ]
    # Sanity floor: always guessing the key's majority bit.  The key is the
    # defender's secret; re-derive it from the spec's deterministic seed.
    from repro.locking import lock_rll
    from repro.circuits import load_iscas85

    locked = lock_rll(
        load_iscas85(BENCH, scale="quick"), key_size=KEY_SIZE, seed=23
    )
    rows.append(
        ["majority-bit baseline", 100 * majority_baseline_accuracy(locked.key)]
    )
    rows.append(["random guessing", 50.0])

    print()
    print(render_table(["attack", "key-recovery %"], rows,
                       title=f"oracle-less attacks vs {BENCH} + resyn2"))


if __name__ == "__main__":
    main()
