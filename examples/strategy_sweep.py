#!/usr/bin/env python3
"""A single-spec search-strategy sweep, end to end.

One :class:`~repro.pipeline.ExperimentSpec` declares ``strategy = ["sa",
"pt", "beam"]``; the runner expands it into one grid row per strategy —
same benchmark, same lock, same proxy budget, same seed — and the
``search`` reporter renders the comparison table from the single
:class:`~repro.pipeline.RunResult`.  The spec round-trips through a TOML
file on the way, so the exact experiment below is reproducible with
``repro grid --spec strategy_sweep.toml`` (or ``repro run``).

Budgets are kept small so the sweep finishes in about a minute cold; see
docs/search-tuning.md for what the knobs mean and when each strategy
wins.
"""

import tempfile
from pathlib import Path

from repro.pipeline import (
    BenchmarkSpec,
    DefenseSpec,
    ExperimentSpec,
    LockSpec,
    ReportSpec,
    Runner,
)
from repro.reporting import records_from_run

BENCH = "c432"
STRATEGIES = ["sa", "pt", "beam"]

SWEEP = ExperimentSpec(
    name="strategy-sweep",
    benchmarks=(BenchmarkSpec(name=BENCH),),
    lock=LockSpec(locker="rll", key_size=8, seed=5),
    defense=DefenseSpec(
        name="almost",
        iterations=4,
        samples=16,
        epochs=4,
        seed=11,
        strategy=STRATEGIES,
        chains=3,
    ),
    report=ReportSpec(format="search"),
)


def main() -> None:
    # The spec file *is* the experiment: write it, load it back, run it.
    with tempfile.TemporaryDirectory() as tmp:
        spec_path = Path(tmp) / "strategy_sweep.toml"
        SWEEP.dump(spec_path)
        spec = ExperimentSpec.load(spec_path)
    assert spec == SWEEP
    assert spec.defense.is_sweep and spec.defense.strategies == tuple(
        STRATEGIES
    )

    print(f"{BENCH}: one spec, {len(STRATEGIES)} strategies "
          f"({', '.join(STRATEGIES)}) on identical budgets...")
    runner = Runner()
    run = runner.run(spec)

    print()
    print(runner.report(run, spec))

    records = records_from_run(run)
    assert [r.strategy for r in records] == STRATEGIES
    best = min(records, key=lambda r: r.best_energy)
    print(f"\nclosest to the 50% target: {best.strategy} "
          f"(predicted attack accuracy "
          f"{100 * (best.predicted_accuracy or 0):.2f}%)")
    cached = [
        r.strategy for r in records if (r.cache_hit_rate or 0) > 0
    ]
    if cached:
        print(f"prefix-cache hits observed for: {', '.join(cached)} "
              "(batched strategies cluster candidates around shared "
              "recipe prefixes)")


if __name__ == "__main__":
    main()
