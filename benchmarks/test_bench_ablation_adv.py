"""Ablation — how much does adversarial augmentation buy M*?

DESIGN.md calls out Algorithm 1's data augmentation as the key design
choice.  This bench trains the same architecture with (a) no augmentation
(= M_random) and (b) adversarial augmentation (= M*), then compares
random-set accuracy and the resyn2-vs-random consistency gap.
"""

from __future__ import annotations

import numpy as np

import pytest

from repro.reporting import render_table
from repro.synth import RESYN2

pytestmark = pytest.mark.slow  # heavy SA/ML experiment; tier-1 skips it (CI runs -m "")


def test_ablation_adversarial_augmentation(workspace, scale, benchmark):
    name = scale.benchmarks[0]
    benchmark.pedantic(
        lambda: workspace.proxy(name, "M_random"), rounds=1, iterations=1
    )

    rows = []
    summary = {}
    for variant in ("M_random", "M*"):
        proxy = workspace.proxy(name, variant)
        resyn2_acc = proxy.predicted_accuracy(RESYN2) * 100
        random_accs = [
            proxy.predicted_accuracy(r) * 100
            for r in workspace.random_recipe_set()
        ]
        mean_random = float(np.mean(random_accs))
        spread = float(np.std(random_accs))
        rows.append(
            [variant, resyn2_acc, mean_random, abs(resyn2_acc - mean_random), spread]
        )
        summary[variant] = (mean_random, spread)
    print()
    print(
        render_table(
            ["variant", "resyn2 %", "random mean %", "gap", "random std"],
            rows,
            title=f"Ablation: adversarial augmentation on {name}",
        )
    )
    # The adversarially trained model should not be *less* consistent
    # (slack: two key-bit flips at the current key size).
    bit_worth = 100.0 / workspace.key_size()
    assert rows[1][3] <= rows[0][3] + 2.0 * bit_worth
