"""Shared benchmark workspace: cached locked circuits, victims and proxies.

Every experiment bench draws from one session-scoped :class:`Workspace`, so
an expensive artifact (a trained proxy model, an ALMOST recipe) is built at
most once per pytest session regardless of how many benches consume it.

Scale is controlled by ``REPRO_SCALE`` (quick | standard | full); see
``repro.reporting.scale`` and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.circuits import load_iscas85
from repro.core.adversarial import AdversarialConfig, train_adversarial_attack
from repro.core.almost import AlmostConfig, AlmostDefense, AlmostResult
from repro.core.proxy import (
    ProxyConfig,
    ProxyModel,
    build_random_proxy,
    build_resyn2_proxy,
)
from repro.locking import LockedCircuit, lock_rll
from repro.reporting.scale import Scale, resolve_scale
from repro.synth import RESYN2, Recipe, random_recipe
from repro.synth.engine import synthesize_and_map
from repro.utils.rng import derive_seed

BASE_SEED = 2023  # the DAC year, why not


@dataclass
class Workspace:
    """Lazily built, memoized experiment artifacts."""

    scale: Scale
    _locked: dict = field(default_factory=dict)
    _victims: dict = field(default_factory=dict)
    _proxies: dict = field(default_factory=dict)
    _almost: dict = field(default_factory=dict)
    _random_sets: dict = field(default_factory=dict)

    # -- base artifacts ---------------------------------------------------

    def key_size(self) -> int:
        return self.scale.key_sizes[0]

    def locked(self, name: str, key_size: int | None = None) -> LockedCircuit:
        key_size = key_size if key_size is not None else self.key_size()
        key = (name, key_size)
        if key not in self._locked:
            netlist = load_iscas85(
                name, scale=self.scale.circuit_scale, seed=BASE_SEED
            )
            self._locked[key] = lock_rll(
                netlist, key_size=key_size, seed=derive_seed(BASE_SEED, name)
            )
        return self._locked[key]

    def victim(self, name: str, recipe: Recipe = RESYN2, key_size=None):
        """(netlist, mapped) of the locked circuit under ``recipe``."""
        key = (name, recipe.short(), key_size)
        if key not in self._victims:
            locked = self.locked(name, key_size)
            self._victims[key] = synthesize_and_map(locked.netlist, recipe)
        return self._victims[key]

    # -- proxies -------------------------------------------------------------

    def proxy_config(self, name: str) -> ProxyConfig:
        return ProxyConfig(
            num_samples=self.scale.proxy_samples,
            epochs=self.scale.proxy_epochs,
            relock_key_bits=min(self.key_size() * 2, 48),
            num_random_recipes=max(4, self.scale.random_set_size // 2),
            seed=derive_seed(BASE_SEED, "proxy", name),
        )

    def proxy(self, name: str, variant: str) -> ProxyModel:
        key = (name, variant)
        if key not in self._proxies:
            locked = self.locked(name)
            config = self.proxy_config(name)
            if variant == "M_resyn2":
                self._proxies[key] = build_resyn2_proxy(locked, config)
            elif variant == "M_random":
                self._proxies[key] = build_random_proxy(locked, config)
            elif variant == "M*":
                self._proxies[key] = train_adversarial_attack(
                    locked,
                    config,
                    AdversarialConfig(
                        period=self.scale.adv_period,
                        augment_samples=self.scale.adv_augment,
                        sa_iterations=max(2, self.scale.sa_iterations // 4),
                        max_rounds=self.scale.adv_rounds,
                    ),
                )
            else:
                raise ValueError(f"unknown proxy variant {variant!r}")
        return self._proxies[key]

    # -- random recipe set (Table I) --------------------------------------------

    def random_recipe_set(self, count: int | None = None) -> list[Recipe]:
        count = count if count is not None else self.scale.random_set_size
        if count not in self._random_sets:
            self._random_sets[count] = [
                random_recipe(10, seed=derive_seed(BASE_SEED, "randset", i))
                for i in range(count)
            ]
        return self._random_sets[count]

    # -- ALMOST runs ------------------------------------------------------------

    def almost(self, name: str, variant: str = "M*") -> AlmostResult:
        key = (name, variant)
        if key not in self._almost:
            proxy = self.proxy(name, variant)
            defense = AlmostDefense(
                proxy,
                AlmostConfig(
                    sa_iterations=self.scale.sa_iterations,
                    seed=derive_seed(BASE_SEED, "almost", name, variant),
                ),
            )
            self._almost[key] = defense.generate_recipe()
        return self._almost[key]


@pytest.fixture(scope="session")
def workspace() -> Workspace:
    return Workspace(scale=resolve_scale())


@pytest.fixture(scope="session")
def scale() -> Scale:
    return resolve_scale()
