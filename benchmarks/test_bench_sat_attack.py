"""SAT-attack scaling — DIP-loop growth over circuits and key sizes.

Not a paper table: the paper's defense targets *oracle-less* attacks, and
this bench characterizes the contrasting oracle-guided threat the SAT
subsystem introduces.  It tracks how many distinguishing-input iterations
and how much solver effort the DIP loop needs on ISCAS-85-style circuits as
the key widens, and cross-checks every recovered key exactly: a key the
miter cannot distinguish from the oracle's is a functionally correct
unlock, whatever its bit-level Hamming distance to the defender's key.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.attacks import SatAttack, SatAttackConfig
from repro.attacks.sat_attack import DipLoop, oracle_from_key
from repro.circuits import load_iscas85
from repro.defenses import lock_antisat
from repro.locking import apply_key
from repro.locking.key import Key
from repro.reporting import SatAttackRecord, render_sat_attack_table
from repro.sat import check_equivalence
from repro.utils.rng import derive_seed

DIP_BUDGET = 512
ARM_SEED = 2023  # pinned incremental-vs-cold workload (see BENCH_sat.json)
ANTISAT_WIDTH = 4
ARM_STATS = (
    "conflicts", "decisions", "propagations", "restarts",
    "db_reductions", "learned_deleted", "minimized_lits",
)


def _run_one(locked):
    result = SatAttack(SatAttackConfig(max_iterations=DIP_BUDGET)).attack(locked)
    recovered = apply_key(locked.netlist, Key(result.predicted_bits))
    reference = apply_key(locked.netlist, locked.key)
    verdict = check_equivalence(recovered, reference)
    return result, verdict


def test_bench_sat_attack_dip_scaling(workspace, scale, benchmark):
    smallest = scale.benchmarks[0]
    locked0 = workspace.locked(smallest)
    benchmark.pedantic(
        lambda: SatAttack(SatAttackConfig(max_iterations=DIP_BUDGET)).attack(
            locked0
        ),
        rounds=1,
        iterations=1,
    )

    records = []
    key_sizes = sorted({*scale.key_sizes, max(4, scale.key_sizes[0] // 2)})
    for name in scale.benchmarks:
        for key_size in key_sizes:
            locked = workspace.locked(name, key_size)
            result, verdict = _run_one(locked)
            records.append(
                SatAttackRecord.from_result(
                    f"{name}/k{key_size}",
                    result,
                    functionally_correct=verdict.equivalent,
                )
            )
            assert verdict.equivalent, (
                f"SAT attack returned a wrong key on {name} k={key_size}"
            )
            assert result.details["iterations"] <= DIP_BUDGET

    print()
    print(render_sat_attack_table(records))
    # The DIP loop must terminate well inside the budget at these scales.
    assert max(r.iterations for r in records) < DIP_BUDGET


def _run_arm(locked, backend):
    """Drive the DipLoop to completion under ``backend``; best-of-2 time.

    Canonical (lex-min) DIP extraction pins both arms to the same DIP
    sequence, so the comparison is pure solver work, not luck in which
    model the search surfaced first.
    """
    best = float("inf")
    outcome = None
    for _ in range(2):
        oracle = oracle_from_key(locked.netlist, locked.key)
        started = time.perf_counter()
        loop = DipLoop(
            locked.netlist, oracle, backend=backend, canonical_dips=True
        )
        dips = []
        while len(dips) <= DIP_BUDGET:
            pattern = loop.find_dip()
            if pattern is None:
                break
            dips.append(tuple(int(b) for b in pattern))
            loop.observe(pattern)
        key = loop.extract_key()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            outcome = (dips, key, loop.iterations, loop.solver_stats())
    dips, key, iterations, stats = outcome
    return {
        "elapsed_s": round(best, 4),
        "iterations": iterations,
        **{name: stats[name] for name in ARM_STATS},
    }, dips, key


def test_bench_sat_attack_incremental_vs_cold(scale):
    """The tentpole gate: one persistent solver across the DIP loop vs.
    the seed behavior (a cold solver per call, learned clauses thrown
    away).  Anti-SAT on c432 is the pinned workload because its
    point-function structure forces a long DIP sequence over one CNF —
    exactly where learned-clause reuse should pay.

    Writes ``BENCH_sat.json`` (schema in docs/benchmarks.md).  CI fails
    below 1.5x; the measured speedup target is >= 2x.
    """
    netlist = load_iscas85("c432", scale=scale.circuit_scale, seed=ARM_SEED)
    locked = lock_antisat(
        netlist, width=ANTISAT_WIDTH, seed=derive_seed(ARM_SEED, "antisat")
    )
    arms = {}
    dip_traces = {}
    keys = {}
    for backend in ("cold", "incremental"):
        arms[backend], dip_traces[backend], keys[backend] = _run_arm(
            locked, backend
        )

    # Correctness before speed: both arms replay bit-identically and the
    # recovered key actually unlocks the circuit.
    assert keys["incremental"] == keys["cold"]
    assert dip_traces["incremental"] == dip_traces["cold"]
    assert arms["incremental"]["iterations"] == arms["cold"]["iterations"]
    unlocked = apply_key(locked.netlist, Key(keys["incremental"]))
    assert check_equivalence(unlocked, netlist).equivalent

    speedup = arms["cold"]["elapsed_s"] / arms["incremental"]["elapsed_s"]
    payload = {
        "bench": "sat_attack",
        "workload": {
            "circuit": "c432",
            "circuit_scale": scale.circuit_scale,
            "defense": "antisat",
            "antisat_width": ANTISAT_WIDTH,
            "key_size": len(locked.key.bits),
            "dip_budget": DIP_BUDGET,
            "seed": ARM_SEED,
        },
        "arms": arms,
        "speedup": round(speedup, 2),
        "identical_replay": True,
    }
    Path("BENCH_sat.json").write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(
        f"cold {arms['cold']['elapsed_s']:.3f}s / "
        f"incremental {arms['incremental']['elapsed_s']:.3f}s "
        f"({speedup:.2f}x) over {arms['cold']['iterations']} DIPs; "
        f"conflicts {arms['cold']['conflicts']} -> "
        f"{arms['incremental']['conflicts']}"
    )
    assert speedup >= 1.5, (
        f"incremental arm only {speedup:.2f}x over cold start: {payload}"
    )


def test_bench_sat_attack_vs_oracle_less(workspace, scale):
    """Side-by-side: exact oracle-guided recovery vs. the paper's ML attack."""
    from repro.attacks import ScopeAttack

    name = scale.benchmarks[0]
    locked = workspace.locked(name)
    sat_result, verdict = _run_one(locked)
    netlist, _mapped = workspace.victim(name)
    scope_acc = ScopeAttack().attack(netlist, locked.key).accuracy

    print()
    print(
        render_sat_attack_table(
            [
                SatAttackRecord.from_result(
                    name, sat_result, functionally_correct=verdict.equivalent
                )
            ],
            ml_accuracies={name: scope_acc},
        )
    )
    # The oracle-guided attack fully breaks RLL where oracle-less SCOPE
    # hovers near guessing — the gap ALMOST's threat model is scoped to.
    assert verdict.equivalent
