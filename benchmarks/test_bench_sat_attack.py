"""SAT-attack scaling — DIP-loop growth over circuits and key sizes.

Not a paper table: the paper's defense targets *oracle-less* attacks, and
this bench characterizes the contrasting oracle-guided threat the SAT
subsystem introduces.  It tracks how many distinguishing-input iterations
and how much solver effort the DIP loop needs on ISCAS-85-style circuits as
the key widens, and cross-checks every recovered key exactly: a key the
miter cannot distinguish from the oracle's is a functionally correct
unlock, whatever its bit-level Hamming distance to the defender's key.
"""

from __future__ import annotations

from repro.attacks import SatAttack, SatAttackConfig
from repro.locking import apply_key
from repro.locking.key import Key
from repro.reporting import SatAttackRecord, render_sat_attack_table
from repro.sat import check_equivalence

DIP_BUDGET = 512


def _run_one(locked):
    result = SatAttack(SatAttackConfig(max_iterations=DIP_BUDGET)).attack(locked)
    recovered = apply_key(locked.netlist, Key(result.predicted_bits))
    reference = apply_key(locked.netlist, locked.key)
    verdict = check_equivalence(recovered, reference)
    return result, verdict


def test_bench_sat_attack_dip_scaling(workspace, scale, benchmark):
    smallest = scale.benchmarks[0]
    locked0 = workspace.locked(smallest)
    benchmark.pedantic(
        lambda: SatAttack(SatAttackConfig(max_iterations=DIP_BUDGET)).attack(
            locked0
        ),
        rounds=1,
        iterations=1,
    )

    records = []
    key_sizes = sorted({*scale.key_sizes, max(4, scale.key_sizes[0] // 2)})
    for name in scale.benchmarks:
        for key_size in key_sizes:
            locked = workspace.locked(name, key_size)
            result, verdict = _run_one(locked)
            records.append(
                SatAttackRecord.from_result(
                    f"{name}/k{key_size}",
                    result,
                    functionally_correct=verdict.equivalent,
                )
            )
            assert verdict.equivalent, (
                f"SAT attack returned a wrong key on {name} k={key_size}"
            )
            assert result.details["iterations"] <= DIP_BUDGET

    print()
    print(render_sat_attack_table(records))
    # The DIP loop must terminate well inside the budget at these scales.
    assert max(r.iterations for r in records) < DIP_BUDGET


def test_bench_sat_attack_vs_oracle_less(workspace, scale):
    """Side-by-side: exact oracle-guided recovery vs. the paper's ML attack."""
    from repro.attacks import ScopeAttack

    name = scale.benchmarks[0]
    locked = workspace.locked(name)
    sat_result, verdict = _run_one(locked)
    netlist, _mapped = workspace.victim(name)
    scope_acc = ScopeAttack().attack(netlist, locked.key).accuracy

    print()
    print(
        render_sat_attack_table(
            [
                SatAttackRecord.from_result(
                    name, sat_result, functionally_correct=verdict.equivalent
                )
            ],
            ml_accuracies={name: scope_acc},
        )
    )
    # The oracle-guided attack fully breaks RLL where oracle-less SCOPE
    # hovers near guessing — the gap ALMOST's threat model is scoped to.
    assert verdict.equivalent
