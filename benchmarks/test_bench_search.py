"""Search-engine benchmark: prefix-cached parallel search vs the seed SA.

Two pins, matching the search-engine refactor's contract:

1. **Fidelity** — the default ``sa`` strategy with paper defaults
   reproduces the seed annealer's trace bit-for-bit on a fixed seed, both
   on a synthetic energy (full 100-iteration schedule) and through the
   real ALMOST + proxy stack (prefix-cached synthesis included — exact
   AIG-snapshot resume keeps the energies identical).
2. **Throughput** — on the same energy-evaluation budget, the
   prefix-cached parallel search (``pt`` chains + process fan-out when
   cores are available) beats a faithful re-implementation of the seed
   serial SA by >= 3x with >= 2 workers, and by >= 1.5x from prefix
   caching alone on a single core.
3. **Shared cache** — with ``jobs`` >= 2 the workers synthesize through
   one cross-process :class:`~repro.synth.cache.SharedSynthCache`; its
   aggregated prefix hit rate must stay >= 0.9x the serial run's on the
   identical candidate stream (per-worker private caches would start
   cold and forfeit the fan-out win).

The measured numbers — including ``serial_hit_rate`` / ``shared_hit_rate``
— are written to ``BENCH_search.json`` (uploaded as a CI artifact) so the
perf trajectory accumulates data points; ``docs/benchmarks.md`` documents
the format.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro.circuits import load_iscas85
from repro.core.almost import AlmostConfig, AlmostDefense
from repro.core.proxy import ProxyConfig, ProxyModel, build_resyn2_proxy
from repro.locking import lock_rll
from repro.reporting import (
    SearchStrategyRecord,
    render_search_comparison_table,
)
from repro.synth.cache import SynthCache
from repro.synth.recipe import TRANSFORM_NAMES, random_recipe
from repro.utils.rng import derive_seed, make_rng

pytestmark = pytest.mark.slow  # minute-scale search bench; tier-1 skips it (CI runs -m "")

BENCH_SEED = 2023
CIRCUIT = "c1355"
KEY_SIZE = 16
CHAINS = 8
ROUNDS = 3                      # pt budget: CHAINS * (ROUNDS + 1) evals
BUDGET = CHAINS * (ROUNDS + 1)  # == seed SA iterations + 1


def _neighbour(recipe, rng):
    position = int(rng.integers(len(recipe)))
    step = TRANSFORM_NAMES[int(rng.integers(len(TRANSFORM_NAMES)))]
    return recipe.with_step(position, step)


def _seed_annealer(initial_state, energy_fn, neighbour_fn, *, iterations,
                   seed, t_initial=120.0, acceptance=1.8, cooling=0.95,
                   trace_fn=None, stop_energy=None):
    """Verbatim re-implementation of the seed (pre-refactor) SA loop."""
    rng = make_rng(seed)
    current = initial_state
    current_energy = energy_fn(current)
    best = current
    best_energy = current_energy
    temperature = t_initial
    trace = []

    def record(iteration, state, energy, accepted):
        entry = {
            "iteration": iteration,
            "energy": energy,
            "best_energy": best_energy,
            "temperature": temperature,
            "accepted": accepted,
        }
        if trace_fn is not None:
            entry.update(trace_fn(state, energy))
        trace.append(entry)

    record(0, current, current_energy, True)
    for iteration in range(1, iterations + 1):
        candidate = neighbour_fn(current, rng)
        candidate_energy = energy_fn(candidate)
        delta = candidate_energy - current_energy
        if delta <= 0:
            accepted = True
        else:
            probability = math.exp(
                -delta * acceptance / max(temperature, 1e-9)
            )
            accepted = bool(rng.random() < probability)
        if accepted:
            current = candidate
            current_energy = candidate_energy
            if current_energy < best_energy:
                best = current
                best_energy = current_energy
        record(iteration, current, current_energy, accepted)
        temperature *= cooling
        if stop_energy is not None and best_energy <= stop_energy:
            break
    return best, best_energy, trace


@pytest.fixture(scope="module")
def locked():
    netlist = load_iscas85(CIRCUIT, scale="quick")
    return lock_rll(
        netlist, key_size=KEY_SIZE, seed=derive_seed(BENCH_SEED, CIRCUIT)
    )


@pytest.fixture(scope="module")
def trained_attack(locked):
    proxy = build_resyn2_proxy(
        locked,
        ProxyConfig(
            num_samples=24, epochs=4, relock_key_bits=KEY_SIZE,
            seed=derive_seed(BENCH_SEED, "bench-proxy"),
        ),
    )
    return proxy.attack


def _fresh_proxy(trained_attack, locked, name, cached: bool) -> ProxyModel:
    """A proxy sharing the trained model but with private score caches."""
    return ProxyModel(
        name=name,
        attack=trained_attack,
        locked=locked,
        synth_cache=SynthCache() if cached else None,
    )


def test_bench_sa_strategy_reproduces_seed_trace(
    locked, trained_attack, benchmark
):
    """Paper-fidelity pin: default sa == seed annealer, bit for bit."""
    # Full paper schedule on a deterministic synthetic energy.
    from repro.core.sa import SaConfig, simulated_annealing

    def synthetic_energy(recipe):
        return abs(derive_seed(7, *recipe.steps) % 10_000 / 10_000 - 0.5)

    start = random_recipe(10, seed=derive_seed(BENCH_SEED, "fidelity"))
    config = SaConfig()  # paper defaults: 100 iterations, T0=120, a=1.8
    best, best_energy, legacy = _seed_annealer(
        start, synthetic_energy, _neighbour,
        iterations=config.iterations, seed=config.seed,
    )
    result = benchmark.pedantic(
        lambda: simulated_annealing(
            start, synthetic_energy, _neighbour, config
        ),
        rounds=1, iterations=1,
    )
    assert result.best_state == best
    assert result.best_energy == best_energy
    assert len(result.trace) == len(legacy)
    for new, old in zip(result.trace, legacy):
        assert {key: new[key] for key in old} == old

    # Short run through the real ALMOST + proxy stack: the seed reference
    # scores without the prefix cache, the new engine with it — exact
    # snapshot resume must keep every accuracy (hence the trace) identical.
    almost_seed = derive_seed(BENCH_SEED, "fidelity-almost")
    reference_proxy = _fresh_proxy(trained_attack, locked, "seed", cached=False)

    def reference_energy(recipe):
        return abs(reference_proxy.predicted_accuracy(recipe) - 0.5)

    ref_best, _ref_energy, ref_trace = _seed_annealer(
        random_recipe(10, seed=derive_seed(almost_seed, "start")),
        reference_energy,
        _neighbour,
        iterations=6,
        seed=derive_seed(almost_seed, "sa"),
        stop_energy=0.005,
        trace_fn=lambda recipe, energy: {"recipe": recipe.short()},
    )
    modern_proxy = _fresh_proxy(trained_attack, locked, "new", cached=True)
    modern = AlmostDefense(
        modern_proxy, AlmostConfig(sa_iterations=6, seed=almost_seed)
    ).generate_recipe()
    assert modern.recipe == ref_best
    assert len(modern.trace) == len(ref_trace)
    for new, old in zip(modern.trace, ref_trace):
        assert {key: new[key] for key in old} == old
    print(
        f"\nfidelity: sa trace identical to seed annealer over "
        f"{len(legacy)} synthetic + {len(ref_trace)} proxy-scored entries"
    )


def test_bench_prefix_cached_parallel_search_speedup(locked, trained_attack):
    """Throughput pins on the same energy-evaluation budget:

    * speedup — >= 3x over the seed serial SA with >= 2 cores
      (>= 1.5x from prefix caching alone on a single core);
    * shared cache — with ``jobs`` >= 2 every worker synthesizes through
      one :class:`~repro.synth.cache.SharedSynthCache`, whose aggregated
      prefix hit rate must stay >= 0.9x the serial run's (a private
      per-worker cache would start cold in every process and fail this).
    """
    search_seed = derive_seed(BENCH_SEED, "bench-search")

    # -- seed serial SA: per-candidate synthesis, no prefix cache ---------
    seed_proxy = _fresh_proxy(trained_attack, locked, "seed", cached=False)

    def seed_energy(recipe):
        return abs(seed_proxy.predicted_accuracy(recipe) - 0.5)

    started = time.perf_counter()
    _best, seed_best_energy, seed_trace = _seed_annealer(
        random_recipe(10, seed=derive_seed(search_seed, "start")),
        seed_energy,
        _neighbour,
        iterations=BUDGET - 1,
        seed=derive_seed(search_seed, "sa"),
    )
    seed_elapsed = time.perf_counter() - started
    seed_evaluations = len(seed_trace)  # initial + one per iteration

    def cached_search(jobs: int):
        proxy = _fresh_proxy(
            trained_attack, locked, f"new-j{jobs}", cached=True
        )
        defense = AlmostDefense(
            proxy,
            AlmostConfig(
                sa_iterations=ROUNDS,
                seed=search_seed,
                strategy="pt",
                chains=CHAINS,
                jobs=jobs,
                stop_margin=-1.0,  # never early-exit: spend the whole budget
            ),
        )
        started = time.perf_counter()
        result = defense.generate_recipe()
        return result, time.perf_counter() - started

    # -- prefix-cached serial search: the single-process hit-rate baseline
    serial_result, serial_elapsed = cached_search(jobs=1)
    serial_stats = serial_result.synth_cache
    serial_hit_rate = serial_stats["hit_rate"]
    assert serial_result.energy_evaluations == BUDGET == seed_evaluations
    assert serial_hit_rate >= 0.25, serial_stats

    # -- same search, same budget, >= 2 workers on one shared cache -------
    cpus = os.cpu_count() or 1
    shared_jobs = max(2, min(4, cpus))
    shared_result, shared_elapsed = cached_search(jobs=shared_jobs)
    shared_stats = shared_result.synth_cache
    shared_hit_rate = shared_stats["hit_rate"]
    assert shared_result.energy_evaluations == BUDGET
    # pt is deterministic per seed under any evaluator, so the fan-out must
    # land on the exact serial result (shared snapshots are exact resumes).
    assert shared_result.recipe == serial_result.recipe
    assert shared_result.predicted_accuracy == serial_result.predicted_accuracy

    # The wall-clock pin follows the hardware: parallel 3x needs real
    # cores, the 1.5x single-core pin isolates the prefix-cache win.
    if cpus >= 2:
        fast_elapsed, jobs, minimum = shared_elapsed, shared_jobs, 3.0
    else:
        fast_elapsed, jobs, minimum = serial_elapsed, 1, 1.5
    speedup = seed_elapsed / fast_elapsed
    records = [
        SearchStrategyRecord(
            strategy="sa (seed, uncached)", chains=1, jobs=1,
            best_energy=seed_best_energy,
            predicted_accuracy=None,
            iterations=seed_evaluations - 1,
            energy_evaluations=seed_evaluations,
            elapsed_s=seed_elapsed,
        ),
        SearchStrategyRecord(
            strategy="pt (prefix-cached)", chains=CHAINS, jobs=1,
            best_energy=abs(serial_result.predicted_accuracy - 0.5),
            predicted_accuracy=serial_result.predicted_accuracy,
            iterations=serial_result.iterations,
            energy_evaluations=serial_result.energy_evaluations,
            elapsed_s=serial_elapsed,
            cache_hit_rate=serial_hit_rate,
        ),
        SearchStrategyRecord(
            strategy="pt (shared cache)", chains=CHAINS, jobs=shared_jobs,
            best_energy=abs(shared_result.predicted_accuracy - 0.5),
            predicted_accuracy=shared_result.predicted_accuracy,
            iterations=shared_result.iterations,
            energy_evaluations=shared_result.energy_evaluations,
            elapsed_s=shared_elapsed,
            cache_hit_rate=shared_hit_rate,
        ),
    ]
    print()
    print(render_search_comparison_table(
        records,
        title=f"Search engines on {CIRCUIT} (budget {BUDGET} evals)",
    ))
    print(f"speedup: {speedup:.2f}x (jobs={jobs}); shared-cache hit rate "
          f"{100 * shared_hit_rate:.1f}% vs serial "
          f"{100 * serial_hit_rate:.1f}%")

    payload = {
        "bench": "search",
        "circuit": CIRCUIT,
        "key_size": KEY_SIZE,
        "budget_evaluations": BUDGET,
        "jobs": jobs,
        "shared_jobs": shared_jobs,
        "chains": CHAINS,
        "seed_serial_s": round(seed_elapsed, 3),
        "prefix_cached_serial_s": round(serial_elapsed, 3),
        "prefix_cached_parallel_s": round(shared_elapsed, 3),
        "speedup": round(speedup, 3),
        "seed_evals_per_s": round(seed_evaluations / seed_elapsed, 3),
        # Throughput of the run the speedup is measured on (parallel when
        # cores allow, serial-cached otherwise) — same semantics as the
        # pre-shared-cache bench, so the trajectory stays comparable.
        "new_evals_per_s": round(BUDGET / fast_elapsed, 3),
        "serial_evals_per_s": round(BUDGET / serial_elapsed, 3),
        "serial_hit_rate": serial_hit_rate,
        "shared_hit_rate": shared_hit_rate,
        "prefix_cache": serial_stats,
        "shared_cache": shared_stats,
    }
    Path("BENCH_search.json").write_text(json.dumps(payload, indent=2) + "\n")

    # Cross-worker sharing pin: fan-out must keep (within tolerance — two
    # workers can race to synthesize the same prefix once each) the hit
    # rate the serial path gets on the identical candidate stream.
    assert shared_hit_rate >= 0.9 * serial_hit_rate, payload

    assert speedup >= minimum, (
        f"prefix-cached {'parallel ' if jobs >= 2 else ''}search managed "
        f"only {speedup:.2f}x over the seed serial SA "
        f"(needed {minimum}x, jobs={jobs}): {payload}"
    )
