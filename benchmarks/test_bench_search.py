"""Search-engine benchmark: prefix-cached parallel search vs the seed SA.

Two pins, matching the search-engine refactor's contract:

1. **Fidelity** — the default ``sa`` strategy with paper defaults
   reproduces the seed annealer's trace bit-for-bit on a fixed seed, both
   on a synthetic energy (full 100-iteration schedule) and through the
   real ALMOST + proxy stack (prefix-cached synthesis included — exact
   AIG-snapshot resume keeps the energies identical).
2. **Throughput** — on the same energy-evaluation budget, the
   prefix-cached parallel search (``pt`` chains + process fan-out when
   cores are available) beats a faithful re-implementation of the seed
   serial SA by >= 3x with >= 2 workers, and by >= 1.5x from prefix
   caching alone on a single core.

The measured numbers are written to ``BENCH_search.json`` (uploaded as a
CI artifact) so the perf trajectory accumulates data points.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro.circuits import load_iscas85
from repro.core.almost import AlmostConfig, AlmostDefense
from repro.core.proxy import ProxyConfig, ProxyModel, build_resyn2_proxy
from repro.locking import lock_rll
from repro.reporting import (
    SearchStrategyRecord,
    render_search_comparison_table,
)
from repro.synth.cache import SynthCache
from repro.synth.recipe import TRANSFORM_NAMES, random_recipe
from repro.utils.rng import derive_seed, make_rng

pytestmark = pytest.mark.slow  # minute-scale search bench; tier-1 skips it (CI runs -m "")

BENCH_SEED = 2023
CIRCUIT = "c1355"
KEY_SIZE = 16
CHAINS = 8
ROUNDS = 3                      # pt budget: CHAINS * (ROUNDS + 1) evals
BUDGET = CHAINS * (ROUNDS + 1)  # == seed SA iterations + 1


def _neighbour(recipe, rng):
    position = int(rng.integers(len(recipe)))
    step = TRANSFORM_NAMES[int(rng.integers(len(TRANSFORM_NAMES)))]
    return recipe.with_step(position, step)


def _seed_annealer(initial_state, energy_fn, neighbour_fn, *, iterations,
                   seed, t_initial=120.0, acceptance=1.8, cooling=0.95,
                   trace_fn=None, stop_energy=None):
    """Verbatim re-implementation of the seed (pre-refactor) SA loop."""
    rng = make_rng(seed)
    current = initial_state
    current_energy = energy_fn(current)
    best = current
    best_energy = current_energy
    temperature = t_initial
    trace = []

    def record(iteration, state, energy, accepted):
        entry = {
            "iteration": iteration,
            "energy": energy,
            "best_energy": best_energy,
            "temperature": temperature,
            "accepted": accepted,
        }
        if trace_fn is not None:
            entry.update(trace_fn(state, energy))
        trace.append(entry)

    record(0, current, current_energy, True)
    for iteration in range(1, iterations + 1):
        candidate = neighbour_fn(current, rng)
        candidate_energy = energy_fn(candidate)
        delta = candidate_energy - current_energy
        if delta <= 0:
            accepted = True
        else:
            probability = math.exp(
                -delta * acceptance / max(temperature, 1e-9)
            )
            accepted = bool(rng.random() < probability)
        if accepted:
            current = candidate
            current_energy = candidate_energy
            if current_energy < best_energy:
                best = current
                best_energy = current_energy
        record(iteration, current, current_energy, accepted)
        temperature *= cooling
        if stop_energy is not None and best_energy <= stop_energy:
            break
    return best, best_energy, trace


@pytest.fixture(scope="module")
def locked():
    netlist = load_iscas85(CIRCUIT, scale="quick")
    return lock_rll(
        netlist, key_size=KEY_SIZE, seed=derive_seed(BENCH_SEED, CIRCUIT)
    )


@pytest.fixture(scope="module")
def trained_attack(locked):
    proxy = build_resyn2_proxy(
        locked,
        ProxyConfig(
            num_samples=24, epochs=4, relock_key_bits=KEY_SIZE,
            seed=derive_seed(BENCH_SEED, "bench-proxy"),
        ),
    )
    return proxy.attack


def _fresh_proxy(trained_attack, locked, name, cached: bool) -> ProxyModel:
    """A proxy sharing the trained model but with private score caches."""
    return ProxyModel(
        name=name,
        attack=trained_attack,
        locked=locked,
        synth_cache=SynthCache() if cached else None,
    )


def test_bench_sa_strategy_reproduces_seed_trace(
    locked, trained_attack, benchmark
):
    """Paper-fidelity pin: default sa == seed annealer, bit for bit."""
    # Full paper schedule on a deterministic synthetic energy.
    from repro.core.sa import SaConfig, simulated_annealing

    def synthetic_energy(recipe):
        return abs(derive_seed(7, *recipe.steps) % 10_000 / 10_000 - 0.5)

    start = random_recipe(10, seed=derive_seed(BENCH_SEED, "fidelity"))
    config = SaConfig()  # paper defaults: 100 iterations, T0=120, a=1.8
    best, best_energy, legacy = _seed_annealer(
        start, synthetic_energy, _neighbour,
        iterations=config.iterations, seed=config.seed,
    )
    result = benchmark.pedantic(
        lambda: simulated_annealing(
            start, synthetic_energy, _neighbour, config
        ),
        rounds=1, iterations=1,
    )
    assert result.best_state == best
    assert result.best_energy == best_energy
    assert len(result.trace) == len(legacy)
    for new, old in zip(result.trace, legacy):
        assert {key: new[key] for key in old} == old

    # Short run through the real ALMOST + proxy stack: the seed reference
    # scores without the prefix cache, the new engine with it — exact
    # snapshot resume must keep every accuracy (hence the trace) identical.
    almost_seed = derive_seed(BENCH_SEED, "fidelity-almost")
    reference_proxy = _fresh_proxy(trained_attack, locked, "seed", cached=False)

    def reference_energy(recipe):
        return abs(reference_proxy.predicted_accuracy(recipe) - 0.5)

    ref_best, _ref_energy, ref_trace = _seed_annealer(
        random_recipe(10, seed=derive_seed(almost_seed, "start")),
        reference_energy,
        _neighbour,
        iterations=6,
        seed=derive_seed(almost_seed, "sa"),
        stop_energy=0.005,
        trace_fn=lambda recipe, energy: {"recipe": recipe.short()},
    )
    modern_proxy = _fresh_proxy(trained_attack, locked, "new", cached=True)
    modern = AlmostDefense(
        modern_proxy, AlmostConfig(sa_iterations=6, seed=almost_seed)
    ).generate_recipe()
    assert modern.recipe == ref_best
    assert len(modern.trace) == len(ref_trace)
    for new, old in zip(modern.trace, ref_trace):
        assert {key: new[key] for key in old} == old
    print(
        f"\nfidelity: sa trace identical to seed annealer over "
        f"{len(legacy)} synthetic + {len(ref_trace)} proxy-scored entries"
    )


def test_bench_prefix_cached_parallel_search_speedup(locked, trained_attack):
    """Throughput pin: >= 3x with parallel workers (>= 1.5x single-core)
    over the seed serial SA on the same evaluation budget."""
    search_seed = derive_seed(BENCH_SEED, "bench-search")

    # -- seed serial SA: per-candidate synthesis, no prefix cache ---------
    seed_proxy = _fresh_proxy(trained_attack, locked, "seed", cached=False)

    def seed_energy(recipe):
        return abs(seed_proxy.predicted_accuracy(recipe) - 0.5)

    started = time.perf_counter()
    _best, seed_best_energy, seed_trace = _seed_annealer(
        random_recipe(10, seed=derive_seed(search_seed, "start")),
        seed_energy,
        _neighbour,
        iterations=BUDGET - 1,
        seed=derive_seed(search_seed, "sa"),
    )
    seed_elapsed = time.perf_counter() - started
    seed_evaluations = len(seed_trace)  # initial + one per iteration

    # -- prefix-cached parallel search on the same budget ------------------
    jobs = min(4, os.cpu_count() or 1)
    fast_proxy = _fresh_proxy(trained_attack, locked, "new", cached=True)
    defense = AlmostDefense(
        fast_proxy,
        AlmostConfig(
            sa_iterations=ROUNDS,
            seed=search_seed,
            strategy="pt",
            chains=CHAINS,
            jobs=jobs,
            stop_margin=-1.0,  # never early-exit: spend the whole budget
        ),
    )
    started = time.perf_counter()
    result = defense.generate_recipe()
    fast_elapsed = time.perf_counter() - started

    assert result.energy_evaluations == BUDGET == seed_evaluations

    # Single-core runs score through the vectorized batch path, so the
    # parent proxy's prefix cache sees all traffic; with jobs > 1 the
    # caches live in the workers and the parent-side counters stay 0.
    hit_rate = fast_proxy.synth_cache.hit_rate if jobs == 1 else None
    if jobs == 1:
        assert hit_rate >= 0.25, fast_proxy.synth_cache.stats()

    speedup = seed_elapsed / fast_elapsed
    records = [
        SearchStrategyRecord(
            strategy="sa (seed, uncached)", chains=1, jobs=1,
            best_energy=seed_best_energy,
            predicted_accuracy=None,
            iterations=seed_evaluations - 1,
            energy_evaluations=seed_evaluations,
            elapsed_s=seed_elapsed,
        ),
        SearchStrategyRecord(
            strategy="pt (prefix-cached)", chains=CHAINS, jobs=jobs,
            best_energy=abs(result.predicted_accuracy - 0.5),
            predicted_accuracy=result.predicted_accuracy,
            iterations=result.iterations,
            energy_evaluations=result.energy_evaluations,
            elapsed_s=fast_elapsed,
            cache_hit_rate=hit_rate,
        ),
    ]
    print()
    print(render_search_comparison_table(
        records,
        title=f"Search engines on {CIRCUIT} (budget {BUDGET} evals)",
    ))
    print(f"speedup: {speedup:.2f}x (jobs={jobs})")

    payload = {
        "bench": "search",
        "circuit": CIRCUIT,
        "key_size": KEY_SIZE,
        "budget_evaluations": BUDGET,
        "jobs": jobs,
        "chains": CHAINS,
        "seed_serial_s": round(seed_elapsed, 3),
        "prefix_cached_parallel_s": round(fast_elapsed, 3),
        "speedup": round(speedup, 3),
        "seed_evals_per_s": round(seed_evaluations / seed_elapsed, 3),
        "new_evals_per_s": round(
            result.energy_evaluations / fast_elapsed, 3
        ),
        "prefix_cache": (
            fast_proxy.synth_cache.stats() if jobs == 1 else {}
        ),
    }
    Path("BENCH_search.json").write_text(json.dumps(payload, indent=2) + "\n")

    minimum = 3.0 if jobs >= 2 else 1.5
    assert speedup >= minimum, (
        f"prefix-cached {'parallel ' if jobs >= 2 else ''}search managed "
        f"only {speedup:.2f}x over the seed serial SA "
        f"(needed {minimum}x, jobs={jobs}): {payload}"
    )
