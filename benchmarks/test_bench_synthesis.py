"""Synthesis-engine micro-benchmarks (substrate characterization).

Not a paper table, but the numbers every other bench stands on: per-pass
runtime and the reduction achieved by ``resyn2`` per benchmark circuit.
"""

from __future__ import annotations

import pytest

from repro.aig import aig_from_netlist
from repro.circuits import load_iscas85
from repro.reporting import render_table
from repro.synth import RESYN2, apply_recipe
from repro.synth.balance import balance
from repro.synth.refactor import refactor_pass
from repro.synth.resub import resub_pass
from repro.synth.rewrite import rewrite_pass


@pytest.fixture(scope="module")
def c1908_aig():
    return aig_from_netlist(load_iscas85("c1908", scale="quick"))


def test_bench_rewrite_pass(benchmark, c1908_aig):
    result = benchmark.pedantic(
        lambda: rewrite_pass(c1908_aig.compact()), rounds=3, iterations=1
    )


def test_bench_refactor_pass(benchmark, c1908_aig):
    benchmark.pedantic(
        lambda: refactor_pass(c1908_aig.compact()), rounds=3, iterations=1
    )


def test_bench_resub_pass(benchmark, c1908_aig):
    benchmark.pedantic(
        lambda: resub_pass(c1908_aig.compact()), rounds=3, iterations=1
    )


def test_bench_balance(benchmark, c1908_aig):
    benchmark.pedantic(lambda: balance(c1908_aig), rounds=3, iterations=1)


def test_bench_resyn2_reduction(benchmark, scale):
    rows = []

    def run():
        aig = aig_from_netlist(load_iscas85("c1355", scale="quick"))
        return apply_recipe(aig, RESYN2)

    benchmark.pedantic(run, rounds=1, iterations=1)
    for name in scale.benchmarks:
        aig = aig_from_netlist(load_iscas85(name, scale=scale.circuit_scale))
        optimized = apply_recipe(aig, RESYN2)
        rows.append(
            [
                name,
                aig.num_ands(),
                optimized.num_ands(),
                100.0 * (1 - optimized.num_ands() / max(aig.num_ands(), 1)),
                aig.depth(),
                optimized.depth(),
            ]
        )
        assert optimized.num_ands() <= aig.num_ands()
    print()
    print(
        render_table(
            ["bench", "ands before", "ands after", "reduction %",
             "depth before", "depth after"],
            rows,
            title="resyn2 reduction",
        )
    )
