"""Telemetry overhead benchmark: tracing must be free when it's off.

Instrumentation points (``get_tracer().span(...)``, registry counters)
never guard themselves, so their disabled-path cost is paid by every run.
Two pins on the search-bench victim (``c1355``, 16 key bits — the same
workload ``test_bench_search.py`` times), attacked through the most
densely instrumented path in the tree (``attack.sat`` → ``sat.solve``
spans, solver counter folds per solve):

1. **NullTracer overhead <= 5%** — the cost of the no-op spans the
   disabled workload actually executes (span count from an enabled run ×
   microbenched per-span cost) must stay under 5% of the workload's
   wall-clock.
2. **Fidelity** — enabling tracing must not change the attack's result,
   only record it.

The measured numbers — including the enabled-vs-disabled wall-clock
ratio, which is reported but not pinned (it includes real JSONL I/O) —
go to ``BENCH_obs.json`` (uploaded as a CI artifact) so the overhead
trajectory accumulates data points.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.attacks.sat_attack import SatAttack, oracle_from_key
from repro.circuits import load_iscas85
from repro.locking import lock_rll
from repro.obs.metrics import REGISTRY
from repro.obs.trace import NullTracer, Tracer, get_tracer, use_tracer
from repro.utils.rng import derive_seed

pytestmark = pytest.mark.slow  # timing bench; tier-1 skips it (CI runs -m "")

BENCH_SEED = 2023
CIRCUIT = "c1355"
KEY_SIZE = 16
MICRO_ITERS = 200_000


@pytest.fixture(scope="module")
def locked():
    netlist = load_iscas85(CIRCUIT, scale="quick")
    return lock_rll(
        netlist, key_size=KEY_SIZE, seed=derive_seed(BENCH_SEED, CIRCUIT)
    )


ATTACK_RUNS = 5  # repeat the attack so the workload outgrows timer noise


def _attack(locked):
    oracle = oracle_from_key(locked.netlist, locked.key)
    result = None
    for _ in range(ATTACK_RUNS):
        result = SatAttack().attack(
            locked.netlist, oracle, true_key=locked.key
        )
    return result


def _timed(fn, repeats: int = 2):
    """Best-of-N wall clock; returns (elapsed_s, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_tracer_overhead(locked, tmp_path):
    _attack(locked)  # warm up: caches, imports, branch predictors

    # -- disabled: the default NullTracer every untraced run sees ---------
    assert isinstance(get_tracer(), NullTracer)
    disabled_s, disabled_result = _timed(lambda: _attack(locked))

    # -- enabled: spans buffered and flushed to a real JSONL sink ---------
    trace_path = tmp_path / "bench.jsonl"

    def traced():
        with Tracer(trace_path) as tracer, use_tracer(tracer):
            result = _attack(locked)
            spans = tracer.span_count
        return result, spans

    enabled_s, (enabled_result, span_count) = _timed(traced)
    assert span_count > 0
    assert trace_path.stat().st_size > 0

    # Fidelity: recording the attack must not change it.
    assert enabled_result.predicted_bits == disabled_result.predicted_bits
    assert (
        enabled_result.details["iterations"]
        == disabled_result.details["iterations"]
    )

    # -- the null-span path, microbenched ---------------------------------
    null = get_tracer()
    assert isinstance(null, NullTracer)
    started = time.perf_counter()
    for _ in range(MICRO_ITERS):
        with null.span("bench", key=1):
            pass
    null_span_ns = (time.perf_counter() - started) / MICRO_ITERS * 1e9

    # The disabled workload executed ~span_count no-op spans (one per
    # would-be span); their total cost relative to its wall-clock is the
    # NullTracer overhead the acceptance pins.
    null_overhead_pct = (
        100.0 * span_count * null_span_ns * 1e-9 / disabled_s
    )
    enabled_overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s

    payload = {
        "bench": "obs",
        "circuit": CIRCUIT,
        "key_size": KEY_SIZE,
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "enabled_overhead_pct": round(enabled_overhead_pct, 2),
        "span_count": span_count,
        "null_span_ns": round(null_span_ns, 1),
        "null_overhead_pct": round(null_overhead_pct, 3),
        "trace_bytes": trace_path.stat().st_size,
        "metric_names": len(REGISTRY.counters()),
    }
    Path("BENCH_obs.json").write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(
        f"tracing off {disabled_s:.3f}s / on {enabled_s:.3f}s "
        f"({enabled_overhead_pct:+.1f}%); {span_count} spans, "
        f"null span {null_span_ns:.0f}ns "
        f"-> {null_overhead_pct:.3f}% disabled overhead"
    )

    assert null_overhead_pct <= 5.0, (
        f"NullTracer costs {null_overhead_pct:.2f}% of the disabled "
        f"workload (needed <= 5%): {payload}"
    )
