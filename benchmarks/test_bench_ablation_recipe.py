"""Ablation — recipe length L and the reachable resilience.

The paper fixes L = 10 (matching resyn2).  This bench runs the ALMOST SA
search with L in {5, 10, 15} on one circuit and reports the best
|accuracy - 0.5| each length reaches, plus the PPA cost of the winning
recipe — quantifying what the fixed choice of L trades away.
"""

from __future__ import annotations

import pytest

from repro.aig import aig_from_netlist
from repro.core.almost import AlmostConfig, AlmostDefense
from repro.mapping import analyze_ppa, map_aig
from repro.reporting import render_table
from repro.synth import apply_recipe
from repro.utils.rng import derive_seed

pytestmark = pytest.mark.slow  # heavy SA/ML experiment; tier-1 skips it (CI runs -m "")


def test_ablation_recipe_length(workspace, scale, benchmark):
    name = scale.benchmarks[0]
    proxy = workspace.proxy(name, "M*")
    locked = workspace.locked(name)

    benchmark.pedantic(
        lambda: AlmostDefense(
            proxy, AlmostConfig(recipe_length=5, sa_iterations=2, seed=0)
        ).generate_recipe(),
        rounds=1,
        iterations=1,
    )

    rows = []
    for length in (5, 10, 15):
        defense = AlmostDefense(
            proxy,
            AlmostConfig(
                recipe_length=length,
                sa_iterations=scale.sa_iterations,
                seed=derive_seed(9, "ablation-L", length),
            ),
        )
        result = defense.generate_recipe()
        aig = aig_from_netlist(locked.netlist)
        optimized = apply_recipe(aig, result.recipe)
        report = analyze_ppa(map_aig(optimized))
        rows.append(
            [
                length,
                result.predicted_accuracy,
                abs(result.predicted_accuracy - 0.5),
                optimized.num_ands(),
                report.area,
                report.delay,
            ]
        )
    print()
    print(
        render_table(
            ["L", "best acc", "|acc-0.5|", "ands", "area um2", "delay ps"],
            rows,
            title=f"Ablation: recipe length on {name} (scale={scale.name})",
        )
    )
    # Longer recipes search a larger space; they should do no worse than
    # L=5 at reaching the 50% target (with slack for SA noise).
    distances = {row[0]: row[2] for row in rows}
    assert distances[10] <= distances[5] + 0.1
