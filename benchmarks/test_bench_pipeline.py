"""Pipeline throughput — artifact cache and process-pool speedups.

Not a paper table: this bench characterizes the experiment *infrastructure*
introduced with :mod:`repro.pipeline`.  It runs the same 2-benchmark ×
2-attack grid three ways — cold serial, cold parallel (2 workers sharing
the on-disk cache), and warm serial (every stage a cache hit) — and
reports wall-clock plus stage-execution accounting.  The warm run is the
headline: a spec rerun (or an incremental grid extension) should do no
stage work at all.
"""

from __future__ import annotations

import time

import pytest

from repro.pipeline import (
    AttackSpec,
    BenchmarkSpec,
    ExperimentSpec,
    LockSpec,
    Runner,
)
from repro.reporting import render_table

pytestmark = pytest.mark.slow  # minute-scale throughput bench; tier-1 skips it (CI runs -m "")


def _grid_spec(scale) -> ExperimentSpec:
    benchmarks = tuple(
        BenchmarkSpec(name=name, scale=scale.circuit_scale)
        for name in scale.benchmarks[:2]
    )
    if len(benchmarks) == 1:  # quick scale may expose a single circuit
        benchmarks = benchmarks + (
            BenchmarkSpec(name=scale.benchmarks[0], scale=scale.circuit_scale,
                          seed=1),
        )
    return ExperimentSpec(
        name="bench-grid",
        benchmarks=benchmarks,
        lock=LockSpec(locker="rll", key_size=scale.key_sizes[0], seed=2023),
        attacks=(
            AttackSpec("scope"),
            AttackSpec("redundancy", params={"num_patterns": 64, "seed": 1}),
        ),
    )


def test_bench_pipeline_cache_and_pool(scale, benchmark, tmp_path_factory):
    spec = _grid_spec(scale)

    def timed_run(workdir, jobs=1, use_cache=True):
        runner = Runner(workdir=workdir, jobs=jobs, use_cache=use_cache)
        started = time.perf_counter()
        run = runner.run(spec)
        return run, time.perf_counter() - started

    cold_dir = tmp_path_factory.mktemp("pipeline-cold")
    cold, cold_s = timed_run(cold_dir)

    pool_dir = tmp_path_factory.mktemp("pipeline-pool")
    pooled, pool_s = timed_run(pool_dir, jobs=2)

    # Warm rerun on the cold store: zero stage executions expected.
    warm, warm_s = timed_run(cold_dir)

    # pytest-benchmark samples the steady-state (cached) path.
    benchmark.pedantic(
        lambda: Runner(workdir=cold_dir).run(spec), rounds=3, iterations=1
    )

    rows = [
        ["cold serial", f"{cold_s:.2f}", cold.executed_stages,
         cold.cached_stages, "1.00"],
        ["cold pool x2", f"{pool_s:.2f}", pooled.executed_stages,
         pooled.cached_stages, f"{cold_s / pool_s:.2f}"],
        ["warm serial", f"{warm_s:.2f}", warm.executed_stages,
         warm.cached_stages, f"{cold_s / warm_s:.2f}"],
    ]
    print()
    print(render_table(
        ["run", "time [s]", "stages run", "stages cached", "speedup"],
        rows,
        title=f"pipeline grid: {len(spec.benchmarks)} benchmarks x "
              f"{len(spec.attacks)} attacks",
    ))

    # Correctness invariants behind the numbers.
    assert cold.executed_stages > 0
    assert warm.executed_stages == 0
    assert warm.cached_stages == cold.executed_stages + cold.cached_stages
    assert [(c.benchmark, c.attack, c.predicted_key) for c in warm.cells] == [
        (c.benchmark, c.attack, c.predicted_key) for c in cold.cells
    ]
    assert [(c.benchmark, c.attack, c.predicted_key) for c in pooled.cells] == [
        (c.benchmark, c.attack, c.predicted_key) for c in cold.cells
    ]
    # The artifact cache must deliver a real speedup on the warm rerun.
    assert warm_s < cold_s
