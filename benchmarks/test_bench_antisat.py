"""Query-complexity scaling — Anti-SAT's exponential DIP wall vs. RLL.

The defining plot of the point-function defense literature: the number of
distinguishing-input iterations the exact SAT attack needs grows
*exponentially* in the Anti-SAT block width (each DIP eliminates a single
``K1`` group, so width ``k`` forces at least ``2^(k-1)`` — in practice
``2^k`` — iterations), while on bare RLL it stays roughly flat-to-linear
in the key width.  The same sweep also shows AppSAT side-stepping the
wall: its approximate key settles after a handful of DIPs regardless of
width, at a measured error of at most one minterm.
"""

from __future__ import annotations

from repro.attacks import AppSatAttack, AppSatConfig, SatAttack, SatAttackConfig
from repro.circuits import load_iscas85
from repro.defenses import lock_antisat
from repro.locking import apply_key, lock_rll
from repro.locking.key import Key
from repro.reporting import QueryComplexityRecord, render_query_complexity_table
from repro.sat import check_equivalence
from repro.utils.rng import derive_seed

DIP_BUDGET = 512
ANTISAT_WIDTHS = (2, 3, 4, 5)
RLL_KEY_SIZES = (2, 3, 4, 5)
BASE_SEED = 2016  # the Anti-SAT year


def _attack_exact(locked):
    return SatAttack(SatAttackConfig(max_iterations=DIP_BUDGET)).attack(locked)


def test_bench_antisat_dip_growth(benchmark):
    """Exponential DIPs on Anti-SAT, linear on RLL, flat for AppSAT."""
    netlist = load_iscas85("c432", scale="quick", seed=BASE_SEED)
    benchmark.pedantic(
        lambda: _attack_exact(
            lock_antisat(netlist, width=3, seed=BASE_SEED)
        ),
        rounds=1,
        iterations=1,
    )

    records = []
    antisat_iters = {}
    for width in ANTISAT_WIDTHS:
        locked = lock_antisat(
            netlist, width=width, seed=derive_seed(BASE_SEED, "as", width)
        )
        result = _attack_exact(locked)
        assert result.details["exact"], width
        unlocked = apply_key(locked.netlist, Key(result.predicted_bits))
        assert check_equivalence(unlocked, netlist).equivalent, width
        antisat_iters[width] = result.details["iterations"]
        records.append(
            QueryComplexityRecord.from_result(f"antisat/w{width}", result)
        )

    rll_iters = {}
    for key_size in RLL_KEY_SIZES:
        locked = lock_rll(
            netlist, key_size=key_size,
            seed=derive_seed(BASE_SEED, "rll", key_size),
        )
        result = _attack_exact(locked)
        assert result.details["exact"], key_size
        rll_iters[key_size] = result.details["iterations"]
        records.append(
            QueryComplexityRecord.from_result(f"rll/k{key_size}", result)
        )

    appsat_config = AppSatConfig(
        max_iterations=DIP_BUDGET, query_period=4, random_queries=64,
        seed=BASE_SEED,
    )
    for width in (ANTISAT_WIDTHS[0], ANTISAT_WIDTHS[-1]):
        locked = lock_antisat(
            netlist, width=width, seed=derive_seed(BASE_SEED, "as", width)
        )
        result = AppSatAttack(appsat_config).attack(locked)
        records.append(
            QueryComplexityRecord.from_result(f"antisat/w{width}", result)
        )
        assert not result.details["budget_exhausted"], width
        if not result.details["exact"]:
            assert result.details["error_rate"] <= 0.05, width

    print()
    print(render_query_complexity_table(records))

    # Exponential in the Anti-SAT width: the 2^(k-1) lower bound holds at
    # every width, so the curve at least doubles per extra key bit pair.
    for width in ANTISAT_WIDTHS:
        assert antisat_iters[width] >= 2 ** (width - 1), antisat_iters
    assert antisat_iters[ANTISAT_WIDTHS[-1]] >= 4 * antisat_iters[
        ANTISAT_WIDTHS[0]
    ], antisat_iters
    # Linear (at most) in the RLL key width: c + key_size is a generous
    # ceiling for the handful of DIPs RLL ever costs, and demonstrably
    # below the exponential curve at equal width.
    for key_size in RLL_KEY_SIZES:
        assert rll_iters[key_size] <= key_size + 4, rll_iters
    assert rll_iters[RLL_KEY_SIZES[-1]] < antisat_iters[ANTISAT_WIDTHS[-1]]
