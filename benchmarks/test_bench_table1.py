"""Table I — predicted attack accuracy of the three proxy model variants.

Paper claim: ``M_resyn2`` suffers a large accuracy drop when moving from the
resyn2-synthesized netlist to netlists synthesized with random recipes
(avg. 4.8 points), while the adversarially trained ``M*`` is the most
consistent (0.18–2.28 point gaps) and the strongest on the random set —
which is what qualifies it as the SA evaluator.
"""

from __future__ import annotations

import numpy as np

import pytest

from repro.reporting import PAPER_TABLE1, render_table
from repro.synth import RESYN2

pytestmark = pytest.mark.slow  # heavy SA/ML experiment; tier-1 skips it (CI runs -m "")

VARIANTS = ["M_resyn2", "M_random", "M*"]


def _evaluate_variant(workspace, name: str, variant: str) -> tuple[float, float]:
    """(accuracy on resyn2, mean accuracy on the random recipe set), %."""
    proxy = workspace.proxy(name, variant)
    resyn2_acc = proxy.predicted_accuracy(RESYN2) * 100.0
    random_accs = [
        proxy.predicted_accuracy(recipe) * 100.0
        for recipe in workspace.random_recipe_set()
    ]
    return resyn2_acc, float(np.mean(random_accs))


def test_table1_proxy_model_generalization(workspace, scale, benchmark):
    rows = []
    gaps: dict[str, list[float]] = {variant: [] for variant in VARIANTS}
    random_strength: dict[str, list[float]] = {v: [] for v in VARIANTS}

    def run_one():
        return _evaluate_variant(workspace, scale.benchmarks[0], "M_resyn2")

    # Benchmark the primitive operation once; the full table is built after.
    benchmark.pedantic(run_one, rounds=1, iterations=1)

    paper_ks = 64
    for name in scale.benchmarks:
        for variant in VARIANTS:
            resyn2_acc, random_acc = _evaluate_variant(workspace, name, variant)
            paper = PAPER_TABLE1[variant][paper_ks].get(name)
            rows.append(
                [
                    name,
                    variant,
                    resyn2_acc,
                    random_acc,
                    resyn2_acc - random_acc,
                    paper[0] if paper else float("nan"),
                    paper[1] if paper else float("nan"),
                ]
            )
            gaps[variant].append(resyn2_acc - random_acc)
            random_strength[variant].append(random_acc)

    print()
    print(
        render_table(
            [
                "bench", "variant", "resyn2 %", "random %", "gap",
                "paper resyn2 %", "paper random %",
            ],
            rows,
            title=f"Table I (scale={scale.name}, key={workspace.key_size()})",
        )
    )
    mean_gap = {v: float(np.mean(np.abs(gaps[v]))) for v in VARIANTS}
    mean_random = {v: float(np.mean(random_strength[v])) for v in VARIANTS}
    print(f"mean |resyn2-random| gap: {mean_gap}")
    print(f"mean random-set accuracy: {mean_random}")

    # Shape checks (soft, scale-aware).  One key bit is worth
    # 100/key_size accuracy points, so the slack is a few bit-flips wide
    # at quick scale and tightens automatically at larger key sizes.
    bit_worth = 100.0 / workspace.key_size()
    # M* should not generalize worse than M_resyn2...
    assert mean_gap["M*"] <= mean_gap["M_resyn2"] + 2.0 * bit_worth
    # ...and should be at least as strong on the random set.
    assert mean_random["M*"] >= mean_random["M_resyn2"] - 1.5 * bit_worth
