"""Fig. 4 — SA recipe search traces under the three accuracy evaluators.

Paper claim: SA with ``M*`` as the evaluator needs *more* iterations to
reach ~50% than with ``M_resyn2`` (whose optimistic, recipe-specific
accuracy estimates collapse quickly), and ``M_random`` traces show wide
variation.  The bench re-runs the SA search per evaluator and prints the
accuracy-vs-iteration series.
"""

from __future__ import annotations

import numpy as np

import pytest

from repro.core.almost import AlmostConfig, AlmostDefense
from repro.reporting import render_table
from repro.utils.rng import derive_seed

pytestmark = pytest.mark.slow  # heavy SA/ML experiment; tier-1 skips it (CI runs -m "")

VARIANTS = ["M_resyn2", "M_random", "M*"]


def _iterations_to_target(trace: list[float], target=0.5, margin=0.02) -> int:
    for index, accuracy in enumerate(trace):
        if abs(accuracy - target) <= margin:
            return index
    return len(trace)


def test_fig4_sa_recipe_search(workspace, scale, benchmark):
    def one_sa_run():
        proxy = workspace.proxy(scale.benchmarks[0], "M_resyn2")
        defense = AlmostDefense(
            proxy, AlmostConfig(sa_iterations=2, seed=0)
        )
        return defense.generate_recipe()

    benchmark.pedantic(one_sa_run, rounds=1, iterations=1)

    rows = []
    reach: dict[str, list[int]] = {v: [] for v in VARIANTS}
    for name in scale.benchmarks:
        for variant in VARIANTS:
            proxy = workspace.proxy(name, variant)
            defense = AlmostDefense(
                proxy,
                AlmostConfig(
                    sa_iterations=scale.sa_iterations,
                    seed=derive_seed(7, "fig4", name, variant),
                ),
            )
            result = defense.generate_recipe()
            trace = result.accuracy_trace()
            first_hit = _iterations_to_target(trace)
            reach[variant].append(first_hit)
            rows.append(
                [
                    name,
                    variant,
                    trace[0],
                    float(np.min(trace)),
                    result.predicted_accuracy,
                    first_hit,
                    " ".join(f"{a:.2f}" for a in trace[: min(12, len(trace))]),
                ]
            )
    print()
    print(
        render_table(
            [
                "bench", "evaluator", "start acc", "min acc",
                "final acc", "iters to ~0.5", "trace (first 12)",
            ],
            rows,
            title=f"Fig. 4 SA traces (scale={scale.name})",
        )
    )
    mean_reach = {v: float(np.mean(reach[v])) for v in VARIANTS}
    print(f"mean iterations to ~50%: {mean_reach}")
    # Shape check: the adversarial evaluator never converges *faster on
    # average* than the recipe-specific one by a wide margin — the paper's
    # observation is that M* requires at least as many iterations.  The
    # slack scales with the SA budget because short quick-scale searches
    # quantize "iterations to target" coarsely.
    slack = max(2.0, scale.sa_iterations / 2.0)
    assert mean_reach["M*"] >= mean_reach["M_resyn2"] - slack
    # All searches end with a predicted accuracy that moved toward 0.5.
    for row in rows:
        assert abs(row[4] - 0.5) <= abs(row[2] - 0.5) + 1e-9
