"""Sec. III-A — attack-model transferability across recipes (motivation).

Paper observation (on c5315): a model trained against recipe S1 attacks
S1-synthesized netlists better than S2-synthesized ones, and vice versa —
accuracy(T_Si, M_Si) >= accuracy(T_Si, M_Sj).  This mismatch is what
motivates the transferable proxy M*.
"""

from __future__ import annotations

import pytest

from repro.attacks import OmlaAttack, OmlaConfig
from repro.reporting import render_table
from repro.reporting.paper_data import PAPER_TRANSFERABILITY
from repro.synth import RESYN2, Recipe
from repro.utils.rng import derive_seed

pytestmark = pytest.mark.slow  # heavy SA/ML experiment; tier-1 skips it (CI runs -m "")

S1 = RESYN2
S2 = Recipe.parse("rs; rwz; rfz; b; rsz; rw; b; rf; rwz; b")


def test_transferability_motivation(workspace, scale, benchmark):
    name = "c5315" if "c5315" in scale.benchmarks else scale.benchmarks[-1]
    locked = workspace.locked(name)

    def build_model(recipe, tag):
        attack = OmlaAttack(
            recipe,
            OmlaConfig(
                epochs=scale.proxy_epochs,
                relock_key_bits=min(workspace.key_size() * 2, 48),
                seed=derive_seed(3, "transfer", tag),
            ),
        )
        data = attack.generate_training_data(
            locked.netlist, num_samples=scale.proxy_samples
        )
        attack.train(data)
        return attack

    benchmark.pedantic(
        lambda: workspace.victim(name, S1), rounds=1, iterations=1
    )

    models = {"S1": build_model(S1, "s1"), "S2": build_model(S2, "s2")}
    victims = {
        "S1": workspace.victim(name, S1)[1],
        "S2": workspace.victim(name, S2)[1],
    }
    accuracy = {}
    for target in ("S1", "S2"):
        for source in ("S1", "S2"):
            accuracy[(target, source)] = (
                models[source].accuracy_on(victims[target], locked.key) * 100
            )
    rows = [
        [
            f"T_{target}",
            accuracy[(target, "S1")],
            accuracy[(target, "S2")],
            PAPER_TRANSFERABILITY[(target, "S1")],
            PAPER_TRANSFERABILITY[(target, "S2")],
        ]
        for target in ("S1", "S2")
    ]
    print()
    print(
        render_table(
            ["victim", "M_S1 %", "M_S2 %", "paper M_S1 %", "paper M_S2 %"],
            rows,
            title=f"Transferability on {name} (scale={scale.name})",
        )
    )
    matched = accuracy[("S1", "S1")] + accuracy[("S2", "S2")]
    crossed = accuracy[("S1", "S2")] + accuracy[("S2", "S1")]
    print(f"matched-recipe total {matched:.1f}% vs crossed {crossed:.1f}%")
    # Shape check: matched-recipe attacks are collectively no worse than
    # cross-recipe attacks (allow noise slack at small scale).
    assert matched >= crossed - 10.0
