"""Fig. 5 — attacker re-synthesis for area/delay after ALMOST.

Paper claim: when the attacker re-synthesizes the ALMOST netlist to optimize
area or delay, the PPA trajectory shows no usable correlation with attack
accuracy — re-optimizing does not hand the key back.
"""

from __future__ import annotations

import numpy as np

import pytest

from repro.flows import attacker_resynthesis_sweep
from repro.flows.resynthesis import accuracy_metric_correlation
from repro.reporting import render_table
from repro.synth.engine import synthesize_netlist
from repro.utils.rng import derive_seed

pytestmark = pytest.mark.slow  # heavy SA/ML experiment; tier-1 skips it (CI runs -m "")


def test_fig5_attacker_resynthesis(workspace, scale, benchmark):
    name0 = scale.benchmarks[0]
    proxy0 = workspace.proxy(name0, "M*")
    almost_netlist0 = synthesize_netlist(
        workspace.locked(name0).netlist, workspace.almost(name0).recipe
    )
    benchmark.pedantic(
        lambda: attacker_resynthesis_sweep(
            almost_netlist0, proxy0, objective="delay", iterations=2, seed=0
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    correlations = []
    for name in scale.benchmarks:
        proxy = workspace.proxy(name, "M*")
        almost_netlist = synthesize_netlist(
            workspace.locked(name).netlist, workspace.almost(name).recipe
        )
        for objective in ("delay", "area"):
            points = attacker_resynthesis_sweep(
                almost_netlist,
                proxy,
                objective=objective,
                iterations=scale.resynthesis_iterations,
                seed=derive_seed(5, "fig5", name, objective),
            )
            correlation = accuracy_metric_correlation(points)
            correlations.append(abs(correlation))
            best_ratio = min(p.metric_ratio for p in points)
            acc_spread = max(p.attack_accuracy for p in points) - min(
                p.attack_accuracy for p in points
            )
            rows.append(
                [
                    name,
                    objective,
                    best_ratio,
                    acc_spread,
                    correlation,
                    " ".join(
                        f"{p.metric_ratio:.2f}/{p.attack_accuracy:.2f}"
                        for p in points[:6]
                    ),
                ]
            )
    print()
    print(
        render_table(
            [
                "bench", "objective", "best metric ratio",
                "accuracy spread", "corr(metric, acc)", "ratio/acc series",
            ],
            rows,
            title=f"Fig. 5 attacker re-synthesis (scale={scale.name})",
        )
    )
    mean_abs_corr = float(np.mean(correlations))
    print(f"mean |correlation| = {mean_abs_corr:.3f}")
    # Shape check: no strong systematic correlation between the attacker's
    # PPA optimization progress and the attack accuracy.
    assert mean_abs_corr <= 0.8
