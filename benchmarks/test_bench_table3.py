"""Table III — PPA overhead of ALMOST-synthesized circuits (±opt).

Paper claim: using the security-aware recipe instead of resyn2 costs little:
area within ~±3%, power within ~±5%, delay mostly within ±20% per circuit,
relative to the locked baseline.
"""

from __future__ import annotations

import numpy as np

import pytest

from repro.flows import ppa_overhead_table
from repro.reporting import PAPER_TABLE3, render_table
from repro.synth import RESYN2
from repro.synth.engine import synthesize_netlist

pytestmark = pytest.mark.slow  # heavy SA/ML experiment; tier-1 skips it (CI runs -m "")


def test_table3_ppa_overheads(workspace, scale, benchmark):
    name0 = scale.benchmarks[0]
    benchmark.pedantic(
        lambda: ppa_overhead_table(
            workspace.locked(name0).netlist,
            workspace.victim(name0)[0],
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    area_overheads = []
    power_overheads = []
    paper_ks = 64
    for name in scale.benchmarks:
        locked = workspace.locked(name)
        almost_recipe = workspace.almost(name, "M*").recipe
        # Baseline: the resyn2-synthesized locked design (the defender's
        # conventional flow); variant: the ALMOST-synthesized design.
        baseline = synthesize_netlist(locked.netlist, RESYN2)
        variant = synthesize_netlist(locked.netlist, almost_recipe)
        comparison = ppa_overhead_table(baseline, variant, name=name)
        paper_area = PAPER_TABLE3["area"][paper_ks].get(name, (float("nan"),) * 2)
        paper_delay = PAPER_TABLE3["delay"][paper_ks].get(name, (float("nan"),) * 2)
        paper_power = PAPER_TABLE3["power"][paper_ks].get(name, (float("nan"),) * 2)
        rows.append(
            [
                name,
                comparison.area_no_opt, comparison.area_opt, paper_area[0],
                comparison.delay_no_opt, comparison.delay_opt, paper_delay[0],
                comparison.power_no_opt, comparison.power_opt, paper_power[0],
            ]
        )
        area_overheads.append(comparison.area_no_opt)
        power_overheads.append(comparison.power_no_opt)

    print()
    print(
        render_table(
            [
                "bench",
                "area -opt %", "area +opt %", "paper area %",
                "delay -opt %", "delay +opt %", "paper delay %",
                "power -opt %", "power +opt %", "paper power %",
            ],
            rows,
            title=f"Table III PPA overhead vs resyn2 (scale={scale.name})",
        )
    )
    mean_abs_area = float(np.mean(np.abs(area_overheads)))
    mean_abs_power = float(np.mean(np.abs(power_overheads)))
    print(
        f"mean |area| overhead {mean_abs_area:.2f}%, "
        f"mean |power| overhead {mean_abs_power:.2f}%"
    )
    # Shape check: overheads are marginal on average (paper: ~3% / ~5%;
    # allow slack because our circuits and mapper are smaller).
    assert mean_abs_area <= 15.0
    assert mean_abs_power <= 20.0
