"""Table II — real attacks against resyn2- vs ALMOST-synthesized circuits.

Paper claim: OMLA drops from ~52-72% on resyn2-synthesized netlists to ~50%
on ALMOST-synthesized ones (3-12 point drop); SCOPE and the redundancy
attack stay at or below random guessing on both, with ALMOST at least as
resilient.
"""

from __future__ import annotations

import numpy as np

import pytest

from repro.attacks import OmlaAttack, OmlaConfig, RedundancyAttack, ScopeAttack
from repro.reporting import PAPER_TABLE2, render_table
from repro.synth import RESYN2
from repro.utils.rng import derive_seed

pytestmark = pytest.mark.slow  # heavy SA/ML experiment; tier-1 skips it (CI runs -m "")


def _omla_attacker(workspace, scale, name: str, recipe):
    """A fresh OMLA attacker trained against the given defender recipe.

    The attacker *knows the defender's recipe* (paper threat model) and
    self-references against it.
    """
    locked = workspace.locked(name)
    attack = OmlaAttack(
        recipe,
        OmlaConfig(
            epochs=scale.proxy_epochs,
            relock_key_bits=min(workspace.key_size() * 2, 48),
            seed=derive_seed(13, "omla", name, recipe.short()),
        ),
    )
    data = attack.generate_training_data(
        locked.netlist, num_samples=scale.proxy_samples
    )
    attack.train(data)
    return attack


def test_table2_attack_accuracy(workspace, scale, benchmark):
    benchmark.pedantic(
        lambda: ScopeAttack().attack(
            workspace.victim(scale.benchmarks[0])[0],
            workspace.locked(scale.benchmarks[0]).key,
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    omla_resyn2: list[float] = []
    omla_almost: list[float] = []
    paper_ks = 64
    for name in scale.benchmarks:
        locked = workspace.locked(name)
        almost_recipe = workspace.almost(name, "M*").recipe
        victims = {
            "resyn2": (RESYN2, *workspace.victim(name, RESYN2)),
            "ALMOST": (almost_recipe, *workspace.victim(name, almost_recipe)),
        }
        accs: dict[tuple[str, str], float] = {}
        for label, (recipe, netlist, mapped) in victims.items():
            omla = _omla_attacker(workspace, scale, name, recipe)
            accs[("OMLA", label)] = omla.accuracy_on(mapped, locked.key) * 100
            accs[("SCOPE", label)] = (
                ScopeAttack().attack(netlist, locked.key).accuracy * 100
            )
            accs[("Redundancy", label)] = (
                RedundancyAttack(
                    num_patterns=128, seed=derive_seed(13, "red", name, label)
                )
                .attack(netlist, locked.key)
                .accuracy
                * 100
            )
        for attack_name in ("OMLA", "SCOPE", "Redundancy"):
            paper = PAPER_TABLE2[attack_name][paper_ks]
            rows.append(
                [
                    name,
                    attack_name,
                    accs[(attack_name, "resyn2")],
                    accs[(attack_name, "ALMOST")],
                    paper["resyn2"].get(name, float("nan")),
                    paper["ALMOST"].get(name, float("nan")),
                ]
            )
        omla_resyn2.append(accs[("OMLA", "resyn2")])
        omla_almost.append(accs[("OMLA", "ALMOST")])

    print()
    print(
        render_table(
            [
                "bench", "attack", "resyn2 %", "ALMOST %",
                "paper resyn2 %", "paper ALMOST %",
            ],
            rows,
            title=f"Table II (scale={scale.name}, key={workspace.key_size()})",
        )
    )
    mean_resyn2 = float(np.mean(omla_resyn2))
    mean_almost = float(np.mean(omla_almost))
    print(f"OMLA mean: resyn2 {mean_resyn2:.2f}% -> ALMOST {mean_almost:.2f}%")

    # Headline shape check: ALMOST does not help the attacker.  The
    # distance-to-random comparison is only meaningful when the baseline
    # attack actually beats random guessing (always true at paper scale;
    # at quick scale the tiny training budget can leave it at ~50%).
    assert mean_almost <= mean_resyn2 + 2.0
    if mean_resyn2 > 52.0:
        assert abs(mean_almost - 50.0) <= abs(mean_resyn2 - 50.0) + 2.0
