"""Setuptools packaging so ``pip install -e .`` works offline (no wheel deps)."""

from setuptools import find_packages, setup

setup(
    name="repro-almost",
    version="1.2.0",
    description=(
        "Reproduction of ALMOST (DAC'23): adversarial learning to mitigate "
        "oracle-less ML attacks on logic locking, plus a SAT attack / "
        "equivalence-checking subsystem for the oracle-guided threat model"
    ),
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
