"""Setuptools packaging so ``pip install -e .`` works offline (no wheel deps)."""

from setuptools import find_packages, setup

setup(
    name="repro-almost",
    version="1.3.0",
    description=(
        "Reproduction of ALMOST (DAC'23): adversarial learning to mitigate "
        "oracle-less ML attacks on logic locking, plus a SAT attack / "
        "equivalence-checking subsystem and SAT-resilient point-function "
        "defenses (Anti-SAT, SARLock) with the AppSAT approximate attack"
    ),
    author="paper-repo-growth",
    license="MIT",
    # 3.11 floor: repro.pipeline.spec reads TOML via the stdlib tomllib,
    # which only exists on >= 3.11 (CI exercises exactly this floor).
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # scipy: repro.ml.autograd uses scipy.sparse for the GNN adjacency
    # matmuls — without it every ML attack import breaks.
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
