"""Tests for ``repro lint`` (:mod:`repro.analysis`).

Every rule gets a violating/clean fixture pair asserting the exact code
and line; on top of that: baseline round-trip (write -> absorb -> stale),
--select/--ignore, the three output formats through the real CLI, the
self-hosting guarantee (``src/`` is clean), and the docs fold (RPR4xx).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro import analysis
from repro.analysis.baseline import Baseline, write_baseline
from repro.cli import main as cli_main
from repro.errors import AnalysisError

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(
    tmp_path: Path, source: str, *, name: str = "fixture.py", **kwargs
) -> list[analysis.Finding]:
    (tmp_path / name).write_text(textwrap.dedent(source))
    return analysis.run_lint([tmp_path], **kwargs).findings


def codes_at(findings) -> list[tuple[str, int]]:
    return [(f.code, f.line) for f in findings]


# -- determinism rules (RPR1xx) -------------------------------------------


def test_rpr101_flags_set_iteration(tmp_path):
    findings = lint_source(tmp_path, """\
        def pick(items: set[int]):
            best = None
            for item in items:
                best = item
            return best
    """)
    assert codes_at(findings) == [("RPR101", 3)]
    assert "sorted" in findings[0].message


def test_rpr101_clean_with_sorted_and_setcomp(tmp_path):
    findings = lint_source(tmp_path, """\
        def pick(items: set[int]):
            doubled = {i * 2 for i in items}
            for item in sorted(items):
                pass
            return doubled
    """)
    assert findings == []


def test_rpr101_tracks_local_set_flow(tmp_path):
    findings = lint_source(tmp_path, """\
        def collect(a, b):
            seen = {a} | {b}
            ordered = list(seen)
            seen = sorted(seen)
            also_fine = list(seen)
            return ordered + also_fine
    """)
    assert codes_at(findings) == [("RPR101", 3)]


def test_rpr102_flags_module_level_rng(tmp_path):
    findings = lint_source(tmp_path, """\
        import random

        def jitter():
            return random.random()
    """)
    assert codes_at(findings) == [("RPR102", 4)]
    assert "make_rng" in findings[0].message


def test_rpr102_clean_with_seeded_generator(tmp_path):
    findings = lint_source(tmp_path, """\
        from repro.utils.rng import make_rng

        def jitter(seed):
            return make_rng(seed).random()
    """)
    assert findings == []


def test_rpr103_flags_wall_clock_in_cache_key(tmp_path):
    findings = lint_source(tmp_path, """\
        import time

        def cache_key(spec):
            return f"{spec}:{time.time()}"
    """)
    assert codes_at(findings) == [("RPR103", 4)]


def test_rpr103_allows_plain_timing(tmp_path):
    findings = lint_source(tmp_path, """\
        import time

        def elapsed(start):
            return time.time() - start
    """)
    assert findings == []


def test_rpr104_flags_builtin_hash_outside_dunder(tmp_path):
    findings = lint_source(tmp_path, """\
        def fingerprint(spec):
            return hash(str(spec))
    """)
    assert codes_at(findings) == [("RPR104", 2)]
    assert findings[0].severity is analysis.Severity.WARNING


def test_rpr104_allows_hash_inside_dunder_hash(tmp_path):
    findings = lint_source(tmp_path, """\
        class Key:
            def __hash__(self):
                return hash(("key", 1))
    """)
    assert findings == []


def test_rpr105_flags_seeded_generator_outside_rng_home(tmp_path):
    # RPR102 permits a *seeded* default_rng; RPR105 still rejects it
    # outside utils/rng.py so Generator construction stays in one module.
    findings = lint_source(tmp_path, """\
        import numpy as np

        def lanes(width):
            rng = np.random.default_rng(42)
            return rng.integers(0, 2, size=width)
    """)
    assert ("RPR105", 4) in codes_at(findings)
    assert "utils/rng.py" in next(
        f.message for f in findings if f.code == "RPR105"
    )


def test_rpr105_clean_inside_rng_home_and_via_make_rng(tmp_path):
    (tmp_path / "utils").mkdir()
    findings = lint_source(
        tmp_path,
        """\
        import numpy as np

        def make_rng(seed):
            return np.random.default_rng(seed)
        """,
        name="utils/rng.py",
    )
    findings += lint_source(tmp_path, """\
        from repro.utils.rng import make_rng

        def lanes(seed, width):
            return make_rng(seed).integers(0, 2, size=width)
    """)
    assert [f for f in findings if f.code == "RPR105"] == []


# -- concurrency rules (RPR2xx) -------------------------------------------


def test_rpr201_flags_lambda_to_pool(tmp_path):
    findings = lint_source(tmp_path, """\
        def fan_out(pool, xs):
            return pool.map(lambda v: v + 1, xs)
    """)
    assert codes_at(findings) == [("RPR201", 2)]
    assert "lambda" in findings[0].message


def test_rpr201_flags_nested_function_to_pool(tmp_path):
    findings = lint_source(tmp_path, """\
        def fan_out(pool, offset, xs):
            def shift(v):
                return v + offset
            return pool.map(shift, xs)
    """)
    assert codes_at(findings) == [("RPR201", 4)]
    assert "shift" in findings[0].message


def test_rpr201_clean_with_module_level_worker(tmp_path):
    findings = lint_source(tmp_path, """\
        def double(v):
            return v * 2

        def fan_out(pool, xs):
            return pool.map(double, xs)
    """)
    assert findings == []


def test_rpr202_flags_manager_proxy_without_getstate(tmp_path):
    findings = lint_source(tmp_path, """\
        import multiprocessing

        class Hub:
            def start(self):
                self._manager = multiprocessing.Manager()
                self._events = self._manager.Queue()
    """)
    assert codes_at(findings) == [("RPR202", 5)]
    assert "__getstate__" in findings[0].message


def test_rpr202_clean_with_getstate(tmp_path):
    findings = lint_source(tmp_path, """\
        import multiprocessing

        class Hub:
            def start(self):
                self._manager = multiprocessing.Manager()

            def __getstate__(self):
                raise TypeError("Hub stays in the parent process")
    """)
    assert findings == []


_LOCKED_CLASS = """\
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def add(self, item):
            with self._lock:
                self._items.append(item)

        def sneak(self, item):
            self._items.append(item)
"""


def test_rpr203_flags_off_lock_mutation(tmp_path):
    findings = lint_source(tmp_path, _LOCKED_CLASS)
    assert codes_at(findings) == [("RPR203", 13)]
    assert "sneak()" in findings[0].message


def test_rpr203_clean_when_all_mutations_locked(tmp_path):
    fixed = _LOCKED_CLASS.replace(
        "        def sneak(self, item):\n"
        "            self._items.append(item)",
        "        def sneak(self, item):\n"
        "            with self._lock:\n"
        "                self._items.append(item)",
    )
    assert fixed != _LOCKED_CLASS
    findings = lint_source(tmp_path, fixed)
    assert findings == []


def test_rpr203_lock_held_helper_is_clean(tmp_path):
    # SynthCache._touch pattern: the helper mutates off-lock but every one
    # of its call sites holds the lock, so the lock is inherited.
    findings = lint_source(tmp_path, """\
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = 0

            def get(self, key):
                with self._lock:
                    self._touch()

            def _touch(self):
                self._hits += 1
    """)
    assert findings == []


# -- convention rules (RPR3xx) --------------------------------------------


def test_rpr301_flags_undocumented_namespace(tmp_path):
    findings = lint_source(tmp_path, """\
        from repro.obs import metrics

        def record():
            metrics.inc("bogus.counter")
    """)
    assert codes_at(findings) == [("RPR301", 4)]
    assert "bogus" in findings[0].message


def test_rpr301_clean_with_documented_namespace(tmp_path):
    findings = lint_source(tmp_path, """\
        from repro.obs import metrics

        def record():
            metrics.inc("search.rounds")
    """)
    assert findings == []


def test_rpr302_flags_negative_counter_and_gauge_inc(tmp_path):
    findings = lint_source(tmp_path, """\
        from repro.obs import metrics

        def record():
            metrics.inc("service.depth", -1)
            metrics.gauge("service.depth").inc()
    """)
    assert codes_at(findings) == [("RPR302", 4), ("RPR302", 5)]


def test_rpr302_clean_counter_up_gauge_set(tmp_path):
    findings = lint_source(tmp_path, """\
        from repro.obs import metrics

        def record(depth):
            metrics.inc("service.jobs")
            metrics.gauge("service.depth").set(depth)
    """)
    assert findings == []


def test_rpr303_flags_duplicate_registration(tmp_path):
    findings = lint_source(tmp_path, """\
        from repro.pipeline.registry import register

        register("attack", "scope")
        register("attack", "scope")
    """)
    assert codes_at(findings) == [("RPR303", 4)]
    assert "already registered" in findings[0].message


def test_rpr303_clean_distinct_names_and_dynamic_skipped(tmp_path):
    findings = lint_source(tmp_path, """\
        from repro.pipeline.registry import register

        register("attack", "scope")
        register("attack", "sweep")

        def plug(name):
            register("attack", name)
    """)
    assert findings == []


def test_rpr304_flags_choices_drift(tmp_path):
    findings = lint_source(tmp_path, """\
        import argparse
        from repro.pipeline.registry import register

        register("attack", "scope")
        register("attack", "sweep")

        def build():
            p = argparse.ArgumentParser()
            p.add_argument("--attack", choices=["scope"])
    """)
    assert codes_at(findings) == [("RPR304", 9)]
    assert "sweep" in findings[0].message


def test_rpr304_registry_derived_choices_are_clean(tmp_path):
    findings = lint_source(tmp_path, """\
        import argparse
        from repro.pipeline.registry import available, register

        register("attack", "scope")
        register("attack", "sweep")

        def build():
            p = argparse.ArgumentParser()
            p.add_argument("--attack", choices=["", *available("attack")])
            p.add_argument("--attack2", choices=["scope", "sweep"])
    """)
    assert findings == []


def test_rpr305_flags_unregistered_mark(tmp_path):
    (tmp_path / "pytest.ini").write_text(
        "[pytest]\nmarkers =\n    slow: long-running\n"
    )
    findings = lint_source(tmp_path, """\
        import pytest

        @pytest.mark.slwo
        def test_example():
            pass
    """)
    assert codes_at(findings) == [("RPR305", 3)]
    assert "slwo" in findings[0].message


def test_rpr305_registered_and_builtin_marks_are_clean(tmp_path):
    (tmp_path / "pytest.ini").write_text(
        "[pytest]\nmarkers =\n    slow: long-running\n"
    )
    findings = lint_source(tmp_path, """\
        import pytest

        @pytest.mark.slow
        @pytest.mark.parametrize("n", [1, 2])
        def test_example(n):
            pass
    """)
    assert findings == []


# -- engine: parse errors, pragmas, select/ignore -------------------------


def test_parse_error_is_a_finding(tmp_path):
    findings = lint_source(tmp_path, "def broken(:\n")
    assert codes_at(findings) == [("RPR001", 1)]


def test_pragma_suppresses_named_code(tmp_path):
    findings = lint_source(tmp_path, """\
        def pick(items: set[int]):
            for item in items:  # lint: ignore[RPR101]
                pass
    """)
    assert findings == []


def test_pragma_does_not_suppress_other_codes(tmp_path):
    findings = lint_source(tmp_path, """\
        def pick(items: set[int]):
            for item in items:  # lint: ignore[RPR102]
                pass
    """)
    assert codes_at(findings) == [("RPR101", 2)]


_MIXED = """\
    import random

    def sweep(items: set[int]):
        for item in items:
            random.shuffle([item])
"""


def test_select_limits_to_family(tmp_path):
    findings = lint_source(tmp_path, _MIXED, select=["RPR101"])
    assert codes_at(findings) == [("RPR101", 4)]


def test_ignore_drops_family(tmp_path):
    findings = lint_source(tmp_path, _MIXED, ignore=["RPR1xx"])
    assert findings == []


def test_rule_selected_prefix_semantics():
    assert analysis.rule_selected("RPR101", ("RPR1",), ())
    assert analysis.rule_selected("RPR101", ("RPR1xx",), ())
    assert not analysis.rule_selected("RPR201", ("RPR1",), ())
    assert not analysis.rule_selected("RPR101", (), ("RPR101",))


# -- baseline round-trip ---------------------------------------------------


def test_baseline_round_trip_absorbs_then_goes_stale(tmp_path):
    fixture = tmp_path / "pkg"
    fixture.mkdir()
    (fixture / "mod.py").write_text(textwrap.dedent("""\
        def pick(items: set[int]):
            for item in items:
                pass
    """))
    first = analysis.run_lint([fixture])
    assert len(first.findings) == 1

    baseline_path = tmp_path / "baseline.txt"
    write_baseline(first.findings, baseline_path)

    absorbed = analysis.run_lint([fixture], baseline=baseline_path)
    assert absorbed.findings == []
    assert absorbed.baselined == 1
    assert absorbed.exit_code == 0

    # A new violation is fresh even with the baseline in place.
    (fixture / "mod.py").write_text(textwrap.dedent("""\
        def pick(items: set[int]):
            for item in items:
                pass
            for again in items:
                pass
    """))
    fresh = analysis.run_lint([fixture], baseline=baseline_path)
    assert len(fresh.findings) == 1
    assert fresh.findings[0].line == 4
    assert fresh.baselined == 1

    # Debt paid -> the entry is reported stale, the run stays green.
    (fixture / "mod.py").write_text(textwrap.dedent("""\
        def pick(items: set[int]):
            for item in sorted(items):
                pass
    """))
    paid = analysis.run_lint([fixture], baseline=baseline_path)
    assert paid.findings == []
    assert paid.exit_code == 0
    assert len(paid.stale_baseline) == 1
    assert "RPR101" in paid.stale_baseline[0]


def test_baseline_keys_survive_line_drift(tmp_path):
    fixture = tmp_path / "pkg"
    fixture.mkdir()
    (fixture / "mod.py").write_text(textwrap.dedent("""\
        def pick(items: set[int]):
            for item in items:
                pass
    """))
    baseline_path = tmp_path / "baseline.txt"
    write_baseline(analysis.run_lint([fixture]).findings, baseline_path)

    # Push the offending line down three lines; the key is source-based.
    (fixture / "mod.py").write_text(textwrap.dedent("""\
        GAP = 1


        def pick(items: set[int]):
            for item in items:
                pass
    """))
    drifted = analysis.run_lint([fixture], baseline=baseline_path)
    assert drifted.findings == []
    assert drifted.baselined == 1


def test_malformed_baseline_raises(tmp_path):
    bad = tmp_path / "baseline.txt"
    bad.write_text("not a baseline entry\n")
    with pytest.raises(AnalysisError):
        Baseline.load(bad)


# -- CLI: formats, exit codes ---------------------------------------------


def _write_bad_fixture(tmp_path: Path) -> Path:
    fixture = tmp_path / "pkg"
    fixture.mkdir()
    (fixture / "mod.py").write_text(textwrap.dedent("""\
        def pick(items: set[int]):
            for item in items:
                pass
    """))
    return fixture


def test_cli_text_format_and_exit_code(tmp_path, capsys):
    fixture = _write_bad_fixture(tmp_path)
    code = cli_main(["lint", str(fixture), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RPR101" in out
    assert "mod.py:2:" in out


def test_cli_json_format(tmp_path, capsys):
    fixture = _write_bad_fixture(tmp_path)
    code = cli_main([
        "lint", str(fixture), "--format", "json", "--no-baseline",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["exit_code"] == 1
    assert payload["files_scanned"] == 1
    [finding] = payload["findings"]
    assert finding["code"] == "RPR101"
    assert finding["line"] == 2
    assert finding["source"] == "for item in items:"


def test_cli_github_format(tmp_path, capsys):
    fixture = _write_bad_fixture(tmp_path)
    code = cli_main([
        "lint", str(fixture), "--format", "github", "--no-baseline",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "::error file=" in out
    assert "title=RPR101::" in out
    assert "::notice title=repro lint::" in out


def test_cli_clean_run_exits_zero_and_writes_report(tmp_path, capsys):
    fixture = tmp_path / "pkg"
    fixture.mkdir()
    (fixture / "mod.py").write_text("VALUE = 1\n")
    report_path = tmp_path / "report.json"
    code = cli_main([
        "lint", str(fixture), "--no-baseline",
        "--report", str(report_path),
    ])
    assert code == 0
    assert json.loads(report_path.read_text())["exit_code"] == 0


def test_cli_write_baseline_then_green(tmp_path, capsys):
    fixture = _write_bad_fixture(tmp_path)
    baseline_path = tmp_path / "baseline.txt"
    assert cli_main([
        "lint", str(fixture), "--baseline", str(baseline_path),
        "--write-baseline",
    ]) == 0
    capsys.readouterr()
    assert cli_main([
        "lint", str(fixture), "--baseline", str(baseline_path),
    ]) == 0
    assert "baselined" in capsys.readouterr().out


def test_cli_missing_explicit_baseline_is_an_error(tmp_path, capsys):
    fixture = _write_bad_fixture(tmp_path)
    code = cli_main([
        "lint", str(fixture), "--baseline", str(tmp_path / "nope.txt"),
    ])
    assert code == 2


def test_cli_list_rules_names_every_family(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR101", "RPR102", "RPR103", "RPR104",
                 "RPR105",
                 "RPR201", "RPR202", "RPR203", "RPR301", "RPR302",
                 "RPR303", "RPR304", "RPR305"):
        assert code in out


# -- docs fold (RPR4xx) ----------------------------------------------------


def test_docs_broken_link_is_a_finding(tmp_path):
    from repro.analysis.docs import doc_files, link_problems

    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "guide.md").write_text(
        "# Guide\n\nSee [missing](nowhere.md) for more.\n"
    )
    (tmp_path / "README.md").write_text("# Repo\n")
    [finding] = link_problems(doc_files(tmp_path), tmp_path)
    assert finding.code == "RPR401"
    assert finding.line == 3
    assert "nowhere.md" in finding.message


def test_docs_missing_anchor_is_a_finding(tmp_path):
    from repro.analysis.docs import doc_files, link_problems

    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "a.md").write_text("# A\n\n[jump](b.md#no-such-heading)\n")
    (docs / "b.md").write_text("# B\n\n## Real heading\n")
    [finding] = link_problems(doc_files(tmp_path), tmp_path)
    assert finding.code == "RPR401"
    assert "no-such-heading" in finding.message


def test_docs_subcommand_mentions_track_first_location(tmp_path):
    from repro.analysis.docs import subcommand_mentions

    readme = tmp_path / "README.md"
    readme.write_text(
        "# Repo\n\nRun `repro lint src/` before pushing.\n\n"
        "```\nrepro gen c1908 --out c.bench\n```\n"
    )
    mentions = subcommand_mentions([readme])
    assert mentions["lint"] == (readme, 3)
    assert mentions["gen"] == (readme, 6)


def test_docs_vacuous_check_is_a_finding(tmp_path):
    from repro.analysis.docs import doc_findings

    (tmp_path / "README.md").write_text("# Repo with no command docs\n")
    findings = doc_findings(tmp_path)
    assert [f.code for f in findings] == ["RPR403"]


# -- self-hosting ----------------------------------------------------------


def test_lint_is_clean_on_src():
    """The self-hosting contract: ``repro lint src/`` stays green."""
    report = analysis.run_lint([REPO_ROOT / "src"])
    assert report.findings == [], "\n".join(
        f.text() for f in report.findings
    )
    assert len(report.rules) >= 10


def test_lint_marker_rule_is_clean_on_tests():
    report = analysis.run_lint([REPO_ROOT / "tests"], select=["RPR305"])
    assert report.findings == [], "\n".join(
        f.text() for f in report.findings
    )
