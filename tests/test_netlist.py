"""Tests for the netlist container, .bench I/O and simulation."""

import numpy as np
import pytest

from repro.errors import BenchParseError, NetlistError
from repro.netlist import GateType, Gate, Netlist, parse_bench, write_bench
from repro.netlist.simulate import (
    exhaustive_patterns,
    random_patterns,
    simulate_patterns,
    switching_activity,
)


class TestNetlistStructure:
    def test_duplicate_input_rejected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_input("a")

    def test_double_driver_rejected(self, tiny_netlist):
        tiny_netlist.add_gate("y", GateType.BUF, ("a",))
        with pytest.raises(NetlistError):
            tiny_netlist.validate()

    def test_undriven_net_rejected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("y", GateType.AND, ("a", "ghost"))
        netlist.add_output("y")
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_cycle_rejected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("x", GateType.AND, ("a", "y"))
        netlist.add_gate("y", GateType.AND, ("a", "x"))
        netlist.add_output("y")
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_gate_arity_enforced(self):
        with pytest.raises(NetlistError):
            Gate("y", GateType.NOT, ("a", "b"))
        with pytest.raises(NetlistError):
            Gate("y", GateType.AND, ("a",))

    def test_topological_order(self, tiny_netlist):
        order = [g.output for g in tiny_netlist.topological_gates()]
        assert order.index("and_1") < order.index("xor_2")

    def test_depth(self, tiny_netlist):
        # and -> xor -> output buffer
        assert tiny_netlist.depth() == 3

    def test_key_inputs_sorted(self):
        netlist = Netlist("t")
        netlist.add_input("keyinput10")
        netlist.add_input("keyinput2")
        netlist.add_input("a")
        assert netlist.key_inputs == ["keyinput2", "keyinput10"]
        assert netlist.functional_inputs == ["a"]

    def test_stats(self, tiny_netlist):
        stats = tiny_netlist.stats()
        assert stats["total_gates"] == tiny_netlist.num_gates()
        assert stats["inputs"] == 3

    def test_copy_is_independent(self, tiny_netlist):
        clone = tiny_netlist.copy()
        clone.gates.pop()
        assert clone.num_gates() == tiny_netlist.num_gates() - 1


class TestBenchIo:
    def test_roundtrip(self, tiny_netlist):
        text = write_bench(tiny_netlist)
        parsed = parse_bench(text, name="tiny")
        assert parsed.inputs == tiny_netlist.inputs
        assert parsed.outputs == tiny_netlist.outputs
        assert len(parsed.gates) == len(tiny_netlist.gates)

    def test_parse_iscas_style(self):
        text = """
        # ISCAS-like
        INPUT(G1)
        INPUT(G2)
        OUTPUT(G5)
        G4 = NAND(G1, G2)
        G5 = NOT(G4)
        """
        netlist = parse_bench(text)
        assert netlist.num_gates() == 2
        assert netlist.gates[0].gate_type is GateType.NAND

    def test_buff_alias(self):
        netlist = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
        assert netlist.gates[0].gate_type is GateType.BUF

    def test_bad_line_raises(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\ny == AND(a)\n")

    def test_unknown_gate_raises(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")


class TestSimulation:
    def test_tiny_truth(self, tiny_netlist):
        patterns = exhaustive_patterns(3)
        outputs = simulate_patterns(tiny_netlist, patterns)
        for row, pattern in zip(outputs, patterns):
            a, b, c = pattern
            assert row[0] == (a & b) ^ c
            assert row[1] == 1 - a

    def test_all_gate_types(self):
        netlist = Netlist("gates")
        netlist.add_input("a")
        netlist.add_input("b")
        specs = {
            "g_and": GateType.AND, "g_or": GateType.OR,
            "g_nand": GateType.NAND, "g_nor": GateType.NOR,
            "g_xor": GateType.XOR, "g_xnor": GateType.XNOR,
        }
        for net, gate_type in specs.items():
            netlist.add_gate(net, gate_type, ("a", "b"))
            netlist.add_output(net)
        patterns = exhaustive_patterns(2)
        outputs = simulate_patterns(netlist, patterns)
        expected = {
            "g_and": [0, 0, 0, 1], "g_or": [0, 1, 1, 1],
            "g_nand": [1, 1, 1, 0], "g_nor": [1, 0, 0, 0],
            "g_xor": [0, 1, 1, 0], "g_xnor": [1, 0, 0, 1],
        }
        for col, net in enumerate(netlist.outputs):
            assert list(outputs[:, col]) == expected[net], net

    def test_mux_gate(self):
        netlist = Netlist("mux")
        for pin in ("s", "a", "b"):
            netlist.add_input(pin)
        netlist.add_gate("y", GateType.MUX, ("s", "a", "b"))
        netlist.add_output("y")
        patterns = exhaustive_patterns(3)
        outputs = simulate_patterns(netlist, patterns)
        for row, (s, a, b) in zip(outputs, patterns):
            assert row[0] == (b if s else a)

    def test_pattern_shape_validation(self, tiny_netlist):
        with pytest.raises(NetlistError):
            simulate_patterns(tiny_netlist, np.zeros((4, 2), dtype=np.uint8))

    def test_random_patterns_deterministic(self):
        a = random_patterns(5, 64, seed=9)
        b = random_patterns(5, 64, seed=9)
        assert (a == b).all()

    def test_switching_activity_range(self, tiny_netlist):
        activity = switching_activity(tiny_netlist, num_patterns=512, seed=1)
        assert set(activity) >= set(tiny_netlist.inputs)
        for value in activity.values():
            assert 0.0 <= value <= 0.5 + 1e-9

    def test_exhaustive_guard(self):
        with pytest.raises(NetlistError):
            exhaustive_patterns(21)
