"""Tests for RLL locking, keys, the oracle and re-locking."""

import numpy as np
import pytest

from repro.errors import LockingError
from repro.locking import Key, apply_key, lock_rll, oracle_outputs, relock
from repro.netlist.gates import GateType
from repro.netlist.simulate import random_patterns, simulate_patterns
from repro.sat import check_equivalence
from repro.synth import RESYN2
from repro.synth.engine import synthesize_netlist


class TestKey:
    def test_random_deterministic(self):
        assert Key.random(16, seed=1).bits == Key.random(16, seed=1).bits

    def test_bits_validated(self):
        with pytest.raises(LockingError):
            Key((0, 2, 1))

    def test_hamming(self):
        assert Key((0, 1, 1)).hamming(Key((1, 1, 0))) == 2
        with pytest.raises(LockingError):
            Key((0,)).hamming(Key((0, 1)))


class TestLockRll:
    def test_correct_key_preserves_function(self, c432_quick):
        locked = lock_rll(c432_quick, key_size=8, seed=7)
        patterns = random_patterns(len(c432_quick.inputs), 256, seed=1)
        original = simulate_patterns(c432_quick, patterns)
        unlocked = oracle_outputs(locked.netlist, locked.key, patterns)
        assert (original == unlocked).all()

    def test_wrong_key_corrupts_function(self, c432_quick):
        locked = lock_rll(c432_quick, key_size=8, seed=7)
        wrong = Key(tuple(1 - b for b in locked.key.bits))
        patterns = random_patterns(len(c432_quick.inputs), 256, seed=2)
        original = simulate_patterns(c432_quick, patterns)
        corrupted = oracle_outputs(locked.netlist, wrong, patterns)
        assert (original != corrupted).any()

    def test_single_wrong_bit_corrupts(self, c432_quick):
        locked = lock_rll(c432_quick, key_size=8, seed=9)
        bits = list(locked.key.bits)
        bits[0] ^= 1
        patterns = random_patterns(len(c432_quick.inputs), 512, seed=3)
        original = simulate_patterns(c432_quick, patterns)
        corrupted = oracle_outputs(locked.netlist, Key(tuple(bits)), patterns)
        assert (original != corrupted).any()

    def test_gate_types_match_key_bits(self, c432_quick):
        locked = lock_rll(c432_quick, key_size=8, seed=5)
        drivers = locked.netlist.driver_map()
        for net, key_net, bit in zip(
            locked.locked_nets, locked.key_input_names, locked.key.bits
        ):
            gate = drivers[f"{net}__lk_{key_net}"]
            expected = GateType.XNOR if bit else GateType.XOR
            assert gate.gate_type is expected

    def test_key_inputs_registered(self, c432_quick):
        locked = lock_rll(c432_quick, key_size=8, seed=5)
        assert len(locked.netlist.key_inputs) == 8
        assert locked.netlist.key_inputs == list(locked.key_input_names)

    def test_too_many_keys_rejected(self, tiny_netlist):
        with pytest.raises(LockingError):
            lock_rll(tiny_netlist, key_size=50, seed=0)

    def test_explicit_key_and_nets(self, tiny_netlist):
        key = Key((1, 0))
        nets = [tiny_netlist.gates[0].output, tiny_netlist.gates[1].output]
        locked = lock_rll(tiny_netlist, key_size=2, key=key, nets=nets)
        assert locked.key is key
        assert locked.locked_nets == tuple(nets)


class TestApplyKey:
    def test_apply_key_removes_key_inputs(self, locked_c432):
        applied = apply_key(locked_c432.netlist, locked_c432.key)
        assert applied.key_inputs == []
        patterns = random_patterns(len(applied.functional_inputs), 128, seed=4)
        via_oracle = oracle_outputs(locked_c432.netlist, locked_c432.key, patterns)
        direct = simulate_patterns(applied, patterns, input_order=applied.functional_inputs)
        assert (via_oracle == direct).all()

    def test_wrong_size_rejected(self, locked_c432):
        with pytest.raises(LockingError):
            apply_key(locked_c432.netlist, Key((0, 1)))


class TestRelockAndSynthesis:
    def test_relock_uses_distinct_prefix(self, locked_c432):
        relocked = relock(locked_c432.netlist, key_size=4, seed=1)
        assert all(
            name.startswith("relockinput") for name in relocked.key_input_names
        )
        # Victim key inputs unchanged.
        assert locked_c432.netlist.key_inputs == relocked.netlist.key_inputs

    def test_relock_twice_no_collision(self, locked_c432):
        first = relock(locked_c432.netlist, key_size=4, seed=1)
        second = relock(first.netlist, key_size=4, seed=2)
        second.netlist.validate()
        assert len(second.netlist.inputs) == len(locked_c432.netlist.inputs) + 8

    def test_locked_function_preserved_through_synthesis(self, locked_c432):
        synthesized = synthesize_netlist(locked_c432.netlist, RESYN2)
        patterns = random_patterns(
            len(locked_c432.netlist.functional_inputs), 256, seed=5
        )
        before = oracle_outputs(locked_c432.netlist, locked_c432.key, patterns)
        after = oracle_outputs(synthesized, locked_c432.key, patterns)
        # Align output order by name.
        order = [synthesized.outputs.index(o) for o in locked_c432.netlist.outputs]
        assert (before == after[:, order]).all()
        # Sampling 256 vectors is a spot check; the miter proves it for the
        # whole input space (key inputs included).
        assert check_equivalence(locked_c432.netlist, synthesized).equivalent

    def test_correct_key_equivalence_proof(self, locked_c432, c432_quick):
        """apply_key(correct) is exactly the original; any flipped bit isn't."""
        unlocked = apply_key(locked_c432.netlist, locked_c432.key)
        assert check_equivalence(unlocked, c432_quick).equivalent
        wrong = Key(tuple(1 - b for b in locked_c432.key.bits))
        verdict = check_equivalence(
            apply_key(locked_c432.netlist, wrong), c432_quick
        )
        assert not verdict.equivalent
        assert verdict.counterexample is not None

    def test_key_inputs_survive_synthesis(self, locked_c432):
        synthesized = synthesize_netlist(locked_c432.netlist, RESYN2)
        assert synthesized.key_inputs == locked_c432.netlist.key_inputs
