"""Tests for the batched search engine, prefix-cached synthesis, and the
vectorized proxy scorer."""

import math

import pytest

from repro.aig.build import aig_from_netlist
from repro.aig.export import netlist_from_aig
from repro.circuits import load_iscas85
from repro.core.almost import AlmostConfig, AlmostDefense
from repro.core.proxy import ProxyConfig, build_resyn2_proxy
from repro.core.sa import SaConfig, simulated_annealing
from repro.core.search import (
    BatchCallableEvaluator,
    CallableEvaluator,
    ProcessPoolEvaluator,
    SearchConfig,
    SearchProblem,
    available_strategies,
    get_strategy,
    register_strategy,
    run_search,
)
from repro.errors import SearchError, SpecError
from repro.locking import lock_rll
from repro.pipeline.spec import DefenseSpec
from repro.synth import RESYN2, Recipe, SynthCache, random_recipe
from repro.synth.engine import apply_recipe, synthesize_netlist
from repro.utils.rng import derive_seed, make_rng


# -- shared toy problem ----------------------------------------------------

def quadratic_problem():
    return SearchProblem(
        initial=10.0,
        neighbour=lambda x, rng: x + rng.normal(0, 1.0),
        sample=lambda rng: float(rng.uniform(-20, 20)),
    )


def quadratic_energy(x: float) -> float:
    return (x - 3.0) ** 2


def recipe_problem(length: int = 10) -> SearchProblem:
    from repro.synth.recipe import TRANSFORM_NAMES

    def neighbour(recipe, rng):
        position = int(rng.integers(len(recipe)))
        step = TRANSFORM_NAMES[int(rng.integers(len(TRANSFORM_NAMES)))]
        return recipe.with_step(position, step)

    return SearchProblem(
        initial=random_recipe(length, seed=7),
        neighbour=neighbour,
        sample=lambda rng: random_recipe(length, rng=rng),
    )


def synthetic_recipe_energy(recipe) -> float:
    """Deterministic pseudo-accuracy distance, unique-ish per recipe."""
    return abs(derive_seed(99, *recipe.steps) % 10_000 / 10_000 - 0.5)


# -- registry --------------------------------------------------------------

class TestStrategyRegistry:
    def test_builtins_registered(self):
        assert {"sa", "pt", "beam", "random"} <= set(available_strategies())

    def test_unknown_name_rejected(self):
        with pytest.raises(SearchError, match="unknown search strategy"):
            get_strategy("gradient-descent")
        with pytest.raises(SearchError, match="available"):
            run_search(quadratic_problem(), quadratic_energy, strategy="nope")

    def test_duplicate_name_rejected(self):
        with pytest.raises(SearchError, match="already registered"):
            register_strategy("sa")(lambda problem, config: None)


# -- seed-trace fidelity ---------------------------------------------------

def _seed_annealer(initial_state, energy_fn, neighbour_fn, config,
                   trace_fn=None, stop_energy=None):
    """Verbatim re-implementation of the seed (pre-refactor) SA loop."""
    rng = make_rng(config.seed)
    current = initial_state
    current_energy = energy_fn(current)
    best = current
    best_energy = current_energy
    temperature = config.t_initial
    trace = []

    def record(iteration, state, energy, accepted):
        entry = {
            "iteration": iteration,
            "energy": energy,
            "best_energy": best_energy,
            "temperature": temperature,
            "accepted": accepted,
        }
        if trace_fn is not None:
            entry.update(trace_fn(state, energy))
        trace.append(entry)

    record(0, current, current_energy, True)
    for iteration in range(1, config.iterations + 1):
        candidate = neighbour_fn(current, rng)
        candidate_energy = energy_fn(candidate)
        delta = candidate_energy - current_energy
        if delta <= 0:
            accepted = True
        else:
            probability = math.exp(
                -delta * config.acceptance / max(temperature, 1e-9)
            )
            accepted = bool(rng.random() < probability)
        if accepted:
            current = candidate
            current_energy = candidate_energy
            if current_energy < best_energy:
                best = current
                best_energy = current_energy
        record(iteration, current, current_energy, accepted)
        temperature *= config.cooling
        if stop_energy is not None and best_energy <= stop_energy:
            break
    return best, best_energy, trace


class TestSaFidelity:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_trace_matches_seed_annealer(self, seed):
        problem = recipe_problem()
        config = SaConfig(iterations=60, seed=seed)
        best, best_energy, legacy = _seed_annealer(
            problem.initial, synthetic_recipe_energy, problem.neighbour, config
        )
        result = simulated_annealing(
            problem.initial,
            synthetic_recipe_energy,
            problem.neighbour,
            config,
        )
        assert result.best_state == best
        assert result.best_energy == best_energy
        assert len(result.trace) == len(legacy)
        for new, old in zip(result.trace, legacy):
            # Every seed-produced field is reproduced bit-for-bit; the new
            # engine only *adds* the energy_evaluations counter.
            assert {key: new[key] for key in old} == old

    def test_stop_energy_matches_seed_annealer(self):
        config = SaConfig(iterations=100, seed=3)
        best, best_energy, legacy = _seed_annealer(
            100.0, abs, lambda x, rng: x / 2, config, stop_energy=1.0
        )
        result = simulated_annealing(
            100.0, abs, lambda x, rng: x / 2, config, stop_energy=1.0
        )
        assert result.best_energy == best_energy
        assert len(result.trace) == len(legacy)


# -- strategies ------------------------------------------------------------

class TestParallelTempering:
    def run(self, seed=0, chains=3, iterations=25):
        return run_search(
            quadratic_problem(),
            quadratic_energy,
            strategy="pt",
            config=SearchConfig(
                iterations=iterations, chains=chains, seed=seed, swap_period=2
            ),
        )

    def test_deterministic_per_seed(self):
        first, second = self.run(seed=4), self.run(seed=4)
        assert first.best_state == second.best_state
        assert first.trace == second.trace

    def test_seeds_differ(self):
        assert self.run(seed=1).trace != self.run(seed=2).trace

    def test_batch_accounting_and_chain_rows(self):
        result = self.run(chains=3, iterations=10)
        assert result.iterations == 10
        assert result.energy_evaluations == 3 * (10 + 1)
        assert {entry["chain"] for entry in result.trace} == {0, 1, 2}
        assert result.best_energy <= quadratic_energy(10.0)

    def test_single_chain_degenerates_cleanly(self):
        result = self.run(chains=1, iterations=5)
        assert result.energy_evaluations == 6

    def test_converges_on_quadratic(self):
        result = self.run(seed=11, chains=4, iterations=60)
        assert abs(result.best_state - 3.0) < 1.0


class TestBeamAndRandom:
    @pytest.mark.parametrize("strategy", ["beam", "random"])
    def test_deterministic_and_batched(self, strategy):
        config = SearchConfig(iterations=12, chains=3, seed=8)
        runs = [
            run_search(
                quadratic_problem(), quadratic_energy, strategy=strategy,
                config=config,
            )
            for _ in range(2)
        ]
        assert runs[0].trace == runs[1].trace
        assert runs[0].energy_evaluations == 3 * 13

    def test_beam_best_monotone(self):
        result = run_search(
            quadratic_problem(),
            quadratic_energy,
            strategy="beam",
            config=SearchConfig(iterations=20, chains=3, seed=2),
        )
        best_series = [entry["best_energy"] for entry in result.trace]
        assert all(b <= a + 1e-12 for a, b in zip(best_series, best_series[1:]))

    def test_random_uses_sampler(self):
        # Without a neighbour ever being called the random strategy must
        # still run (sampler-only problem).
        problem = SearchProblem(
            initial=10.0,
            neighbour=lambda x, rng: (_ for _ in ()).throw(AssertionError),
            sample=lambda rng: float(rng.uniform(-20, 20)),
        )
        result = run_search(
            problem, quadratic_energy, strategy="random",
            config=SearchConfig(iterations=5, chains=4, seed=0),
        )
        assert result.energy_evaluations == 4 * 6


class TestDriverAccounting:
    def test_energy_evaluations_vs_iterations_diverge(self):
        # stop_energy satisfied by the initial state: like the seed
        # annealer, one neighbour round still runs before the stop check,
        # so the counters read 1 iteration / 2 evaluations — distinct.
        result = run_search(
            quadratic_problem(),
            quadratic_energy,
            strategy="sa",
            config=SearchConfig(iterations=50, seed=0),
            stop_energy=1000.0,
        )
        assert result.iterations == 1
        assert result.energy_evaluations == 2
        assert [e["energy_evaluations"] for e in result.trace] == [1, 2]

    def test_stop_at_initial_matches_seed_annealer(self):
        # The exact edge case: initial best energy already below the stop
        # threshold must reproduce the seed loop's one-extra-iteration.
        config = SaConfig(iterations=40, seed=6)
        best, best_energy, legacy = _seed_annealer(
            0.5, abs, lambda x, rng: x + rng.normal(), config,
            stop_energy=10.0,
        )
        result = simulated_annealing(
            0.5, abs, lambda x, rng: x + rng.normal(), config,
            stop_energy=10.0,
        )
        assert result.best_energy == best_energy
        assert len(result.trace) == len(legacy) == 2
        for new, old in zip(result.trace, legacy):
            assert {key: new[key] for key in old} == old

    def test_max_evaluations_budget(self):
        result = run_search(
            quadratic_problem(),
            quadratic_energy,
            strategy="pt",
            config=SearchConfig(
                iterations=100, chains=4, seed=0, max_evaluations=20
            ),
        )
        assert result.energy_evaluations == 20
        assert result.iterations == 4  # 4 bootstrap + 4 rounds of 4

    def test_trace_carries_running_evaluations(self):
        result = run_search(
            quadratic_problem(),
            quadratic_energy,
            strategy="pt",
            config=SearchConfig(iterations=3, chains=2, seed=0),
        )
        counts = [entry["energy_evaluations"] for entry in result.trace]
        assert counts == sorted(counts)
        assert counts[-1] == result.energy_evaluations

    def test_config_validation(self):
        with pytest.raises(SearchError):
            SearchConfig(chains=0)
        with pytest.raises(SearchError):
            SearchConfig(iterations=-1)
        with pytest.raises(SearchError):
            SearchConfig(max_evaluations=-5)


# -- evaluators ------------------------------------------------------------

def _square(x: float) -> float:  # module-level: picklable for the pool
    return x * x


class TestEvaluators:
    def test_callable_evaluator(self):
        assert CallableEvaluator(_square).evaluate([1, 2, 3]) == [1.0, 4.0, 9.0]

    def test_batch_evaluator_checks_shape(self):
        good = BatchCallableEvaluator(lambda xs: [x * x for x in xs])
        assert good.evaluate([2, 3]) == [4.0, 9.0]
        bad = BatchCallableEvaluator(lambda xs: [1.0])
        with pytest.raises(SearchError, match="batch evaluator"):
            bad.evaluate([2, 3])

    def test_process_pool_matches_serial(self):
        with ProcessPoolEvaluator(_square, jobs=2) as pool:
            assert pool.evaluate([1, 2, 3, 4]) == [1.0, 4.0, 9.0, 16.0]
            assert pool.evaluate([]) == []

    def test_pool_rejects_bad_jobs(self):
        with pytest.raises(SearchError):
            ProcessPoolEvaluator(_square, jobs=0)


# -- prefix-cached synthesis ----------------------------------------------

@pytest.fixture(scope="module")
def c432_netlist():
    return load_iscas85("c432", scale="quick")


class TestSynthCache:
    def test_cached_equals_uncached_exactly(self, c432_netlist):
        cache = SynthCache()
        recipes = [random_recipe(10, seed=s) for s in range(4)]
        # Evaluate each recipe twice through the cache, interleaved with
        # one-step mutations, and compare against uncached synthesis.
        mutated = [r.with_step(7, "balance") for r in recipes]
        for recipe in recipes + mutated + recipes:
            aig = aig_from_netlist(c432_netlist)
            cached = apply_recipe(aig, recipe, cache=cache)
            uncached = apply_recipe(aig_from_netlist(c432_netlist), recipe)
            assert cached.fingerprint() == uncached.fingerprint()

    def test_prefix_resume_is_sat_equivalent(self, c432_netlist):
        # verify="sat" proves the (prefix-cached) output equivalent to the
        # input; a broken snapshot/resume would be caught by the miter.
        cache = SynthCache()
        recipe = random_recipe(8, seed=1)
        synthesize_netlist(c432_netlist, recipe, verify="sat", cache=cache)
        synthesize_netlist(
            c432_netlist, recipe.with_step(5, "rewrite"), verify="sat",
            cache=cache,
        )
        assert cache.steps_saved >= 5

    def test_mutation_resumes_from_prefix(self, c432_netlist):
        cache = SynthCache()
        recipe = random_recipe(10, seed=3)
        aig = aig_from_netlist(c432_netlist)
        apply_recipe(aig, recipe, cache=cache)
        assert cache.steps_executed == 10
        mutated = recipe.with_step(9, "resub")
        apply_recipe(aig_from_netlist(c432_netlist), mutated, cache=cache)
        # Only the mutated tail step is recomputed.
        assert cache.steps_executed == 11
        assert cache.steps_saved == 9
        assert 0.0 < cache.hit_rate < 1.0

    def test_full_recipe_repeat_is_free(self, c432_netlist):
        cache = SynthCache()
        recipe = random_recipe(6, seed=5)
        first = apply_recipe(
            aig_from_netlist(c432_netlist), recipe, cache=cache
        )
        executed = cache.steps_executed
        second = apply_recipe(
            aig_from_netlist(c432_netlist), recipe, cache=cache
        )
        assert cache.steps_executed == executed
        assert first.fingerprint() == second.fingerprint()

    def test_lru_bound(self, c432_netlist):
        cache = SynthCache(max_entries=4)
        for seed in range(3):
            apply_recipe(
                aig_from_netlist(c432_netlist),
                random_recipe(5, seed=seed),
                cache=cache,
            )
        assert len(cache) <= 4
        stats = cache.stats()
        assert stats["entries"] <= 4
        assert stats["steps_executed"] == 15

    def test_rejects_bad_bound(self):
        with pytest.raises(Exception):
            SynthCache(max_entries=0)

    def test_clone_is_exact(self, c432_netlist):
        aig = aig_from_netlist(c432_netlist)
        clone = aig.clone()
        assert clone.fingerprint() == aig.fingerprint()
        clone.check()
        # Mutating the clone must not touch the original.
        from repro.synth.engine import apply_transform

        apply_transform(clone, "rewrite")
        assert aig.fingerprint() == aig_from_netlist(c432_netlist).fingerprint()


# -- proxy scoring ---------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_proxy():
    netlist = load_iscas85("c432", scale="quick")
    locked = lock_rll(netlist, key_size=6, seed=11)
    return build_resyn2_proxy(
        locked,
        ProxyConfig(
            num_samples=12, epochs=2, relock_key_bits=6,
            num_random_recipes=2, seed=5,
        ),
    )


class TestProxyBatchScoring:
    def test_batch_matches_per_item(self, tiny_proxy):
        recipes = [RESYN2] + [random_recipe(10, seed=s) for s in range(3)]
        per_item = [tiny_proxy.predicted_accuracy(r) for r in recipes]
        tiny_proxy._cache.clear()  # force the batch path to recompute
        batch = tiny_proxy.predicted_accuracy_batch(recipes)
        assert batch == per_item

    def test_batch_handles_duplicates_and_memo_hits(self, tiny_proxy):
        recipe = random_recipe(10, seed=9)
        expected = tiny_proxy.predicted_accuracy(recipe)
        values = tiny_proxy.predicted_accuracy_batch([recipe, recipe, RESYN2])
        assert values[0] == values[1] == expected

    def test_lru_is_bounded_and_tuple_keyed(self, tiny_proxy):
        tiny_proxy.cache_size = 3
        tiny_proxy._cache.clear()
        recipes = [random_recipe(10, seed=100 + s) for s in range(5)]
        for recipe in recipes:
            tiny_proxy.predicted_accuracy(recipe)
            assert recipe.steps in tiny_proxy._cache
        assert len(tiny_proxy._cache) == 3
        # Most recently used survive, oldest evicted.
        assert recipes[0].steps not in tiny_proxy._cache
        assert recipes[-1].steps in tiny_proxy._cache
        tiny_proxy.cache_size = 1024

    def test_prefix_cache_fed_by_scoring(self, tiny_proxy):
        tiny_proxy.synth_cache.clear()
        base = random_recipe(10, seed=42)
        tiny_proxy.predicted_accuracy(base)
        tiny_proxy.predicted_accuracy_batch([base.with_step(8, "balance")])
        assert tiny_proxy.synth_cache.steps_saved >= 8


# -- ALMOST strategy surface ----------------------------------------------

class TestAlmostStrategies:
    def evaluator(self):
        def predicted(recipe):
            return 0.5 + synthetic_recipe_energy(recipe)

        return predicted

    @pytest.mark.parametrize("strategy", ["pt", "beam", "random"])
    def test_strategies_run_and_are_deterministic(self, strategy):
        def result():
            defense = AlmostDefense(
                self.evaluator(),
                AlmostConfig(
                    sa_iterations=6, seed=3, strategy=strategy, chains=3,
                    stop_margin=-1.0,
                ),
            )
            return defense.generate_recipe()

        first, second = result(), result()
        assert first.recipe == second.recipe
        assert first.trace == second.trace
        assert first.strategy == strategy
        assert first.energy_evaluations == 3 * 7
        assert first.iterations == 6
        assert first.predicted_accuracy == pytest.approx(
            0.5 + abs(first.predicted_accuracy - 0.5)
        )

    def test_default_sa_unchanged(self):
        defense = AlmostDefense(
            self.evaluator(), AlmostConfig(sa_iterations=10, seed=1)
        )
        result = defense.generate_recipe()
        assert result.strategy == "sa"
        assert len(result.trace) == result.iterations + 1
        assert result.accuracy_trace()[0] is not None

    def test_proxy_batch_path_on_real_model(self, tiny_proxy):
        defense = AlmostDefense(
            tiny_proxy,
            AlmostConfig(
                sa_iterations=2, seed=2, strategy="pt", chains=2,
                stop_margin=-1.0,
            ),
        )
        result = defense.generate_recipe()
        assert result.energy_evaluations == 2 * 3
        assert 0.0 <= result.predicted_accuracy <= 1.0


# -- pipeline + reporting surfaces ----------------------------------------

class TestPipelineKnobs:
    def test_defense_spec_round_trip(self):
        spec = DefenseSpec(name="almost", strategy="pt", chains=4, jobs=2)
        assert DefenseSpec.from_dict(spec.to_dict()) == spec

    def test_defense_spec_validation(self):
        with pytest.raises(SpecError):
            DefenseSpec(chains=0)
        with pytest.raises(SpecError):
            DefenseSpec(jobs=0)
        with pytest.raises(SpecError):
            DefenseSpec(strategy="")

    def test_runner_validates_strategy_before_any_work(self):
        from repro.pipeline import (
            BenchmarkSpec,
            ExperimentSpec,
            LockSpec,
            Runner,
        )

        spec = ExperimentSpec(
            name="typo",
            benchmarks=(BenchmarkSpec(name="c432"),),
            lock=LockSpec(locker="rll", key_size=6),
            defense=DefenseSpec(name="almost", strategy="beem"),
        )
        with pytest.raises(SearchError, match="unknown search strategy"):
            Runner(use_cache=False).validate(spec)

    def test_search_comparison_table(self):
        from repro.reporting import (
            SearchStrategyRecord,
            render_search_comparison_table,
        )

        records = [
            SearchStrategyRecord(
                strategy="sa", chains=1, jobs=1, best_energy=0.01,
                predicted_accuracy=0.51, iterations=100,
                energy_evaluations=101, elapsed_s=2.0, cache_hit_rate=0.45,
            ),
            SearchStrategyRecord(
                strategy="pt", chains=4, jobs=2, best_energy=0.005,
                predicted_accuracy=0.505, iterations=25,
                energy_evaluations=104, elapsed_s=1.0,
            ),
        ]
        table = render_search_comparison_table(records)
        assert "sa" in table and "pt" in table
        assert "45.0%" in table and "n/a" in table
        assert "52.00" in table or "52.0" in table or "50.50" in table


class TestCliAlmost:
    def test_strategy_flag_end_to_end(self, tmp_path, capsys):
        from repro.cli import main
        from repro.locking import lock_rll
        from repro.netlist.bench_io import save_bench

        netlist = load_iscas85("c432", scale="quick")
        locked = lock_rll(netlist, key_size=6, seed=2)
        design = tmp_path / "locked.bench"
        save_bench(locked.netlist, design)
        out = tmp_path / "defended.bench"
        code = main([
            "almost", str(design),
            "--key", str(locked.key),
            "--strategy", "random", "--chains", "2",
            "--iterations", "2", "--samples", "12", "--epochs", "2",
            "--no-cache", "--out", str(out),
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "strategy: random (chains=2, jobs=1)" in captured
        assert "security-aware recipe:" in captured
        assert "energy evaluations" in captured
        assert out.exists()

    def test_unknown_strategy_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["almost", "x.bench", "--strategy", "nope"]
            )


# -- cross-worker shared prefix cache --------------------------------------

def _shared_cache_energy(cache, netlist, recipe) -> float:
    """Module-level (picklable) pool scorer synthesizing through ``cache``."""
    synthesize_netlist(netlist, recipe, cache=cache)
    return abs(derive_seed(55, *recipe.steps) % 10_000 / 10_000 - 0.5)


class TestSharedSynthCache:
    def _fresh(self, max_entries=64):
        from repro.synth import SharedSynthCache

        return SharedSynthCache(max_entries=max_entries)

    def test_cached_equals_uncached_exactly(self, c432_netlist):
        cache = self._fresh()
        try:
            recipes = [random_recipe(10, seed=s) for s in range(3)]
            mutated = [r.with_step(7, "balance") for r in recipes]
            for recipe in recipes + mutated + recipes:
                cached = apply_recipe(
                    aig_from_netlist(c432_netlist), recipe, cache=cache
                )
                uncached = apply_recipe(
                    aig_from_netlist(c432_netlist), recipe
                )
                assert cached.fingerprint() == uncached.fingerprint()
            assert cache.steps_saved > 0
        finally:
            cache.close()

    def test_workers_share_one_store_and_totals_are_parent_visible(
        self, c432_netlist
    ):
        """The satellite-fix pin: every worker feeds the same store, and the
        aggregated hit/miss totals survive pool teardown in the parent."""
        import functools

        from repro.core.search import run_search

        cache = self._fresh()
        pool = ProcessPoolEvaluator(
            functools.partial(_shared_cache_energy, cache, c432_netlist),
            jobs=2,
            shared_cache=cache,
        )
        result = run_search(
            recipe_problem(),
            pool,
            strategy="pt",
            config=SearchConfig(iterations=3, chains=4, seed=9),
        )
        # Every energy evaluation synthesizes exactly once through the
        # shared store: one prefix lookup each, and every one of the 10
        # recipe steps is either served from a snapshot or executed.
        # These totals are exact regardless of how the pool scheduled the
        # candidates across workers.
        stats = pool.cache_stats()
        evals = result.energy_evaluations
        assert evals == 4 * 4  # bootstrap + 3 rounds of 4 chains
        assert stats["prefix_hits"] + stats["prefix_misses"] == evals
        assert stats["steps_saved"] + stats["steps_executed"] == 10 * evals
        assert stats["prefix_hits"] > 0
        assert stats["shared"] is True
        pool.close()
        # close() froze the final totals; they remain readable.
        assert pool.cache_stats() == stats

    def test_lru_bound_holds_across_stores(self, c432_netlist):
        cache = self._fresh(max_entries=4)
        try:
            for seed in range(3):
                apply_recipe(
                    aig_from_netlist(c432_netlist),
                    random_recipe(5, seed=seed),
                    cache=cache,
                )
            assert len(cache) <= 4
            assert cache.stats()["steps_executed"] == 15
        finally:
            cache.close()

    def test_rejects_bad_bound(self):
        from repro.synth import SharedSynthCache

        with pytest.raises(Exception):
            SharedSynthCache(max_entries=0)

    def test_pickles_without_manager(self):
        import pickle

        cache = self._fresh()
        try:
            handle = pickle.loads(pickle.dumps(cache))
            # The manager stays behind; the handle still reaches the store.
            assert handle._manager is None
            assert handle.stats()["prefix_hits"] == 0
        finally:
            cache.close()


class TestSharedCacheAlmost:
    def _fresh_proxy(self, proxy):
        import collections
        import dataclasses

        return dataclasses.replace(
            proxy,
            synth_cache=SynthCache(),
            _cache=collections.OrderedDict(),
        )

    def test_jobs_fanout_matches_serial_and_reports_stats(self, tiny_proxy):
        """jobs=2 must reproduce the serial search bit-for-bit while the
        shared store's aggregated stats land in AlmostResult.synth_cache."""
        config = dict(
            sa_iterations=2, seed=4, strategy="pt", chains=3,
            stop_margin=-1.0,
        )
        serial = AlmostDefense(
            self._fresh_proxy(tiny_proxy), AlmostConfig(jobs=1, **config)
        ).generate_recipe()
        shared = AlmostDefense(
            self._fresh_proxy(tiny_proxy), AlmostConfig(jobs=2, **config)
        ).generate_recipe()
        assert shared.recipe == serial.recipe
        assert shared.predicted_accuracy == serial.predicted_accuracy
        assert shared.trace == serial.trace
        # Pre-fix these were all zero: the worker-side caches died with
        # the pool.  Now the totals aggregate across workers.
        stats = shared.synth_cache
        assert stats.get("shared") is True
        assert stats["steps_saved"] + stats["steps_executed"] > 0
        assert stats["prefix_hits"] + stats["prefix_misses"] > 0
        assert serial.synth_cache["steps_executed"] > 0
