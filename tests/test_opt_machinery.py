"""Deeper tests of the optimization machinery: dry runs, gains, stress.

These cover the parts of rewrite/refactor that are easy to get subtly wrong:
dry-run node counting vs. real construction, MFFC-based gain accounting, and
long random pass sequences as a structural stress test.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import Aig, aig_from_netlist, lit_var, make_lit
from repro.aig.simulate import functionally_equal
from repro.synth import apply_transform, random_recipe
from repro.synth.factor import FNode
from repro.synth.opt_common import evaluate_candidate, leaf_lits
from repro.synth.structure import DryRunBuilder, RealBuilder, build_fnode, handle_not
from tests.conftest import build_random_netlist


class TestHandleEncoding:
    def test_real_handles(self):
        assert handle_not(4) == 5
        assert handle_not(5) == 4

    def test_ghost_handles(self):
        ghost = -1  # ghost 0, phase 0
        assert handle_not(ghost) == -2
        assert handle_not(handle_not(ghost)) == ghost


class TestDryRunMatchesReal:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_added_count_matches(self, seed):
        """Dry-run `added` must equal the real builder's node delta."""
        from repro.utils.rng import make_rng

        rng = make_rng(seed)
        aig = Aig()
        leaves = [aig.add_pi(f"p{i}") for i in range(4)]
        # Pre-populate with some structure so strash hits occur.
        aig.add_po(aig.add_and(leaves[0], leaves[1]), "pre")
        # Random factored tree over the 4 leaves.
        tree = self._random_tree(rng, depth=3)
        dry = DryRunBuilder(aig)
        build_fnode(dry, tree, leaves)
        before = aig.num_ands()
        real = RealBuilder(aig)
        out = build_fnode(real, tree, leaves)
        added_real = aig.num_ands() - before
        assert dry.added == added_real

    def _random_tree(self, rng, depth):
        if depth == 0 or rng.random() < 0.3:
            return FNode.lit(int(rng.integers(4)), bool(rng.integers(2)))
        kind = ["and", "or", "xor"][int(rng.integers(3))]
        children = [
            self._random_tree(rng, depth - 1)
            for _ in range(int(rng.integers(2, 4)))
        ]
        return FNode(kind=kind, children=tuple(children))


class TestEvaluateCandidate:
    def test_positive_gain_for_simplification(self):
        # Cut function = a & b & c built wastefully as ((a&b)&(a&c))&(b&c);
        # the candidate AND-tree of 2 nodes must show positive gain.
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        c = aig.add_pi("c")
        ab = aig.add_and(a, b)
        ac = aig.add_and(a, c)
        bc = aig.add_and(b, c)
        top1 = aig.add_and(ab, ac)
        root = aig.add_and(top1, bc)
        aig.add_po(root, "y")
        cut = (lit_var(a), lit_var(b), lit_var(c))
        mffc = aig.mffc(lit_var(root), cut)
        tree = FNode.and_(
            [FNode.lit(0), FNode.lit(1), FNode.lit(2)]
        )
        evaluation = evaluate_candidate(
            aig, lit_var(root), cut, mffc, tree, leaf_lits(cut)
        )
        # 5 nodes die, 2 new nodes: gain 3 (strash hits may improve it).
        assert evaluation.gain >= 2

    def test_hits_inside_mffc_reduce_savings(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        c = aig.add_pi("c")
        ab = aig.add_and(a, b)
        root = aig.add_and(ab, c)
        aig.add_po(root, "y")
        cut = (lit_var(a), lit_var(b), lit_var(c))
        mffc = aig.mffc(lit_var(root), cut)
        assert len(mffc) == 2
        # Candidate reuses (a&b): the ab node survives, so saved = 1,
        # added = 1 (the new top AND strash-hits the root itself -> 0...).
        tree = FNode.and_([FNode.lit(0), FNode.lit(1), FNode.lit(2)])
        evaluation = evaluate_candidate(
            aig, lit_var(root), cut, mffc, tree, leaf_lits(cut)
        )
        assert evaluation.gain <= 1


class TestStress:
    @given(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=6, deadline=None)
    def test_long_random_pass_sequences(self, circuit_seed, recipe_seed):
        """Ten random passes in sequence keep the AIG valid and equivalent."""
        netlist = build_random_netlist(
            seed=circuit_seed, num_inputs=7, num_gates=35
        )
        aig = aig_from_netlist(netlist)
        reference = aig.compact()
        recipe = random_recipe(10, seed=recipe_seed)
        current = aig
        for step in recipe:
            current = apply_transform(current, step)
            current.check()
        assert functionally_equal(reference, current.compact())

    def test_idempotent_convergence(self, c432_quick):
        """Repeating rewrite to fixpoint terminates and stays equivalent."""
        aig = aig_from_netlist(c432_quick)
        reference = aig.compact()
        from repro.synth.rewrite import rewrite_pass

        sizes = [aig.num_ands()]
        for _ in range(6):
            rewrite_pass(aig)
            sizes.append(aig.num_ands())
            if sizes[-1] == sizes[-2]:
                break
        assert sizes[-1] <= sizes[0]
        assert functionally_equal(reference, aig.compact())
