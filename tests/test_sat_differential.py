"""Differential harness: CdclSolver vs. exhaustive enumeration.

The incremental-solver work (persistent learned clauses, assumption-only
resets, clause-DB reduction, learned-clause minimization) is only safe if
every configuration stays *logically equivalent* to a fresh solve.  These
tests pin that by brute force on small random CNFs: enumerate all 2^n
assignments, then check

- one-shot solves agree on satisfiability and return genuine models;
- an *incremental* solver — same instance, a stream of assumption probes
  and clause additions — agrees with enumeration at every step, even when
  ``reduce_base`` is cranked low enough to force several DB reductions;
- minimization on/off never changes a verdict.

A handful of seeds run in tier-1; the wide sweep is ``slow``-marked (CI
runs it with ``-m ""``).
"""

from __future__ import annotations

import itertools

import pytest

from repro.sat import Cnf, CdclSolver
from repro.utils.rng import make_rng

FAST_SEEDS = range(8)
SLOW_SEEDS = range(8, 120)


def random_cnf(seed: int, max_vars: int = 12) -> Cnf:
    """A random k-CNF near the satisfiability threshold (ratio ~4.0)."""
    rng = make_rng(seed)
    num_vars = int(rng.integers(3, max_vars + 1))
    num_clauses = int(num_vars * (3.0 + 2.0 * rng.random()))
    cnf = Cnf(num_vars)
    for _ in range(num_clauses):
        width = int(rng.integers(1, 4))
        variables = rng.choice(num_vars, size=min(width, num_vars), replace=False)
        clause = tuple(
            int(v) + 1 if rng.random() < 0.5 else -(int(v) + 1)
            for v in variables
        )
        cnf.add_clause(clause)
    return cnf


def enumerate_models(cnf: Cnf, fixed: dict[int, bool] | None = None):
    """All satisfying assignments, as frozensets of true variables."""
    fixed = fixed or {}
    models = []
    free = [v for v in range(1, cnf.num_vars + 1) if v not in fixed]
    for bits in itertools.product((False, True), repeat=len(free)):
        assignment = dict(fixed)
        assignment.update(zip(free, bits))
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in cnf.clauses
        ):
            models.append(assignment)
    return models


def assert_model_satisfies(cnf: Cnf, model: dict[int, bool]) -> None:
    for clause in cnf.clauses:
        assert any(model[abs(lit)] == (lit > 0) for lit in clause), clause


def check_one_shot(seed: int, **solver_kwargs) -> None:
    cnf = random_cnf(seed)
    expected = bool(enumerate_models(cnf))
    result = CdclSolver(cnf, **solver_kwargs).solve()
    assert result.satisfiable == expected, f"seed={seed}"
    if result.satisfiable:
        assert_model_satisfies(cnf, result.model)


def check_incremental(seed: int, **solver_kwargs) -> None:
    """One persistent solver vs. enumeration across a probe/add stream."""
    cnf = random_cnf(seed)
    rng = make_rng(seed + 10_000)
    solver = CdclSolver(cnf, **solver_kwargs)
    for step in range(6):
        num_assumed = int(rng.integers(0, min(4, cnf.num_vars) + 1))
        assumed_vars = rng.choice(cnf.num_vars, size=num_assumed, replace=False)
        fixed = {int(v) + 1: bool(rng.integers(2)) for v in assumed_vars}
        assumptions = [v if val else -v for v, val in fixed.items()]
        expected = enumerate_models(cnf, fixed)
        result = solver.solve(assumptions)
        assert result.satisfiable == bool(expected), (
            f"seed={seed} step={step} assumptions={assumptions}"
        )
        if result.satisfiable:
            assert_model_satisfies(cnf, result.model)
            assert all(result.model[abs(a)] == (a > 0) for a in assumptions)
        if step == 2 and expected:
            # Block one known model mid-stream; later probes must see the
            # shrunken solution space through the same learned-clause DB.
            blocked = expected[0]
            clause = tuple(
                -v if blocked[v] else v for v in range(1, cnf.num_vars + 1)
            )
            solver.add_clause(clause)
            cnf.add_clause(clause)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_one_shot_agrees_with_enumeration(seed):
    check_one_shot(seed)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_incremental_agrees_with_enumeration(seed):
    check_incremental(seed)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_incremental_with_forced_db_reduction(seed):
    # reduce_base=4 forces reductions on even these tiny instances, so the
    # keep/delete policy itself is under differential test.
    check_incremental(seed, reduce_base=4, reduce_growth=4)


def test_db_reduction_actually_fires():
    # A threshold-ratio 3-CNF big enough to generate real conflict traffic;
    # two solvers, reduced and unreduced, must agree on the verdict.
    rng = make_rng(99)
    cnf = Cnf(24)
    for _ in range(103):
        variables = rng.choice(24, size=3, replace=False)
        cnf.add_clause(tuple(
            int(v) + 1 if rng.random() < 0.5 else -(int(v) + 1)
            for v in variables
        ))
    reduced = CdclSolver(cnf, reduce_base=8, reduce_growth=8)
    verdict = reduced.solve().satisfiable
    assert reduced.stats["db_reductions"] > 0, (
        "instance never exercised _reduce_db — make it harder"
    )
    assert reduced.stats["learned_deleted"] > 0
    assert CdclSolver(cnf).solve().satisfiable == verdict


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_minimization_off_agrees(seed):
    check_one_shot(seed, minimize=False)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_slow_sweep_one_shot(seed):
    check_one_shot(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_slow_sweep_incremental(seed):
    check_incremental(seed, reduce_base=8, reduce_growth=8)
