"""Documentation smoke tests: doctests in the public search API, internal
links in ``docs/``/README, and CLI subcommands named by the docs.

The doctest pass is the "verified importable" guarantee for the search
API's module docstrings: every documented module imports cleanly and its
inline examples execute as written.  The link/command checks share their
implementation with ``tools/check_docs.py`` (the CI docs job), so a doc
rot caught in CI is reproducible locally with plain pytest.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

DOCUMENTED_MODULES = [
    "repro.core.search",
    "repro.core.search.strategy",
    "repro.core.search.evaluator",
    "repro.core.search.driver",
    "repro.synth.cache",
]

# Documented with runnable examples, but no exact-resume contract to state
# (telemetry observes runs; it doesn't participate in determinism).
EXAMPLE_ONLY_MODULES = [
    "repro.obs.metrics",
    "repro.obs.trace",
]


@pytest.mark.parametrize(
    "module_name", DOCUMENTED_MODULES + EXAMPLE_ONLY_MODULES
)
def test_module_docstring_examples_run(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lost its module docstring"
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, (
        f"{module_name} documents no runnable examples — the doctest smoke "
        "test only proves anything when the docstrings carry `>>>` examples"
    )
    assert results.failed == 0


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_exact_resume_contract_is_documented(module_name):
    """Each public search/cache module names the contract it upholds."""
    module = importlib.import_module(module_name)
    text = module.__doc__.lower()
    assert any(
        phrase in text
        for phrase in ("exact-resume", "exact resume", "bit-identical",
                       "bit-for-bit", "seed-trace", "deterministic")
    ), f"{module_name} docstring no longer states its determinism contract"


def _tools():
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)
    return check_docs


def test_docs_internal_links_resolve():
    check_docs = _tools()
    problems = check_docs.check_links(check_docs.doc_files())
    assert not problems, "\n".join(problems)


def test_docs_name_only_real_cli_subcommands():
    check_docs = _tools()
    commands = check_docs.referenced_subcommands(check_docs.doc_files())
    assert commands, "docs no longer reference any `repro <cmd>` commands"
    problems = check_docs.check_subcommands(commands)
    assert not problems, "\n".join(problems)
