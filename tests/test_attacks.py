"""Tests for locality extraction and the four oracle-less attacks.

These are integration-leaning tests on small circuits and key sizes, so the
whole file stays in the seconds range.
"""

import numpy as np
import pytest

from repro.attacks import (
    AttackResult,
    LocalityExtractor,
    OmlaAttack,
    OmlaConfig,
    RedundancyAttack,
    ScopeAttack,
    SnapShotAttack,
    extract_localities,
)
from repro.attacks.base import majority_baseline_accuracy
from repro.attacks.redundancy import undetected_fault_count
from repro.attacks.subgraph import FEATURE_DIM, victim_key_inputs
from repro.errors import AttackError
from repro.locking import Key, lock_rll
from repro.synth import RESYN2
from repro.synth.engine import synthesize_and_map


@pytest.fixture(scope="module")
def victim(c432_quick_module=None):
    from repro.circuits import load_iscas85

    netlist = load_iscas85("c432", scale="quick")
    locked = lock_rll(netlist, key_size=8, seed=21)
    synth_netlist, mapped = synthesize_and_map(locked.netlist, RESYN2)
    return locked, synth_netlist, mapped


class TestAttackResult:
    def test_accuracy(self):
        result = AttackResult(
            predicted_bits=(1, 0, 1, 1), true_key=Key((1, 0, 0, 0))
        )
        assert result.accuracy == 0.5

    def test_accuracy_requires_key(self):
        with pytest.raises(AttackError):
            _ = AttackResult(predicted_bits=(1, 0)).accuracy

    def test_size_mismatch(self):
        result = AttackResult(predicted_bits=(1,), true_key=Key((1, 0)))
        with pytest.raises(AttackError):
            _ = result.accuracy

    def test_majority_baseline(self):
        assert majority_baseline_accuracy(Key((1, 1, 1, 0))) == 0.75


class TestLocalityExtraction:
    def test_features_shape(self, victim):
        locked, synth_netlist, mapped = victim
        key_nets = victim_key_inputs(mapped)
        graphs = extract_localities(mapped, key_nets, [0] * len(key_nets))
        assert len(graphs) == len(key_nets)
        for graph in graphs:
            assert graph.features.shape[1] == FEATURE_DIM
            assert graph.num_nodes >= 2

    def test_key_node_marked(self, victim):
        locked, synth_netlist, mapped = victim
        key_net = victim_key_inputs(mapped)[0]
        extractor = LocalityExtractor(mapped)
        graph = extractor.extract(key_net, label=1)
        # Node 0 is the key input; its KEYIN slot must be hot.
        from repro.attacks.subgraph import _TYPE_SLOTS

        assert graph.features[0, _TYPE_SLOTS.index("KEYIN")] == 1.0
        assert graph.label == 1

    def test_hops_bound_subgraph(self, victim):
        locked, synth_netlist, mapped = victim
        key_net = victim_key_inputs(mapped)[0]
        small = LocalityExtractor(mapped, hops=1).extract(key_net, 0)
        large = LocalityExtractor(mapped, hops=4).extract(key_net, 0)
        assert small.num_nodes <= large.num_nodes

    def test_max_nodes_cap(self, victim):
        locked, synth_netlist, mapped = victim
        key_net = victim_key_inputs(mapped)[0]
        capped = LocalityExtractor(mapped, hops=6, max_nodes=10).extract(key_net, 0)
        assert capped.num_nodes <= 10

    def test_netlist_and_mapped_views_both_work(self, victim):
        locked, synth_netlist, mapped = victim
        key_nets = victim_key_inputs(mapped)
        g1 = extract_localities(synth_netlist, key_nets, [0] * len(key_nets))
        g2 = extract_localities(mapped, key_nets, [0] * len(key_nets))
        assert len(g1) == len(g2)

    def test_non_pi_rejected(self, victim):
        locked, synth_netlist, mapped = victim
        extractor = LocalityExtractor(mapped)
        with pytest.raises(AttackError):
            extractor.extract("not_a_pin", 0)


class TestOmla:
    def test_end_to_end(self, victim):
        locked, synth_netlist, mapped = victim
        attack = OmlaAttack(
            RESYN2,
            OmlaConfig(epochs=8, num_relocks=2, relock_key_bits=8, seed=1),
        )
        data = attack.generate_training_data(locked.netlist)
        assert len(data) == 16
        attack.train(data)
        result = attack.attack(mapped, locked.key)
        assert result.key_size == 8
        assert 0.0 <= result.accuracy <= 1.0
        assert len(result.confidence) == 8
        assert all(0.5 <= c <= 1.0 for c in result.confidence)

    def test_sample_budget(self, victim):
        locked, _synth, _mapped = victim
        attack = OmlaAttack(
            RESYN2, OmlaConfig(epochs=1, relock_key_bits=8, seed=2)
        )
        data = attack.generate_training_data(locked.netlist, num_samples=11)
        assert len(data) == 11

    def test_untrained_attack_rejected(self, victim):
        locked, _synth, mapped = victim
        attack = OmlaAttack(RESYN2)
        with pytest.raises(AttackError):
            attack.attack(mapped)

    def test_training_requires_data(self):
        attack = OmlaAttack(RESYN2)
        with pytest.raises(AttackError):
            attack.train([])


class TestScope:
    def test_runs_and_scores(self, victim):
        locked, synth_netlist, _mapped = victim
        result = ScopeAttack().attack(synth_netlist, locked.key)
        assert result.key_size == 8
        assert 0.0 <= result.accuracy <= 1.0
        assert result.attack_name == "SCOPE"

    def test_no_keys_rejected(self, c432_quick):
        with pytest.raises(AttackError):
            ScopeAttack().attack(c432_quick)


class TestRedundancy:
    def test_fault_simulation_counts(self, tiny_netlist):
        nets = [g.output for g in tiny_netlist.gates]
        undetected = undetected_fault_count(
            tiny_netlist, nets, num_patterns=64, seed=1
        )
        # The tiny circuit is fully testable: everything detected.
        assert undetected == 0

    def test_redundant_logic_detected(self):
        from repro.circuits import CircuitBuilder

        builder = CircuitBuilder("red")
        a = builder.input("a")
        b = builder.input("b")
        # y = (a & b) | (a & b) -> one branch is redundant under sim.
        t1 = builder.and_(a, b)
        t2 = builder.or_(t1, t1)
        builder.output(t2)
        netlist = builder.build()
        count = undetected_fault_count(
            netlist, [g.output for g in netlist.gates], num_patterns=64, seed=0
        )
        assert count == 0  # or-of-same is still testable at t1

    def test_attack_runs(self, victim):
        locked, synth_netlist, _mapped = victim
        attack = RedundancyAttack(num_patterns=64, max_fault_nets=8)
        result = attack.attack(synth_netlist, locked.key)
        assert result.key_size == 8
        assert 0.0 <= result.accuracy <= 1.0


class TestSnapShot:
    def test_end_to_end(self, victim):
        locked, synth_netlist, mapped = victim
        omla = OmlaAttack(
            RESYN2, OmlaConfig(epochs=1, num_relocks=2, relock_key_bits=8, seed=5)
        )
        data = omla.generate_training_data(locked.netlist)
        attack = SnapShotAttack(epochs=20, seed=3)
        attack.train(data)
        result = attack.attack(mapped, locked.key)
        assert result.key_size == 8
        assert 0.0 <= result.accuracy <= 1.0

    def test_untrained_rejected(self, victim):
        _locked, _synth, mapped = victim
        with pytest.raises(AttackError):
            SnapShotAttack().attack(mapped)
