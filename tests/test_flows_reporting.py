"""Tests for the experiment flows and the reporting helpers."""

import os

import pytest

from repro.core.proxy import ProxyConfig, build_resyn2_proxy
from repro.flows import attacker_resynthesis_sweep, ppa_overhead_table
from repro.flows.resynthesis import accuracy_metric_correlation
from repro.locking import lock_rll
from repro.reporting import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    render_table,
    resolve_scale,
)
from repro.reporting.paper_data import BENCHMARKS
from repro.synth import RESYN2
from repro.synth.engine import synthesize_netlist


@pytest.fixture(scope="module")
def small_locked():
    from repro.circuits import load_iscas85

    netlist = load_iscas85("c432", scale="quick")
    return lock_rll(netlist, key_size=8, seed=17)


class TestResynthesisFlow:
    def test_sweep_points(self, small_locked):
        proxy = build_resyn2_proxy(
            small_locked,
            ProxyConfig(num_samples=16, epochs=3, relock_key_bits=8, seed=1),
        )
        almost_netlist = synthesize_netlist(small_locked.netlist, RESYN2)
        points = attacker_resynthesis_sweep(
            almost_netlist, proxy, objective="delay", iterations=4, seed=2
        )
        assert len(points) == 5
        for point in points:
            assert point.metric_ratio > 0
            assert 0.0 <= point.attack_accuracy <= 1.0
        correlation = accuracy_metric_correlation(points)
        assert -1.0 <= correlation <= 1.0

    def test_objective_validated(self, small_locked):
        with pytest.raises(ValueError):
            attacker_resynthesis_sweep(small_locked.netlist, None, objective="joy")

    def test_sweep_exact_verify(self, small_locked):
        """Every recipe the attacker evaluates is SAT-proven sound."""
        proxy = build_resyn2_proxy(
            small_locked,
            ProxyConfig(num_samples=16, epochs=3, relock_key_bits=8, seed=1),
        )
        almost_netlist = synthesize_netlist(small_locked.netlist, RESYN2)
        points = attacker_resynthesis_sweep(
            almost_netlist,
            proxy,
            objective="area",
            iterations=2,
            seed=3,
            exact_verify=True,
        )
        assert points


class TestPpaFlow:
    def test_overhead_table(self, small_locked):
        variant = synthesize_netlist(small_locked.netlist, RESYN2)
        comparison = ppa_overhead_table(
            small_locked.netlist, variant, name="c432"
        )
        row = comparison.row()
        assert set(row) == {
            "area -opt", "area +opt", "delay -opt",
            "delay +opt", "power -opt", "power +opt",
        }
        # Synthesis should not blow the design up by an order of magnitude.
        assert abs(row["area -opt"]) < 100

    def test_self_comparison_zero(self, small_locked):
        comparison = ppa_overhead_table(
            small_locked.netlist, small_locked.netlist
        )
        assert abs(comparison.area_no_opt) < 1e-9
        assert abs(comparison.delay_opt) < 1e-9


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"],
            [["a", 1.5], ["bench", 22.25]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_paper_data_complete(self):
        for variant in ("M_resyn2", "M_random", "M*"):
            for key_size in (64, 128):
                assert set(PAPER_TABLE1[variant][key_size]) == set(BENCHMARKS)
        for attack in ("OMLA", "SCOPE", "Redundancy"):
            for key_size in (64, 128):
                for recipe in ("resyn2", "ALMOST"):
                    assert set(PAPER_TABLE2[attack][key_size][recipe]) == set(
                        BENCHMARKS
                    )
        for metric in ("area", "delay", "power"):
            for key_size in (64, 128):
                assert set(PAPER_TABLE3[metric][key_size]) == set(BENCHMARKS)

    def test_paper_omla_claim_direction(self):
        """Paper claim: ALMOST drops OMLA accuracy on every benchmark."""
        for key_size in (64, 128):
            table = PAPER_TABLE2["OMLA"][key_size]
            for bench in BENCHMARKS:
                assert table["ALMOST"][bench] < table["resyn2"][bench]

    def test_scale_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "standard")
        scale = resolve_scale()
        assert scale.name == "standard"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            resolve_scale()
        monkeypatch.delenv("REPRO_SCALE")
        assert resolve_scale().name == "quick"

    def test_scales_are_ordered(self):
        from repro.reporting.scale import FULL, QUICK, STANDARD

        assert QUICK.proxy_samples < STANDARD.proxy_samples < FULL.proxy_samples
        assert QUICK.sa_iterations < STANDARD.sa_iterations <= FULL.sa_iterations
