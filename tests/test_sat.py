"""Tests for the SAT subsystem: CNF, CDCL solver, miter, SAT attack."""

import itertools

import numpy as np
import pytest

from repro.aig.build import aig_from_netlist
from repro.aig.simulate import output_truth_tables
from repro.attacks import (
    ATTACK_REGISTRY,
    SatAttack,
    SatAttackConfig,
    get_attack,
    oracle_from_key,
)
from repro.circuits import CircuitBuilder
from repro.errors import AttackError, SatError
from repro.locking import Key, apply_key, lock_rll
from repro.netlist.gates import GateType
from repro.sat import (
    CdclSolver,
    Cnf,
    build_miter,
    check_equivalence,
    cnf_from_dimacs,
    solve_cnf,
    tseitin_aig,
    tseitin_netlist,
)
from repro.synth import RESYN2
from repro.synth.engine import synthesize_netlist
from tests.conftest import build_random_netlist


class TestCnf:
    def test_new_var_and_clause_validation(self):
        cnf = Cnf()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause((a, -b))
        assert cnf.num_vars == 2 and cnf.num_clauses == 1
        with pytest.raises(SatError):
            cnf.add_clause((0,))
        with pytest.raises(SatError):
            cnf.add_clause((3,))

    def test_dimacs_round_trip(self):
        cnf = Cnf(4)
        cnf.add_clause((1, -2, 3))
        cnf.add_clause((-1, 4))
        cnf.add_clause((2,))
        text = cnf.to_dimacs(comments=["example", "two comments"])
        parsed = cnf_from_dimacs(text)
        assert parsed.num_vars == cnf.num_vars
        assert parsed.clauses == cnf.clauses
        # And the round trip is a fixpoint.
        assert parsed.to_dimacs() == cnf.to_dimacs()

    def test_dimacs_parse_errors(self):
        with pytest.raises(SatError):
            cnf_from_dimacs("1 2 0\n")  # clause before header
        with pytest.raises(SatError):
            cnf_from_dimacs("p cnf 2 1\n1 2\n")  # unterminated clause
        with pytest.raises(SatError):
            cnf_from_dimacs("p cnf 2 2\n1 2 0\n")  # clause count mismatch
        with pytest.raises(SatError):
            cnf_from_dimacs("c only comments\n")


class TestCdclSolver:
    def test_empty_clause_unsat(self):
        cnf = Cnf(2)
        cnf.add_clause((1, 2))
        solver = CdclSolver(cnf)
        solver.add_clause(())
        assert not solver.solve().satisfiable

    def test_contradictory_units_unsat(self):
        cnf = Cnf(1)
        cnf.add_clause((1,))
        cnf.add_clause((-1,))
        assert not solve_cnf(cnf).satisfiable

    def test_model_satisfies_clauses(self):
        cnf = Cnf(3)
        clauses = [(1, 2), (-1, 3), (-2, -3), (1, 3)]
        for clause in clauses:
            cnf.add_clause(clause)
        result = solve_cnf(cnf)
        assert result.satisfiable
        for clause in clauses:
            assert any(
                result.value(abs(lit)) == (lit > 0) for lit in clause
            )

    def test_agrees_with_brute_force_on_random_instances(self):
        from repro.utils.rng import make_rng

        rng = make_rng(11)
        for trial in range(40):
            num_vars = int(rng.integers(1, 8))
            clauses = []
            cnf = Cnf(num_vars)
            for _ in range(int(rng.integers(1, 26))):
                clause = tuple(
                    int((-1 if rng.random() < 0.5 else 1) * rng.integers(1, num_vars + 1))
                    for _ in range(int(rng.integers(1, 4)))
                )
                clauses.append(clause)
                cnf.add_clause(clause)
            expected = any(
                all(
                    any(
                        (bits[abs(lit) - 1] if lit > 0 else not bits[abs(lit) - 1])
                        for lit in clause
                    )
                    for clause in clauses
                )
                for bits in itertools.product([False, True], repeat=num_vars)
            )
            assert solve_cnf(cnf).satisfiable == expected, f"trial {trial}"

    def test_pigeonhole_unsat(self):
        pigeons, holes = 5, 4
        cnf = Cnf(pigeons * holes)
        var = lambda p, h: p * holes + h + 1  # noqa: E731
        for p in range(pigeons):
            cnf.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add_clause((-var(p1, h), -var(p2, h)))
        result = solve_cnf(cnf)
        assert not result.satisfiable
        assert result.stats["conflicts"] > 0  # required actual search

    def test_assumptions_incremental(self):
        cnf = Cnf(3)
        cnf.add_clause((1, 2))
        cnf.add_clause((-1, 3))
        solver = CdclSolver(cnf)
        under_a = solver.solve([1])
        assert under_a.satisfiable and under_a.value(3) is True
        blocked = solver.solve([1, -3])
        assert not blocked.satisfiable and blocked.assumption_failed
        # Assumption failure is not global unsatisfiability.
        assert solver.solve([]).satisfiable
        # Clauses may arrive between solve calls.
        solver.add_clause((-2,))
        assert solver.solve([-1]).assumption_failed
        assert solver.solve([1]).satisfiable

    def test_tautology_and_duplicates_ignored(self):
        solver = CdclSolver(Cnf(2))
        solver.add_clause((1, -1))
        solver.add_clause((2, 2))
        result = solver.solve()
        assert result.satisfiable and result.value(2) is True


class TestTseitin:
    def _equivalence_by_enumeration(self, netlist):
        """CNF models restricted to inputs must match simulation exactly."""
        aig = aig_from_netlist(netlist)
        tables = output_truth_tables(aig)
        encoded = tseitin_aig(aig)
        names = aig.pi_names()
        for minterm in range(1 << len(names)):
            assumptions = []
            for index, name in enumerate(names):
                var = encoded.inputs[name]
                assumptions.append(var if (minterm >> index) & 1 else -var)
            for po_index, name in enumerate(aig.po_names()):
                expected = bool((tables[po_index].bits >> minterm) & 1)
                lit = encoded.outputs[name]
                solver = CdclSolver(encoded.cnf)
                result = solver.solve(assumptions + [lit])
                assert result.satisfiable == expected, (minterm, name)

    def test_aig_encoding_matches_simulation(self, tiny_netlist):
        self._equivalence_by_enumeration(tiny_netlist)

    def test_netlist_encoding_all_gate_types(self):
        builder = CircuitBuilder("gates")
        a = builder.input("a")
        b = builder.input("b")
        c = builder.input("c")
        builder.output(builder.and_(a, b), name="o_and")
        builder.output(builder.nand(a, b), name="o_nand")
        builder.output(builder.or_(a, c), name="o_or")
        builder.output(builder.nor(b, c), name="o_nor")
        builder.output(builder.xor(a, b), name="o_xor")
        builder.output(builder.xnor(a, c), name="o_xnor")
        builder.output(builder.not_(a), name="o_not")
        netlist = builder.build()
        netlist.gates.append(
            type(netlist.gates[0])("o_mux", GateType.MUX, (a, b, c))
        )
        netlist.outputs.append("o_mux")
        netlist.validate()

        encoded = tseitin_netlist(netlist)
        solver = CdclSolver(encoded.cnf)
        from repro.netlist.simulate import exhaustive_patterns, simulate_patterns

        patterns = exhaustive_patterns(3)
        expected = simulate_patterns(netlist, patterns)
        for row, pattern in enumerate(patterns):
            assumptions = [
                encoded.inputs[net] if bit else -encoded.inputs[net]
                for net, bit in zip(netlist.inputs, pattern)
            ]
            result = solver.solve(assumptions)
            assert result.satisfiable
            model = result.model
            for col, net in enumerate(netlist.outputs):
                lit = encoded.outputs[net]
                value = model[abs(lit)] == (lit > 0)
                assert value == bool(expected[row, col]), (row, net)

    def test_shared_input_vars(self, tiny_netlist):
        cnf = Cnf()
        first = tseitin_netlist(tiny_netlist, cnf)
        second = tseitin_netlist(tiny_netlist, cnf, input_vars=first.inputs)
        assert first.inputs == second.inputs
        # Same inputs, same function: outputs can never differ.
        solver = CdclSolver(cnf)
        for net in tiny_netlist.outputs:
            diff = cnf.new_var()
            from repro.sat.cnf import add_xor_clauses

            add_xor_clauses(cnf, diff, first.outputs[net], second.outputs[net])
            solver = CdclSolver(cnf)
            assert not solver.solve([diff]).satisfiable


class TestMiterEquivalence:
    def test_equivalent_to_itself(self, tiny_netlist):
        verdict = check_equivalence(tiny_netlist, tiny_netlist.copy())
        assert verdict.equivalent and bool(verdict)
        assert verdict.counterexample is None

    def test_synthesis_preserves_function_exactly(self, c432_quick):
        optimized = synthesize_netlist(c432_quick, RESYN2)
        assert check_equivalence(c432_quick, optimized).equivalent

    def test_mutated_copy_yields_verified_counterexample(self, c432_quick):
        optimized = synthesize_netlist(c432_quick, RESYN2)
        mutated = optimized.copy()
        for index, gate in enumerate(mutated.gates):
            if gate.gate_type is GateType.AND and gate.output in {
                net for g in mutated.gates for net in g.inputs
            } | set(mutated.outputs):
                mutated.gates[index] = type(gate)(
                    gate.output, GateType.NOR, gate.inputs
                )
                break
        verdict = check_equivalence(c432_quick, mutated)
        if verdict.equivalent:
            pytest.skip("mutation happened to be functionally invisible")
        # The counterexample is simulation-verified inside check_equivalence;
        # double-check from the outside too.
        from repro.netlist.simulate import simulate_patterns

        pattern = np.array(
            [[verdict.counterexample[net] for net in c432_quick.inputs]],
            dtype=np.uint8,
        )
        original_out = simulate_patterns(c432_quick, pattern)
        mutated_out = simulate_patterns(
            mutated, pattern, input_order=c432_quick.inputs
        )
        order = [mutated.outputs.index(net) for net in c432_quick.outputs]
        assert (original_out != mutated_out[:, order]).any()

    def test_random_netlists_equal_after_synthesis(self):
        for seed in range(3):
            netlist = build_random_netlist(seed=seed, num_gates=20)
            assert check_equivalence(
                netlist, synthesize_netlist(netlist, RESYN2)
            ).equivalent

    def test_interface_mismatch_rejected(self, tiny_netlist, c432_quick):
        with pytest.raises(SatError):
            check_equivalence(tiny_netlist, c432_quick)

    def test_build_miter_single_output(self, tiny_netlist):
        miter = build_miter(tiny_netlist, tiny_netlist.copy())
        assert miter.num_pos == 1
        assert miter.po_names() == ["diff"]


class TestSatAttack:
    def test_registered(self):
        assert ATTACK_REGISTRY["sat"] is SatAttack
        assert get_attack("sat") is SatAttack
        with pytest.raises(AttackError):
            get_attack("nope")

    def test_recovers_functionally_correct_key(self, c432_quick):
        locked = lock_rll(c432_quick, key_size=8, seed=42)
        result = SatAttack().attack(locked)
        assert result.key_size == 8
        assert result.details["iterations"] >= 1
        assert result.details["exact"]
        assert not result.details["budget_exhausted"]
        # Uniqueness is now *measured* (block + re-solve).  If the solver
        # proved the survivor unique, it can only be the defender's key;
        # a recovered key with bit errors implies equivalent siblings.
        if result.details["key_unique"]:
            assert result.predicted_bits == locked.key.bits
        if result.predicted_bits != locked.key.bits:
            assert not result.details["key_unique"]
        # Per-iteration instrumentation covers every DIP.
        trace = result.details["trace"]
        assert len(trace) == result.details["iterations"]
        assert all(entry["conflicts"] >= 0 for entry in trace)
        assert result.details["oracle_queries"] == result.details["iterations"]
        # The recovered key must unlock: prove it, don't sample it.
        recovered = apply_key(locked.netlist, Key(result.predicted_bits))
        assert check_equivalence(recovered, c432_quick).equivalent

    def test_oracle_function_interface(self, c432_quick):
        locked = lock_rll(c432_quick, key_size=6, seed=3)
        oracle = oracle_from_key(locked.netlist, locked.key)
        result = SatAttack().attack(
            locked.netlist, oracle=oracle, true_key=locked.key
        )
        recovered = apply_key(locked.netlist, Key(result.predicted_bits))
        assert check_equivalence(recovered, c432_quick).equivalent

    def test_blocked_wrong_key_is_unsat(self, c432_quick):
        """Key assumptions conflicting with an I/O observation are refuted."""
        locked = lock_rll(c432_quick, key_size=4, seed=5)
        netlist = locked.netlist
        encoded = tseitin_netlist(netlist)
        solver = CdclSolver(encoded.cnf)
        # One oracle observation pins input and output values.
        from repro.netlist.simulate import random_patterns
        from repro.locking import oracle_outputs

        patterns = random_patterns(len(netlist.functional_inputs), 64, seed=1)
        responses = oracle_outputs(netlist, locked.key, patterns)
        for pattern, response in zip(patterns, responses):
            for net, bit in zip(netlist.functional_inputs, pattern):
                var = encoded.inputs[net]
                solver.add_clause((var if bit else -var,))
            for net, bit in zip(netlist.outputs, response):
                lit = encoded.outputs[net]
                solver.add_clause((lit if bit else -lit,))
            break  # a single observation suffices for this circuit seed
        correct = [
            encoded.inputs[net] if bit else -encoded.inputs[net]
            for net, bit in zip(netlist.key_inputs, locked.key.bits)
        ]
        assert solver.solve(correct).satisfiable
        flipped = [-lit for lit in correct]
        result = solver.solve(flipped)
        if result.satisfiable:
            pytest.skip("fully flipped key happens to match this observation")
        assert result.assumption_failed or not result.satisfiable

    def test_needs_key_inputs(self, c432_quick):
        with pytest.raises(AttackError):
            SatAttack().attack(c432_quick, oracle=lambda p: p)

    def test_budget_exhaustion_returns_partial_result(self, c432_quick):
        """Exhausting the DIP budget must not raise — grid cells share this
        partial-result shape so one resilient design can't kill a sweep."""
        locked = lock_rll(c432_quick, key_size=8, seed=42)
        result = SatAttack(SatAttackConfig(max_iterations=0)).attack(locked)
        assert result.details["budget_exhausted"] is True
        assert not result.details["exact"]
        # A just-found DIP proves two surviving keys disagree.
        assert result.details["key_unique"] is False
        assert result.key_size == 8
        assert all(c == 0.5 for c in result.confidence)

    def test_unique_key_is_reported_unique(self):
        """A single XOR key gate on an output has exactly one correct key."""
        builder = CircuitBuilder("one-gate")
        a = builder.input("a")
        b = builder.input("b")
        builder.output(builder.and_(a, b), name="y")
        netlist = builder.build()
        locked = lock_rll(netlist, key_size=1, seed=0, nets=["y"])
        result = SatAttack().attack(locked)
        assert result.details["key_unique"] is True
        assert result.predicted_bits == locked.key.bits


class TestEngineVerification:
    def test_synthesize_netlist_verify_sat(self, c432_quick):
        result = synthesize_netlist(c432_quick, RESYN2, verify="sat")
        assert check_equivalence(c432_quick, result).equivalent

    def test_verify_rejects_unknown_mode(self, c432_quick):
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError):
            synthesize_netlist(c432_quick, RESYN2, verify="telepathy")


class TestSatReporting:
    def test_table_renders_iterations_and_ml_column(self, c432_quick):
        from repro.reporting import SatAttackRecord, render_sat_attack_table

        locked = lock_rll(c432_quick, key_size=6, seed=8)
        result = SatAttack().attack(locked)
        record = SatAttackRecord.from_result(
            "c432", result, functionally_correct=True
        )
        table = render_sat_attack_table([record], ml_accuracies={"c432": 0.5})
        assert "c432" in table and "DIP iters" in table
        assert "(exact)" in table and "50.0" in table
        assert str(record.iterations) in table
