"""Tests for the ML substrate: autograd gradients, layers, GIN, training."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MLError
from repro.ml import (
    Adam,
    GinClassifier,
    GraphData,
    Linear,
    Mlp,
    Tensor,
    cross_entropy,
    pack_graphs,
    train_classifier,
    TrainConfig,
)
from repro.ml.autograd import log_softmax, segment_sum, spmm
from repro.ml.optim import Sgd
from repro.ml.train import evaluate_accuracy
from repro.utils.rng import make_rng


def numeric_gradient(fn, array, eps=1e-6):
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = array[index]
        array[index] = original + eps
        plus = fn()
        array[index] = original - eps
        minus = fn()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestAutograd:
    def test_backward_requires_scalar(self):
        t = Tensor(np.zeros((2, 2)), requires_grad=True)
        with pytest.raises(MLError):
            t.backward()

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_matmul_add_relu_grads(self, seed):
        rng = make_rng(seed)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2,)), requires_grad=True)

        def forward():
            return float(
                (Tensor(x.data).matmul(Tensor(w.data)) + Tensor(b.data))
                .relu()
                .sum()
                .data
            )

        loss = (x.matmul(w) + b).relu().sum()
        loss.backward()
        for tensor in (x, w, b):
            numeric = numeric_gradient(
                lambda t=tensor: _loss_with(x, w, b), tensor.data
            )
            assert np.allclose(tensor.grad, numeric, atol=1e-5)

    def test_mul_and_scale(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 5.0]), requires_grad=True)
        loss = (a * b).sum()
        loss.backward()
        assert np.allclose(a.grad, b.data)
        assert np.allclose(b.grad, a.data)
        a.zero_grad()
        a.scale(3.0).sum().backward()
        assert np.allclose(a.grad, [3.0, 3.0])

    def test_log_softmax_rows_normalize(self):
        logits = Tensor(np.array([[1.0, 2.0, 3.0]]), requires_grad=True)
        out = log_softmax(logits)
        assert np.isclose(np.exp(out.data).sum(), 1.0)

    def test_cross_entropy_gradient(self):
        rng = make_rng(3)
        logits_data = rng.normal(size=(5, 3))
        labels = np.array([0, 2, 1, 1, 0])
        logits = Tensor(logits_data.copy(), requires_grad=True)
        loss = cross_entropy(logits, labels)
        loss.backward()
        numeric = numeric_gradient(
            lambda: float(
                cross_entropy(Tensor(logits_data), labels).data
            ),
            logits_data,
        )
        assert np.allclose(logits.grad, numeric, atol=1e-6)

    def test_spmm_gradient(self):
        rng = make_rng(4)
        adjacency = sp.csr_matrix(
            (np.ones(4), ([0, 1, 2, 2], [1, 0, 0, 1])), shape=(3, 3)
        )
        x_data = rng.normal(size=(3, 2))
        x = Tensor(x_data.copy(), requires_grad=True)
        spmm(adjacency, x).sum().backward()
        numeric = numeric_gradient(
            lambda: float((adjacency @ x_data).sum()), x_data
        )
        assert np.allclose(x.grad, numeric, atol=1e-6)

    def test_segment_sum_gradient(self):
        x = Tensor(np.arange(6, dtype=float).reshape(3, 2), requires_grad=True)
        ids = np.array([0, 1, 1])
        out = segment_sum(x, ids, 2)
        assert np.allclose(out.data, [[0, 1], [6, 8]])
        out.sum().backward()
        assert np.allclose(x.grad, np.ones((3, 2)))

    def test_concat_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        a.concat(b).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)


def _loss_with(x, w, b):
    return float(
        (Tensor(x.data).matmul(Tensor(w.data)) + Tensor(b.data))
        .relu()
        .sum()
        .data
    )


class TestGraphData:
    def test_pack_block_diagonal(self):
        g1 = GraphData(np.ones((2, 3)), np.array([[0, 1]]), label=0)
        g2 = GraphData(np.ones((3, 3)), np.array([[0, 2]]), label=1)
        batch = pack_graphs([g1, g2])
        assert batch.features.shape == (5, 3)
        assert batch.adjacency.shape == (5, 5)
        assert batch.adjacency[0, 1] == 1
        assert batch.adjacency[2, 4] == 1  # offset by first graph
        assert list(batch.graph_ids) == [0, 0, 1, 1, 1]
        assert list(batch.labels) == [0, 1]

    def test_edge_bounds_checked(self):
        with pytest.raises(MLError):
            GraphData(np.ones((2, 3)), np.array([[0, 5]]), label=0)

    def test_empty_pack_rejected(self):
        with pytest.raises(MLError):
            pack_graphs([])

    def test_graph_without_edges(self):
        g = GraphData(np.ones((2, 3)), np.zeros((0, 2)), label=1)
        batch = pack_graphs([g])
        assert batch.adjacency.nnz == 0


class TestTraining:
    def _labeled_graphs(self, count=120, signal="feature", seed=0):
        rng = make_rng(seed)
        graphs = []
        for i in range(count):
            label = i % 2
            n = 6
            feats = rng.normal(size=(n, 4))
            if signal == "feature":
                feats[:, 0] += 2.0 * label
                edges = np.array([[j, (j + 1) % n] for j in range(n)])
            else:  # structural signal: label 1 graphs are cliques
                if label:
                    edges = np.array(
                        [[u, v] for u in range(n) for v in range(u + 1, n)]
                    )
                else:
                    edges = np.array([[j, (j + 1) % n] for j in range(n)])
            graphs.append(GraphData(feats, edges, label))
        return graphs

    def test_learns_feature_signal(self):
        graphs = self._labeled_graphs(signal="feature")
        model = GinClassifier(4, hidden=16, num_layers=2, seed=1)
        result = train_classifier(
            model, graphs, TrainConfig(epochs=12, seed=2)
        )
        assert result.train_accuracy[-1] > 0.9

    def test_learns_structural_signal(self):
        graphs = self._labeled_graphs(signal="structure", seed=5)
        model = GinClassifier(4, hidden=16, num_layers=2, seed=3)
        result = train_classifier(
            model, graphs, TrainConfig(epochs=30, seed=4)
        )
        assert result.train_accuracy[-1] > 0.85

    def test_loss_decreases(self):
        graphs = self._labeled_graphs()
        model = GinClassifier(4, hidden=8, num_layers=2, seed=7)
        result = train_classifier(model, graphs, TrainConfig(epochs=10, seed=8))
        assert result.train_loss[-1] < result.train_loss[0]

    def test_extra_graphs_provider_called(self):
        graphs = self._labeled_graphs(count=40)
        calls = []

        def provider(epoch):
            calls.append(epoch)
            return []

        model = GinClassifier(4, hidden=8, num_layers=1, seed=9)
        train_classifier(
            model,
            graphs,
            TrainConfig(epochs=5, seed=1),
            extra_graphs_provider=provider,
        )
        assert calls == list(range(5))

    def test_state_dict_roundtrip(self):
        model = GinClassifier(4, hidden=8, num_layers=2, seed=11)
        state = model.state_dict()
        batch = pack_graphs(self._labeled_graphs(count=4))
        before = model(batch).data.copy()
        for param in model.parameters():
            param.data += 1.0
        model.load_state_dict(state)
        assert np.allclose(model(batch).data, before)

    def test_empty_training_rejected(self):
        model = GinClassifier(4, seed=0)
        with pytest.raises(MLError):
            train_classifier(model, [])
        with pytest.raises(MLError):
            evaluate_accuracy(model, [])

    def test_sgd_momentum_steps(self):
        param = Tensor(np.array([1.0]), requires_grad=True)
        opt = Sgd([param], lr=0.1, momentum=0.5)
        param.grad = np.array([1.0])
        opt.step()
        assert np.isclose(param.data[0], 0.9)
