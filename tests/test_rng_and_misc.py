"""Tests for seed derivation, error hierarchy and package metadata."""

import pytest

import repro
from repro.errors import (
    AigError,
    AttackError,
    BenchParseError,
    LockingError,
    MappingError,
    MLError,
    NetlistError,
    ReproError,
    SynthesisError,
)
from repro.utils.rng import derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_tag_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_order_sensitivity(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_in_range(self):
        for tag in range(50):
            seed = derive_seed(0, tag)
            assert 0 <= seed < 2**63 - 1

    def test_streams_decorrelated(self):
        rng_a = make_rng(derive_seed(7, "x"))
        rng_b = make_rng(derive_seed(7, "y"))
        a = rng_a.integers(0, 1000, size=50)
        b = rng_b.integers(0, 1000, size=50)
        assert (a != b).any()


class TestErrors:
    def test_hierarchy(self):
        for error_type in (
            NetlistError, BenchParseError, AigError, SynthesisError,
            MappingError, LockingError, AttackError, MLError,
        ):
            assert issubclass(error_type, ReproError)
        assert issubclass(BenchParseError, NetlistError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise AigError("boom")


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.3.0"

    def test_all_symbols_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_examples_compile(self):
        """Examples must at least be syntactically valid Python."""
        import pathlib
        import py_compile

        examples = pathlib.Path(__file__).parent.parent / "examples"
        files = sorted(examples.glob("*.py"))
        assert len(files) >= 3
        for path in files:
            py_compile.compile(str(path), doraise=True)
