"""Tests for the synthetic ISCAS85 benchmark generators."""

import numpy as np
import pytest

from repro.circuits import (
    CircuitBuilder,
    ISCAS85_PROFILES,
    available_benchmarks,
    load_iscas85,
)
from repro.circuits.blocks import parity_groups
from repro.errors import ReproError
from repro.netlist.simulate import exhaustive_patterns, random_patterns, simulate_patterns


class TestBuilder:
    def test_ripple_adder_correct(self):
        builder = CircuitBuilder("add")
        a = builder.inputs("a", 4)
        b = builder.inputs("b", 4)
        sums, carry = builder.ripple_adder(a, b)
        builder.outputs(sums)
        builder.output(carry)
        netlist = builder.build()
        patterns = exhaustive_patterns(8)
        outputs = simulate_patterns(netlist, patterns)
        for row, pattern in zip(outputs, patterns):
            va = sum(int(pattern[i]) << i for i in range(4))
            vb = sum(int(pattern[4 + i]) << i for i in range(4))
            total = sum(int(row[i]) << i for i in range(5))
            assert total == va + vb

    def test_comparators(self):
        builder = CircuitBuilder("cmp")
        a = builder.inputs("a", 3)
        b = builder.inputs("b", 3)
        builder.output(builder.equality(a, b), name="eq")
        builder.output(builder.less_than(a, b), name="lt")
        netlist = builder.build()
        patterns = exhaustive_patterns(6)
        outputs = simulate_patterns(netlist, patterns)
        for row, pattern in zip(outputs, patterns):
            va = sum(int(pattern[i]) << i for i in range(3))
            vb = sum(int(pattern[3 + i]) << i for i in range(3))
            assert row[0] == int(va == vb)
            assert row[1] == int(va < vb)

    def test_xor_tree(self):
        builder = CircuitBuilder("xt")
        nets = builder.inputs("x", 5)
        builder.output(builder.xor_tree(nets))
        netlist = builder.build()
        patterns = exhaustive_patterns(5)
        outputs = simulate_patterns(netlist, patterns)
        for row, pattern in zip(outputs, patterns):
            assert row[0] == int(pattern.sum()) % 2

    def test_mux(self):
        builder = CircuitBuilder("mx")
        s = builder.input("s")
        a = builder.input("a")
        b = builder.input("b")
        builder.output(builder.mux(s, a, b))
        outputs = simulate_patterns(builder.build(), exhaustive_patterns(3))
        for row, (vs, va, vb) in zip(outputs, exhaustive_patterns(3)):
            assert row[0] == (vb if vs else va)


class TestBlocks:
    def test_parity_groups_cover_all_bits(self):
        groups = parity_groups(11)
        covered = set()
        for group in groups:
            covered.update(group)
        assert covered == set(range(11))

    def test_multiplier_small(self):
        from repro.circuits.blocks import array_multiplier

        builder = CircuitBuilder("mult")
        a = builder.inputs("a", 4)
        b = builder.inputs("b", 4)
        product = array_multiplier(builder, a, b)
        builder.outputs(product)
        netlist = builder.build()
        patterns = exhaustive_patterns(8)
        outputs = simulate_patterns(netlist, patterns)
        for row, pattern in zip(outputs, patterns):
            va = sum(int(pattern[i]) << i for i in range(4))
            vb = sum(int(pattern[4 + i]) << i for i in range(4))
            result = sum(int(bit) << i for i, bit in enumerate(row))
            assert result == va * vb, (va, vb, result)

    def test_hamming_sec_corrects_single_error(self):
        from repro.circuits.blocks import hamming_sec

        builder = CircuitBuilder("sec")
        data = builder.inputs("d", 8)
        checks = builder.inputs("c", 4)
        corrected, _syndrome = hamming_sec(builder, data, checks)
        builder.outputs(corrected)
        netlist = builder.build()
        # Compute correct check bits for a data word, then flip one data bit
        # and verify the decoder repairs it.
        groups = parity_groups(8)
        rng = np.random.default_rng(0)
        for _trial in range(8):
            word = rng.integers(0, 2, size=8)
            check_bits = [int(word[g].sum() % 2) for g in groups]
            flip = int(rng.integers(8))
            corrupted = word.copy()
            corrupted[flip] ^= 1
            stimulus = np.concatenate([corrupted, check_bits]).reshape(1, -1)
            out = simulate_patterns(netlist, stimulus.astype(np.uint8))
            assert (out[0] == word).all()


class TestProfiles:
    def test_all_benchmarks_build(self):
        for name in available_benchmarks():
            netlist = load_iscas85(name, scale="quick")
            netlist.validate()

    def test_full_scale_counts(self):
        profile = ISCAS85_PROFILES["c432"]
        netlist = load_iscas85("c432", scale="full")
        assert len(netlist.inputs) == profile.num_inputs
        assert len(netlist.outputs) == profile.num_outputs
        # Gate count within a tolerant band of the published number.
        assert netlist.num_gates() >= profile.num_gates * 0.6

    def test_determinism(self):
        a = load_iscas85("c1908", scale="quick", seed=3)
        b = load_iscas85("c1908", scale="quick", seed=3)
        from repro.netlist.bench_io import write_bench

        assert write_bench(a) == write_bench(b)

    def test_seed_changes_padding(self):
        from repro.netlist.bench_io import write_bench

        a = load_iscas85("c3540", scale="quick", seed=0)
        b = load_iscas85("c3540", scale="quick", seed=1)
        assert write_bench(a) != write_bench(b)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ReproError):
            load_iscas85("c9999")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ReproError):
            load_iscas85("c432", scale="gigantic")

    def test_outputs_not_constant(self):
        """Padding must keep outputs observable, not stuck."""
        netlist = load_iscas85("c1355", scale="quick")
        patterns = random_patterns(len(netlist.inputs), 128, seed=0)
        outputs = simulate_patterns(netlist, patterns)
        toggling = (outputs.min(axis=0) == 0) & (outputs.max(axis=0) == 1)
        assert toggling.mean() > 0.5

    def test_size_ordering_roughly_preserved(self):
        sizes = {
            name: load_iscas85(name, scale="quick").num_gates()
            for name in ("c1355", "c1908", "c6288", "c7552")
        }
        assert sizes["c1355"] < sizes["c1908"] < sizes["c6288"]
