"""Tests for the command-line interface and the SAIL attack."""

import json

import pytest

from repro.attacks.sail import SailAttack, sequence_encoding
from repro.attacks import OmlaAttack, OmlaConfig
from repro.cli import main
from repro.errors import AttackError
from repro.locking import lock_rll
from repro.synth import RESYN2
from repro.synth.engine import synthesize_and_map


class TestCli:
    def test_gen_lock_synth_ppa(self, tmp_path, capsys):
        design = tmp_path / "c432.bench"
        locked = tmp_path / "locked.bench"
        optimized = tmp_path / "opt.bench"

        assert main(["gen", "c432", "--out", str(design)]) == 0
        assert design.exists()

        assert main([
            "lock", str(design), "--key-size", "4", "--out", str(locked),
        ]) == 0
        key_line = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("key (keep secret!): ")
        ][-1]
        key = key_line.split(": ")[1].strip()
        assert len(key) == 4

        assert main([
            "synth", str(locked), "--recipe", "b;rw;rf", "--out", str(optimized),
        ]) == 0
        assert optimized.exists()
        capsys.readouterr()  # drop the synth log before parsing ppa JSON

        assert main(["ppa", str(optimized)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["area_um2"] > 0
        assert payload["delay_ps"] > 0

    def test_ppa_opt_flag(self, tmp_path, capsys):
        design = tmp_path / "d.bench"
        main(["gen", "c432", "--out", str(design)])
        capsys.readouterr()
        assert main(["ppa", str(design), "--opt"]) == 0
        assert json.loads(capsys.readouterr().out)["cells"] > 0

    def test_defend_requires_key(self, tmp_path, capsys):
        design = tmp_path / "c432.bench"
        locked = tmp_path / "locked.bench"
        main(["gen", "c432", "--out", str(design)])
        main(["lock", str(design), "--key-size", "4", "--out", str(locked)])
        assert main(["defend", str(locked)]) == 2

    def test_defend_requires_locked_design(self, tmp_path):
        design = tmp_path / "c432.bench"
        main(["gen", "c432", "--out", str(design)])
        assert main(["defend", str(design), "--key", "0101"]) == 2

    def _gen_and_lock(self, tmp_path, capsys, key_size=6):
        design = tmp_path / "c432.bench"
        locked = tmp_path / "locked.bench"
        main(["gen", "c432", "--out", str(design)])
        main(["lock", str(design), "--key-size", str(key_size),
              "--out", str(locked)])
        key_line = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("key (keep secret!): ")
        ][-1]
        return design, locked, key_line.split(": ")[1].strip()

    def test_sat_attack_recovers_key(self, tmp_path, capsys):
        design, locked, key = self._gen_and_lock(tmp_path, capsys)
        assert main(["sat-attack", str(locked), "--key", key]) == 0
        out = capsys.readouterr().out
        recovered = [
            line for line in out.splitlines()
            if line.startswith("recovered key: ")
        ][0].split(": ")[1].strip()
        assert len(recovered) == len(key)
        assert "DIP iters" in out
        # The recovered key must actually unlock the design: closing the
        # locked netlist's key inputs with it must reproduce the original.
        assert main([
            "equiv", str(design), str(locked), "--key", recovered,
        ]) == 0

    def test_sat_attack_requires_key_and_lock(self, tmp_path, capsys):
        design, locked, _key = self._gen_and_lock(tmp_path, capsys)
        assert main(["sat-attack", str(locked)]) == 2
        assert main(["sat-attack", str(design), "--key", "01"]) == 2

    def test_malformed_key_is_clean_error(self, tmp_path, capsys):
        _design, locked, _key = self._gen_and_lock(tmp_path, capsys)
        assert main(["sat-attack", str(locked), "--key", "01x0"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["equiv", str(locked), str(locked), "--key", "2"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_equiv_proof_and_counterexample(self, tmp_path, capsys):
        design, locked, key = self._gen_and_lock(tmp_path, capsys)
        optimized = tmp_path / "opt.bench"
        assert main([
            "synth", str(locked), "--recipe", "b;rw", "--verify", "sat",
            "--out", str(optimized),
        ]) == 0
        assert "verified: sat" in capsys.readouterr().out
        assert main(["equiv", str(locked), str(optimized)]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out
        # Correct key closes the locked design onto the original...
        assert main(["equiv", str(design), str(optimized), "--key", key]) == 0
        capsys.readouterr()
        # ...a wrong key yields NOT EQUIVALENT plus a counterexample.
        wrong = "".join("1" if c == "0" else "0" for c in key)
        assert main(["equiv", str(design), str(optimized), "--key", wrong]) == 1
        out = capsys.readouterr().out
        assert "NOT EQUIVALENT" in out and "counterexample" in out

    def test_equiv_interface_mismatch_is_clean_error(self, tmp_path, capsys):
        design, locked, _key = self._gen_and_lock(tmp_path, capsys)
        assert main(["equiv", str(design), str(locked)]) == 2
        assert "error:" in capsys.readouterr().err


class TestSail:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.circuits import load_iscas85

        netlist = load_iscas85("c432", scale="quick")
        locked = lock_rll(netlist, key_size=8, seed=3)
        _net, mapped = synthesize_and_map(locked.netlist, RESYN2)
        omla = OmlaAttack(
            RESYN2,
            OmlaConfig(epochs=1, num_relocks=2, relock_key_bits=8, seed=1),
        )
        data = omla.generate_training_data(locked.netlist)
        return locked, mapped, data

    def test_sequence_encoding_shape(self, setup):
        _locked, _mapped, data = setup
        from repro.attacks.subgraph import _TYPE_SLOTS

        vector = sequence_encoding(data[0], max_gates=10)
        assert vector.shape == (10 * len(_TYPE_SLOTS),)
        # One-hot blocks: each used position sums to 1.
        blocks = vector.reshape(10, len(_TYPE_SLOTS))
        sums = blocks.sum(axis=1)
        assert set(sums.tolist()) <= {0.0, 1.0}

    def test_end_to_end(self, setup):
        locked, mapped, data = setup
        attack = SailAttack(epochs=20, seed=2)
        attack.train(data)
        result = attack.attack(mapped, locked.key)
        assert result.key_size == 8
        assert result.attack_name == "SAIL"
        assert 0.0 <= result.accuracy <= 1.0

    def test_untrained_rejected(self, setup):
        _locked, mapped, _data = setup
        with pytest.raises(AttackError):
            SailAttack().attack(mapped)

    def test_empty_training_rejected(self):
        with pytest.raises(AttackError):
            SailAttack().train([])
