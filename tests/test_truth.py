"""Tests for the truth-table engine, including NPN canonization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.truth import NpnTransform, TruthTable


def tables(nvars=st.integers(min_value=0, max_value=4)):
    return nvars.flatmap(
        lambda n: st.integers(min_value=0, max_value=(1 << (1 << n)) - 1).map(
            lambda bits: TruthTable(bits, n)
        )
    )


class TestBasics:
    def test_const(self):
        assert TruthTable.const(False, 3).is_const0()
        assert TruthTable.const(True, 3).is_const1()

    def test_var_projection(self):
        t = TruthTable.var(1, 3)
        for minterm in range(8):
            assert ((t.bits >> minterm) & 1) == ((minterm >> 1) & 1)

    def test_from_values_roundtrip(self):
        values = [0, 1, 1, 0]
        t = TruthTable.from_values(values)
        assert [t.evaluate([m & 1, (m >> 1) & 1]) for m in range(4)] == values

    def test_from_values_rejects_bad_length(self):
        with pytest.raises(ValueError):
            TruthTable.from_values([0, 1, 1])

    def test_bits_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(1 << 4, 2)

    def test_algebra(self):
        a = TruthTable.var(0, 2)
        b = TruthTable.var(1, 2)
        assert (a & b).bits == 0b1000
        assert (a | b).bits == 0b1110
        assert (a ^ b).bits == 0b0110
        assert (~a).bits == 0b0101

    def test_mismatched_nvars_rejected(self):
        with pytest.raises(ValueError):
            TruthTable.var(0, 2) & TruthTable.var(0, 3)

    def test_count_ones_and_minterms(self):
        t = TruthTable(0b1010, 2)
        assert t.count_ones() == 2
        assert list(t.minterms()) == [1, 3]


class TestCofactors:
    def test_cofactor_fixes_variable(self):
        a = TruthTable.var(0, 3)
        b = TruthTable.var(1, 3)
        f = a ^ b
        assert f.cofactor(0, 0).bits == b.bits
        assert f.cofactor(0, 1).bits == (~b).bits

    def test_support(self):
        a = TruthTable.var(0, 3)
        c = TruthTable.var(2, 3)
        assert (a & c).support() == (0, 2)

    def test_shrink_to_support(self):
        f = TruthTable.var(2, 4)
        small, sup = f.shrink_to_support()
        assert sup == (2,)
        assert small.nvars == 1
        assert small.bits == 0b10

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_shannon_expansion(self, t):
        for var in range(t.nvars):
            c0 = t.cofactor(var, 0)
            c1 = t.cofactor(var, 1)
            v = TruthTable.var(var, t.nvars)
            rebuilt = (~v & c0) | (v & c1)
            assert rebuilt.bits == t.bits


class TestTransforms:
    def test_flip(self):
        a = TruthTable.var(0, 2)
        assert a.flip(0).bits == (~a).bits

    def test_permute_swap(self):
        a = TruthTable.var(0, 2)
        swapped = a.permute([1, 0])
        assert swapped.bits == TruthTable.var(1, 2).bits

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_flip_involution(self, t):
        for var in range(t.nvars):
            assert t.flip(var).flip(var).bits == t.bits


class TestNpn:
    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_transform_maps_to_canonical(self, t):
        canonical, transform = t.npn_canon()
        assert transform.apply(t).bits == canonical.bits

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_npn_class_invariance(self, t):
        canonical, _ = t.npn_canon()
        # Complementing the output must not change the class.
        canonical2, _ = (~t).npn_canon()
        assert canonical.bits == canonical2.bits
        # Flipping an input must not change the class.
        if t.nvars:
            canonical3, _ = t.flip(0).npn_canon()
            assert canonical.bits == canonical3.bits

    def test_and_class_has_representatives(self):
        and2 = TruthTable(0b1000, 2)
        nand2 = ~and2
        c1, _ = and2.npn_canon()
        c2, _ = nand2.npn_canon()
        assert c1.bits == c2.bits

    def test_leaf_order_semantics(self):
        t = TruthTable.var(0, 2) & ~TruthTable.var(1, 2)
        canonical, transform = t.npn_canon()
        order = transform.leaf_order(["x0", "x1"])
        assert len(order) == 2
        assert {leaf for leaf, _neg in order} == {"x0", "x1"}
