"""Tests for technology mapping and PPA analysis."""

import numpy as np
import pytest

from repro.aig import Aig, aig_from_netlist
from repro.errors import MappingError
from repro.mapping import (
    analyze_ppa,
    map_aig,
    nangate45_library,
    optimize_mapping,
)
from repro.netlist.simulate import random_patterns, simulate_patterns
from tests.conftest import build_random_netlist


def _assert_mapping_equivalent(netlist, mapped):
    expanded = mapped.to_netlist()
    patterns = random_patterns(len(netlist.inputs), 256, seed=3)
    want = simulate_patterns(netlist, patterns)
    got = simulate_patterns(expanded, patterns, input_order=netlist.inputs)
    order = [expanded.outputs.index(o) for o in netlist.outputs]
    assert (want == got[:, order]).all()


class TestLibrary:
    def test_variants(self):
        lib = nangate45_library()
        x1 = lib["NAND2_X1"]
        x2 = lib.variant("NAND2_X1", "X2")
        assert x2.area > x1.area
        assert x2.intrinsic_delay < x1.intrinsic_delay

    def test_missing_cell(self):
        with pytest.raises(MappingError):
            nangate45_library()["FLUX_CAPACITOR_X1"]

    def test_cell_functions(self):
        lib = nangate45_library()
        a = np.array([0, 0, 1, 1], dtype=bool)
        b = np.array([0, 1, 0, 1], dtype=bool)
        assert list(lib["NAND2_X1"].evaluate([a, b])) == [True, True, True, False]
        assert list(lib["XOR2_X1"].evaluate([a, b])) == [False, True, True, False]
        assert list(lib["ANDNOT2_X1"].evaluate([a, b])) == [
            False, False, True, False,
        ]

    def test_arity_enforced(self):
        lib = nangate45_library()
        with pytest.raises(MappingError):
            lib["INV_X1"].evaluate([np.zeros(2, bool), np.zeros(2, bool)])


class TestMapper:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_mapping_equivalence_random(self, seed):
        netlist = build_random_netlist(seed=seed, num_gates=30)
        aig = aig_from_netlist(netlist)
        mapped = map_aig(aig)
        _assert_mapping_equivalent(netlist, mapped)

    def test_mapping_equivalence_benchmark(self, c880_quick):
        aig = aig_from_netlist(c880_quick)
        mapped = map_aig(aig)
        _assert_mapping_equivalent(c880_quick, mapped)

    def test_xor_cells_used_on_parity(self):
        aig = Aig("parity")
        pis = [aig.add_pi(f"p{i}") for i in range(4)]
        acc = pis[0]
        for lit in pis[1:]:
            acc = aig.add_xor(acc, lit)
        aig.add_po(acc, "y")
        mapped = map_aig(aig)
        histogram = mapped.cell_histogram()
        assert histogram.get("XOR2", 0) + histogram.get("XNOR2", 0) >= 3

    def test_constant_output(self):
        aig = Aig("const")
        aig.add_pi("a")
        aig.add_po(1, "one")
        aig.add_po(0, "zero")
        mapped = map_aig(aig)
        expanded = mapped.to_netlist()
        out = simulate_patterns(
            expanded, np.array([[0], [1]], dtype=np.uint8), input_order=["a"]
        )
        one_col = expanded.outputs.index("one")
        zero_col = expanded.outputs.index("zero")
        assert (out[:, one_col] == 1).all()
        assert (out[:, zero_col] == 0).all()

    def test_area_positive(self, c432_quick):
        mapped = map_aig(aig_from_netlist(c432_quick))
        assert mapped.total_area() > 0
        assert mapped.num_cells() > 0


class TestPpa:
    def test_report_fields(self, c432_quick):
        mapped = map_aig(aig_from_netlist(c432_quick))
        report = analyze_ppa(mapped)
        assert report.area > 0
        assert report.delay > 0
        assert report.power > 0
        assert report.leakage_power > 0
        assert report.dynamic_power > 0

    def test_overhead_vs(self, c432_quick):
        mapped = map_aig(aig_from_netlist(c432_quick))
        report = analyze_ppa(mapped)
        overheads = report.overhead_vs(report)
        assert all(abs(v) < 1e-9 for v in overheads.values())

    def test_optimize_improves_delay(self, c880_quick):
        mapped = map_aig(aig_from_netlist(c880_quick))
        base = analyze_ppa(mapped)
        optimized = optimize_mapping(mapped)
        tuned = analyze_ppa(optimized)
        assert tuned.delay < base.delay
        # Upsizing costs area.
        assert tuned.area >= base.area

    def test_optimize_preserves_function(self, c432_quick):
        aig = aig_from_netlist(c432_quick)
        mapped = map_aig(aig)
        optimized = optimize_mapping(mapped)
        _assert_mapping_equivalent(c432_quick, optimized)

    def test_deeper_circuit_larger_delay(self):
        shallow = build_random_netlist(seed=1, num_gates=10)
        deep = build_random_netlist(seed=1, num_gates=60)
        d1 = analyze_ppa(map_aig(aig_from_netlist(shallow))).delay
        d2 = analyze_ppa(map_aig(aig_from_netlist(deep))).delay
        assert d2 > d1
