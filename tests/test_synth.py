"""Tests for synthesis passes: equivalence, gains, recipes, the engine.

Every transformation is checked for functional equivalence on random and
benchmark circuits (exhaustive simulation when input counts allow), plus
pass-specific properties: rewrite/refactor/resub never increase node count,
balance never increases depth on tree-like logic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import aig_from_netlist
from repro.aig.cuts import CutManager, enumerate_cuts, reconvergence_cut
from repro.aig.simulate import cut_truth_table, functionally_equal
from repro.errors import SynthesisError
from repro.sat import check_equivalence
from repro.synth import RESYN2, Recipe, apply_recipe, apply_transform, random_recipe
from repro.synth.balance import balance
from repro.synth.refactor import refactor_pass
from repro.synth.resub import resub_pass
from repro.synth.rewrite import rewrite_pass
from tests.conftest import build_random_netlist


def random_aig(seed, num_gates=25):
    return aig_from_netlist(build_random_netlist(seed=seed, num_gates=num_gates))


class TestCuts:
    def test_trivial_cut_first(self, c432_quick):
        aig = aig_from_netlist(c432_quick)
        manager = CutManager(aig)
        for var in aig.topological_ands()[:10]:
            cuts = manager.cuts(var)
            assert cuts[0] == (var,)

    def test_cut_sizes_bounded(self, c432_quick):
        aig = aig_from_netlist(c432_quick)
        for var, cuts in enumerate_cuts(aig, k=4).items():
            for cut in cuts:
                assert len(cut) <= 4

    def test_cut_truth_table_consistency(self, c432_quick):
        aig = aig_from_netlist(c432_quick)
        manager = CutManager(aig)
        for var in aig.topological_ands()[:20]:
            f0, f1 = aig.fanins(var)
            for cut in manager.cuts(var)[1:3]:
                table = cut_truth_table(aig, var << 1, cut)
                # Verify on a few random minterms against direct evaluation.
                assert 0 <= table.bits < (1 << (1 << len(cut)))

    def test_reconvergence_cut_bounds(self, c880_quick):
        aig = aig_from_netlist(c880_quick)
        for var in aig.topological_ands()[:30]:
            cut = reconvergence_cut(aig, var, max_leaves=8)
            assert 1 <= len(cut) <= 8
            assert var not in cut


class TestPassEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_rewrite_preserves_function(self, seed):
        aig = random_aig(seed)
        reference = aig.compact()
        rewrite_pass(aig)
        aig.check()
        assert functionally_equal(reference, aig.compact())

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_rewrite_z_preserves_function(self, seed):
        aig = random_aig(seed + 50)
        reference = aig.compact()
        rewrite_pass(aig, zero_cost=True)
        aig.check()
        assert functionally_equal(reference, aig.compact())

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_refactor_preserves_function(self, seed):
        aig = random_aig(seed + 100)
        reference = aig.compact()
        refactor_pass(aig)
        aig.check()
        assert functionally_equal(reference, aig.compact())

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_resub_preserves_function(self, seed):
        aig = random_aig(seed + 150)
        reference = aig.compact()
        resub_pass(aig)
        aig.check()
        assert functionally_equal(reference, aig.compact())

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_balance_preserves_function(self, seed):
        aig = random_aig(seed + 200)
        balanced = balance(aig)
        balanced.check()
        assert functionally_equal(aig, balanced)

    def test_benchmark_resyn2_equivalence(self, c432_quick):
        aig = aig_from_netlist(c432_quick)
        optimized = apply_recipe(aig, RESYN2)
        optimized.check()
        # c432-quick has too many inputs for exhaustive simulation, so the
        # sampled check alone is probabilistic — the SAT miter makes it a
        # proof.
        assert functionally_equal(aig, optimized)
        assert check_equivalence(aig, optimized).equivalent


class TestPassGains:
    def test_rewrite_never_increases_nodes(self):
        for seed in range(5):
            aig = random_aig(seed, num_gates=40)
            before = aig.num_ands()
            rewrite_pass(aig)
            assert aig.num_ands() <= before

    def test_refactor_never_increases_nodes(self):
        for seed in range(4):
            aig = random_aig(seed + 10, num_gates=40)
            before = aig.num_ands()
            refactor_pass(aig)
            assert aig.num_ands() <= before

    def test_resub_never_increases_nodes(self):
        for seed in range(4):
            aig = random_aig(seed + 20, num_gates=40)
            before = aig.num_ands()
            resub_pass(aig)
            assert aig.num_ands() <= before

    def test_rewrite_reduces_redundant_logic(self):
        # Build a netlist with obvious redundancy: y = (a&b) | (a&b).
        from repro.aig import Aig

        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        c = aig.add_pi("c")
        ab = aig.add_and(a, b)
        ab_or_c = aig.add_or(ab, c)
        again = aig.add_or(ab, c)
        assert ab_or_c == again  # strash already shares this
        # Double negation through structure: ~(~x & ~x) = x
        double = aig.add_and(ab_or_c, ab_or_c)
        assert double == ab_or_c

    def test_balance_reduces_depth_on_chains(self):
        from repro.aig import Aig

        aig = Aig()
        pis = [aig.add_pi(f"p{i}") for i in range(8)]
        acc = pis[0]
        for lit in pis[1:]:
            acc = aig.add_and(acc, lit)  # depth-7 chain
        aig.add_po(acc, "y")
        assert aig.depth() == 7
        balanced = balance(aig)
        assert balanced.depth() == 3
        assert functionally_equal(aig, balanced)

    def test_resyn2_reduces_benchmark(self, c880_quick):
        aig = aig_from_netlist(c880_quick)
        optimized = apply_recipe(aig, RESYN2)
        assert optimized.num_ands() <= aig.num_ands()


class TestRecipe:
    def test_resyn2_is_ten_steps(self):
        assert len(RESYN2) == 10

    def test_parse_short_names(self):
        recipe = Recipe.parse("b; rw; rwz; rf; rfz; rs; rsz")
        assert recipe.steps == (
            "balance", "rewrite", "rewrite -z", "refactor",
            "refactor -z", "resub", "resub -z",
        )

    def test_parse_rejects_unknown(self):
        with pytest.raises(SynthesisError):
            Recipe.parse("b; frobnicate")

    def test_unknown_step_rejected(self):
        with pytest.raises(SynthesisError):
            Recipe(("madness",))

    def test_short_roundtrip(self):
        assert Recipe.parse(RESYN2.short()).steps == RESYN2.steps

    def test_with_step(self):
        modified = RESYN2.with_step(0, "resub")
        assert modified.steps[0] == "resub"
        assert RESYN2.steps[0] == "balance"
        with pytest.raises(SynthesisError):
            RESYN2.with_step(99, "resub")

    def test_random_recipe_deterministic(self):
        assert random_recipe(10, seed=5).steps == random_recipe(10, seed=5).steps
        assert random_recipe(10, seed=5).steps != random_recipe(10, seed=6).steps

    def test_apply_transform_unknown(self, c432_quick):
        aig = aig_from_netlist(c432_quick)
        with pytest.raises(SynthesisError):
            apply_transform(aig, "nonsense")


class TestEngineProperty:
    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=8, deadline=None)
    def test_random_recipe_equivalence(self, circuit_seed, recipe_seed):
        aig = random_aig(circuit_seed, num_gates=30)
        recipe = random_recipe(5, seed=recipe_seed)
        optimized = apply_recipe(aig, recipe)
        optimized.check()
        assert functionally_equal(aig, optimized)
        assert check_equivalence(aig, optimized).equivalent

    def test_recipe_copy_semantics(self, c432_quick):
        aig = aig_from_netlist(c432_quick)
        before = aig.num_ands()
        apply_recipe(aig, RESYN2, copy=True)
        assert aig.num_ands() == before
