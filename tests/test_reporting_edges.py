"""Reporting renderers on empty and partial inputs.

The renderers are the last thing standing between a half-finished run and
the user — a grid with no cells, an attack killed by its DIP budget, or a
sweep whose failing arm left sparse details must still produce a table,
never a KeyError.
"""

from __future__ import annotations

import pytest

from repro.attacks.base import AttackResult
from repro.locking import Key
from repro.pipeline.runner import CellResult, RunResult
from repro.reporting import (
    QueryComplexityRecord,
    SatAttackRecord,
    SearchStrategyRecord,
    records_from_run,
    render_query_complexity_table,
    render_run_table,
    render_sat_attack_table,
    render_search_comparison_table,
    render_span_tree,
    render_trace_hotspots,
    run_result_rows,
)
from repro.reporting.search import hit_rate_if_traffic


def _run(cells=()):  # a RunResult with only the fields renderers touch
    return RunResult(
        name="edge", elapsed_s=0.0, cache={}, cells=list(cells), spec={}
    )


def _cell(**overrides) -> CellResult:
    base = dict(
        benchmark="c432",
        attack="sat",
        key_size=8,
        predicted_key="",
        accuracy=None,
        recipe="",
        elapsed_s=0.0,
    )
    base.update(overrides)
    return CellResult(**base)


class TestRunTableEdges:
    def test_empty_run_renders(self):
        table = render_run_table(_run())
        assert "edge: 0 cells" in table
        assert run_result_rows(_run()) == []

    def test_cell_without_attack_or_accuracy(self):
        cell = _cell(attack="", accuracy=None)
        table = render_run_table(_run([cell]))
        assert "(none)" in table
        assert "n/a" in table

    def test_defense_only_cell_labelled(self):
        cell = _cell(attack="", details={"defense": {"defense": "almost"}})
        assert "(defense: almost)" in render_run_table(_run([cell]))


class TestSatRecordEdges:
    def test_budget_exhausted_sparse_details(self):
        # DIP budget ran out: no solver block, no elapsed, no true key.
        result = AttackResult(
            predicted_bits=(0, 1),
            details={"iterations": 512, "budget_exhausted": True},
        )
        record = SatAttackRecord.from_result("c432", result)
        assert record.conflicts == 0
        assert record.restarts == 0
        assert record.key_accuracy is None
        table = render_sat_attack_table([record])
        assert "n/a" in table

    def test_empty_details(self):
        record = SatAttackRecord.from_result(
            "c432", AttackResult(predicted_bits=(1,))
        )
        assert record.iterations == 0
        render_sat_attack_table([record])

    def test_empty_record_list(self):
        table = render_sat_attack_table([])
        assert "circuit" in table

    def test_ml_column_missing_circuit(self):
        record = SatAttackRecord.from_result(
            "c432",
            AttackResult(predicted_bits=(1, 1), true_key=Key((1, 0))),
        )
        table = render_sat_attack_table([record], ml_accuracies={"c880": 0.6})
        assert "n/a" in table


class TestQueryComplexityEdges:
    def test_minimal_details(self):
        record = QueryComplexityRecord._from_details("rll", "sat", 8, {})
        assert record.dips == 0
        assert record.exact is True  # no budget flag → assumed converged
        assert "exact" in render_query_complexity_table([record])

    def test_budget_exhausted_outcome(self):
        record = QueryComplexityRecord._from_details(
            "antisat", "sat", 8, {"budget_exhausted": True}
        )
        assert "budget!" in render_query_complexity_table([record])

    def test_approx_without_error_rate(self):
        record = QueryComplexityRecord._from_details(
            "rll", "appsat", 8, {"exact": False}
        )
        assert "approx" in render_query_complexity_table([record])

    def test_from_cell_without_attack_details(self):
        record = QueryComplexityRecord.from_cell("rll", _cell(elapsed_s=1.5))
        assert record.elapsed_s == 1.5
        assert record.oracle_queries == 0


class TestSearchTableEdges:
    def test_failed_sweep_arm_skipped(self):
        # The failing arm's defense stage died before writing strategy
        # details; records_from_run must skip it, not KeyError.
        good = _cell(
            attack="",
            strategy="sa",
            details={
                "defense": {"strategy": "sa", "predicted_accuracy": 0.52}
            },
        )
        failed = _cell(
            attack="", strategy="pt", details={"defense": {"error": "boom"}}
        )
        records = records_from_run(_run([good, failed]))
        assert [r.strategy for r in records] == ["sa"]

    def test_empty_record_list_renders(self):
        table = render_search_comparison_table([])
        assert "strategy" in table

    def test_record_with_no_traffic_or_accuracy(self):
        record = SearchStrategyRecord(
            strategy="sa",
            chains=1,
            jobs=1,
            best_energy=0.0,
            predicted_accuracy=None,
            iterations=0,
            energy_evaluations=0,
            elapsed_s=0.0,
        )
        assert record.evals_per_s == 0.0
        assert "n/a" in render_search_comparison_table([record])

    @pytest.mark.parametrize("stats", [None, {}, {"hit_rate": 0.9}])
    def test_hit_rate_requires_traffic(self, stats):
        assert hit_rate_if_traffic(stats) is None

    def test_hit_rate_with_traffic(self):
        stats = {"steps_saved": 3, "steps_executed": 1, "hit_rate": 0.75}
        assert hit_rate_if_traffic(stats) == 0.75


class TestTraceRenderEdges:
    def test_empty_records_render(self):
        assert "empty trace" in render_span_tree([])
        assert "empty trace" in render_trace_hotspots([])

    def test_orphan_span_promoted_to_root(self):
        # Parent lost with a crashed worker: child renders as a root.
        orphan = {
            "kind": "span",
            "name": "stage",
            "span_id": "a-2",
            "parent_id": "a-1",  # never emitted
            "pid": 1,
            "t_wall": 0.0,
            "elapsed_s": 0.25,
            "attrs": {"stage": "lock"},
            "metrics": {},
        }
        tree = render_span_tree([orphan])
        assert tree.startswith("stage [stage=lock]")
        hotspots = render_trace_hotspots([orphan])
        assert "stage" in hotspots
