"""Tests for the experiment pipeline: specs, registry, cache, runner, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import CacheError, PipelineError, SpecError
from repro.pipeline import (
    ArtifactCache,
    AttackSpec,
    BenchmarkSpec,
    DefenseSpec,
    ExperimentSpec,
    LockSpec,
    ReportSpec,
    RunResult,
    Runner,
    Stage,
    SynthSpec,
    available,
    execute_stages,
    fingerprint,
    register,
    registered,
    run_experiment,
    topological_order,
    unregister,
)


def small_spec(**overrides) -> ExperimentSpec:
    """A cheap 1×2 grid (no ML training) used across the tests."""
    fields = dict(
        name="unit",
        benchmarks=(BenchmarkSpec(name="c432"),),
        lock=LockSpec(locker="rll", key_size=6, seed=7),
        attacks=(
            AttackSpec("scope"),
            AttackSpec("redundancy", params={"num_patterns": 24, "seed": 1}),
        ),
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


# -- spec layer ----------------------------------------------------------

class TestSpecs:
    def test_json_round_trip(self):
        spec = small_spec(defense=DefenseSpec(iterations=3))
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_toml_round_trip(self):
        spec = small_spec(
            report=ReportSpec(format="json"),
            synth=SynthSpec(recipe="b;rw;rfz", verify="sim"),
        )
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec

    def test_file_round_trip_both_formats(self, tmp_path):
        spec = small_spec()
        for filename in ("spec.toml", "spec.json"):
            path = tmp_path / filename
            spec.dump(path)
            assert ExperimentSpec.load(path) == spec

    def test_unknown_suffix_rejected(self, tmp_path):
        spec = small_spec()
        with pytest.raises(SpecError, match="suffix"):
            spec.dump(tmp_path / "spec.yaml")

    def test_unknown_fields_rejected(self):
        with pytest.raises(SpecError, match="unknown"):
            ExperimentSpec.from_dict(
                {"benchmarks": [{"name": "c432"}], "lokc": {}}
            )
        with pytest.raises(SpecError, match="unknown"):
            BenchmarkSpec.from_dict({"name": "c432", "sclae": "quick"})

    def test_type_errors_are_spec_errors(self):
        with pytest.raises(SpecError, match="integer"):
            LockSpec.from_dict({"key_size": "eight"})
        with pytest.raises(SpecError, match="string"):
            SynthSpec.from_dict({"recipe": 42})

    def test_benchmark_needs_name_xor_path(self):
        with pytest.raises(SpecError):
            BenchmarkSpec()
        with pytest.raises(SpecError):
            BenchmarkSpec(name="c432", path="x.bench")

    def test_validation_catches_bad_values(self):
        with pytest.raises(SpecError):
            LockSpec(key="01x0")
        with pytest.raises(SpecError):
            SynthSpec(verify="maybe")
        with pytest.raises(SpecError):
            ExperimentSpec(benchmarks=())

    def test_invalid_text_is_spec_error(self):
        with pytest.raises(SpecError, match="JSON"):
            ExperimentSpec.from_json("{nope")
        with pytest.raises(SpecError, match="TOML"):
            ExperimentSpec.from_toml("= broken =")

    def test_duplicate_benchmark_labels_rejected(self):
        with pytest.raises(SpecError, match="unique"):
            small_spec(
                benchmarks=(
                    BenchmarkSpec(name="c432"), BenchmarkSpec(name="c432"),
                )
            )
        # Seed-decorated replicas of one circuit are fine.
        spec = small_spec(
            benchmarks=(
                BenchmarkSpec(name="c432"), BenchmarkSpec(name="c432", seed=1),
            )
        )
        assert [b.label for b in spec.benchmarks] == ["c432", "c432#s1"]

    def test_duplicate_attack_labels_rejected_and_sweep_labels_work(self):
        with pytest.raises(SpecError, match="AttackSpec.label"):
            small_spec(
                attacks=(
                    AttackSpec("redundancy", params={"num_patterns": 16}),
                    AttackSpec("redundancy", params={"num_patterns": 64}),
                )
            )
        spec = small_spec(
            attacks=(
                AttackSpec("redundancy", params={"num_patterns": 16},
                           label="redundancy-16"),
                AttackSpec("redundancy", params={"num_patterns": 64},
                           label="redundancy-64"),
            )
        )
        assert [a.cell_label for a in spec.attacks] == [
            "redundancy-16", "redundancy-64",
        ]
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec

    def test_cells_cross_product(self):
        spec = small_spec(
            benchmarks=(BenchmarkSpec(name="c432"), BenchmarkSpec(name="c499"))
        )
        labels = [(b.label, a.name) for b, a in spec.cells]
        assert labels == [
            ("c432", "scope"), ("c432", "redundancy"),
            ("c499", "scope"), ("c499", "redundancy"),
        ]


# -- registry layer ------------------------------------------------------

class TestRegistry:
    def test_builtins_registered(self):
        assert {"rll", "relock", "given", "none"} <= set(available("locker"))
        assert {"omla", "scope", "redundancy", "snapshot", "sail", "sat"} <= (
            set(available("attack"))
        )
        assert "almost" in available("defense")
        assert {"table", "json"} <= set(available("reporter"))

    def test_lookup_and_duplicate_errors(self):
        @register("reporter", "null")
        def null_reporter(run, spec):
            return ""

        try:
            assert registered("reporter", "null")
            with pytest.raises(PipelineError, match="duplicate"):
                register("reporter", "null")(lambda run, spec: "")
        finally:
            unregister("reporter", "null")
        assert not registered("reporter", "null")

    def test_unknown_lookups(self):
        from repro.pipeline import get

        with pytest.raises(PipelineError, match="available"):
            get("attack", "does-not-exist")
        with pytest.raises(PipelineError, match="kinds"):
            get("flavour", "vanilla")

    def test_runner_validates_against_registry(self, tmp_path):
        runner = Runner(workdir=tmp_path)
        with pytest.raises(PipelineError, match="unknown attack"):
            runner.run(small_spec(attacks=(AttackSpec("nope"),)))
        with pytest.raises(PipelineError, match="unknown locker"):
            runner.run(small_spec(lock=LockSpec(locker="wishful")))

    def test_unknown_attack_params_rejected(self, tmp_path):
        spec = small_spec(
            attacks=(AttackSpec("scope", params={"epochz": 3}),)
        )
        with pytest.raises(SpecError, match="epochz"):
            Runner(workdir=tmp_path).run(spec)


# -- cache layer ---------------------------------------------------------

class TestCache:
    def test_hit_miss_and_stats(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = fingerprint("stage", {"x": 1})
        assert cache.get(key, default=None) is None
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["writes"] == 1

    def test_true_miss_raises(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(CacheError, match="miss"):
            cache.get("0" * 64)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = fingerprint("stage", {"x": 2})
        cache.put(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.get(key, default="fresh") == "fresh"
        assert not cache.path_for(key).exists()

    def test_unpicklable_value_skips_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.put("ab" * 32, lambda: None) is False

    def test_fingerprint_sensitivity(self):
        base = fingerprint("lock", {"key_size": 6}, ["dep"])
        assert base == fingerprint("lock", {"key_size": 6}, ["dep"])
        assert base != fingerprint("lock", {"key_size": 7}, ["dep"])
        assert base != fingerprint("lock", {"key_size": 6}, ["other"])

    def test_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(fingerprint(1), "a")
        cache.put(fingerprint(2), "b")
        assert cache.clear() == 2
        assert cache.get(fingerprint(1), default=None) is None


# -- DAG machinery -------------------------------------------------------

class TestDag:
    @staticmethod
    def _stage(name, deps=(), fn=None, payload=None):
        return Stage(
            name=name,
            payload=payload or {},
            deps=tuple(deps),
            fn=fn or (lambda d: name),
        )

    def test_topological_order(self):
        stages = [
            self._stage("c", deps=("a", "b")),
            self._stage("b", deps=("a",)),
            self._stage("a"),
        ]
        assert [s.name for s in topological_order(stages)] == ["a", "b", "c"]

    def test_cycle_detected(self):
        stages = [
            self._stage("a", deps=("b",)),
            self._stage("b", deps=("a",)),
        ]
        with pytest.raises(PipelineError, match="cycle"):
            topological_order(stages)

    def test_unknown_dep_detected(self):
        with pytest.raises(PipelineError, match="unknown stage"):
            topological_order([self._stage("a", deps=("ghost",))])

    def test_execute_with_cache_skips_second_run(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []

        def make(name):
            def fn(deps):
                calls.append(name)
                return name

            return fn

        stages = [
            self._stage("a", fn=make("a")),
            self._stage("b", deps=("a",), fn=make("b")),
        ]
        _arts, log1 = execute_stages(stages, cache)
        _arts, log2 = execute_stages(stages, cache)
        assert calls == ["a", "b"]
        assert [e["cached"] for e in log1] == [False, False]
        assert [e["cached"] for e in log2] == [True, True]

    def test_payload_change_invalidates_downstream(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stages = [
            self._stage("a", payload={"v": 1}),
            self._stage("b", deps=("a",)),
        ]
        execute_stages(stages, cache)
        changed = [
            self._stage("a", payload={"v": 2}),
            self._stage("b", deps=("a",)),
        ]
        _arts, log = execute_stages(changed, cache)
        assert [e["cached"] for e in log] == [False, False]


# -- end-to-end runner ---------------------------------------------------

class TestRunner:
    def test_grid_matches_hand_wired_path(self, tmp_path):
        from repro import load_iscas85, lock_rll, RESYN2, synthesize_and_map
        from repro.attacks import RedundancyAttack, ScopeAttack

        design = load_iscas85("c432", scale="quick", seed=0)
        locked = lock_rll(design, key_size=6, seed=7)
        netlist, _mapped = synthesize_and_map(locked.netlist, RESYN2)
        hand = {
            "scope": ScopeAttack().attack(netlist, locked.key),
            "redundancy": RedundancyAttack(num_patterns=24, seed=1).attack(
                netlist, locked.key
            ),
        }

        run = run_experiment(small_spec(), workdir=tmp_path)
        for name, result in hand.items():
            cell = run.cell("c432", name)
            assert cell.predicted_key == "".join(
                str(b) for b in result.predicted_bits
            )
            assert cell.accuracy == pytest.approx(result.accuracy)
            assert cell.key_size == 6

    def test_warm_run_hits_cache(self, tmp_path):
        spec = small_spec()
        cold = run_experiment(spec, workdir=tmp_path)
        warm = run_experiment(spec, workdir=tmp_path)
        assert cold.executed_stages > 0
        assert warm.executed_stages == 0
        assert warm.cached_stages == cold.executed_stages + cold.cached_stages
        assert [c.predicted_key for c in warm.cells] == [
            c.predicted_key for c in cold.cells
        ]

    def test_parallel_equals_serial(self, tmp_path):
        spec = small_spec(
            benchmarks=(BenchmarkSpec(name="c432"), BenchmarkSpec(name="c499"))
        )
        serial = run_experiment(spec, workdir=tmp_path / "serial")
        parallel = run_experiment(
            spec, workdir=tmp_path / "parallel", jobs=2
        )
        assert [(c.benchmark, c.attack, c.predicted_key)
                for c in parallel.cells] == [
            (c.benchmark, c.attack, c.predicted_key) for c in serial.cells
        ]

    def test_no_cache_mode(self, tmp_path):
        spec = small_spec()
        run_experiment(spec, workdir=tmp_path, use_cache=False)
        second = run_experiment(spec, workdir=tmp_path, use_cache=False)
        assert second.cached_stages == 0
        assert not any(tmp_path.iterdir())

    def test_run_result_json_round_trip(self, tmp_path):
        run = run_experiment(small_spec(), workdir=tmp_path)
        loaded = RunResult.from_json(run.to_json())
        assert loaded.cell("c432", "scope").predicted_key == (
            run.cell("c432", "scope").predicted_key
        )
        assert loaded.executed_stages == run.executed_stages
        path = tmp_path / "result.json"
        run.save(path)
        assert RunResult.load(path).name == run.name

    def test_missing_cell_lookup(self, tmp_path):
        run = run_experiment(small_spec(), workdir=tmp_path)
        with pytest.raises(PipelineError, match="no cell"):
            run.cell("c880", "scope")

    def test_path_benchmark_and_given_locker(self, tmp_path):
        from repro import load_iscas85, lock_rll
        from repro.netlist.bench_io import save_bench

        locked = lock_rll(
            load_iscas85("c432", scale="quick"), key_size=4, seed=3
        )
        bench_path = tmp_path / "locked.bench"
        save_bench(locked.netlist, bench_path)
        spec = ExperimentSpec(
            benchmarks=(BenchmarkSpec(path=str(bench_path)),),
            lock=LockSpec(locker="given", key=str(locked.key)),
            attacks=(AttackSpec("scope"),),
        )
        run = run_experiment(spec, workdir=tmp_path / "cache")
        cell = run.cell("locked", "scope")
        assert cell.key_size == 4
        assert cell.accuracy is not None

    def test_rll_on_prelocked_design_is_clean_error(self, tmp_path):
        from repro import load_iscas85, lock_rll
        from repro.netlist.bench_io import save_bench

        locked = lock_rll(
            load_iscas85("c432", scale="quick"), key_size=4, seed=3
        )
        bench_path = tmp_path / "locked.bench"
        save_bench(locked.netlist, bench_path)
        spec = ExperimentSpec(
            benchmarks=(BenchmarkSpec(path=str(bench_path)),),
            lock=LockSpec(locker="rll", key_size=8),
            attacks=(AttackSpec("scope"),),
        )
        with pytest.raises(PipelineError, match="'given'"):
            run_experiment(spec, workdir=tmp_path / "cache")

    def test_given_locker_without_key_scores_nothing(self, tmp_path):
        from repro import load_iscas85, lock_rll
        from repro.netlist.bench_io import save_bench

        locked = lock_rll(
            load_iscas85("c432", scale="quick"), key_size=4, seed=3
        )
        bench_path = tmp_path / "locked.bench"
        save_bench(locked.netlist, bench_path)
        spec = ExperimentSpec(
            benchmarks=(BenchmarkSpec(path=str(bench_path)),),
            lock=LockSpec(locker="given"),
            attacks=(AttackSpec("scope"),),
        )
        run = run_experiment(spec, workdir=tmp_path / "cache")
        assert run.cells[0].accuracy is None
        assert len(run.cells[0].predicted_key) == 4

    def test_synth_none_attacks_design_as_given(self, tmp_path):
        spec = small_spec(
            synth=SynthSpec(recipe="none"),
            attacks=(AttackSpec("scope"),),
        )
        run = run_experiment(spec, workdir=tmp_path)
        cell = run.cell("c432", "scope")
        assert cell.recipe == ""
        assert len(cell.predicted_key) == 6

    def test_parallel_run_reports_cache_stats(self, tmp_path):
        spec = small_spec(
            benchmarks=(BenchmarkSpec(name="c432"), BenchmarkSpec(name="c499"))
        )
        cold = run_experiment(spec, workdir=tmp_path, jobs=2)
        assert cold.cache["writes"] > 0
        warm = run_experiment(spec, workdir=tmp_path, jobs=2)
        assert warm.cache["hits"] >= warm.cached_stages > 0

    def test_sat_attack_cell_recovers_key(self, tmp_path):
        from repro import RESYN2, load_iscas85, lock_rll, synthesize_and_map
        from repro.locking import apply_key
        from repro.locking.key import Key
        from repro.sat import check_equivalence

        spec = small_spec(
            attacks=(AttackSpec("sat", params={"max_iterations": 64}),)
        )
        run = run_experiment(spec, workdir=tmp_path)
        cell = run.cell("c432", "sat")
        assert cell.details["attack"]["iterations"] <= 64
        # The recovered key must *functionally* unlock the attacked netlist
        # (bit-level Hamming distance may be nonzero: synthesis can leave
        # key bits as don't-cares).
        locked = lock_rll(
            load_iscas85("c432", scale="quick", seed=0), key_size=6, seed=7
        )
        netlist, _mapped = synthesize_and_map(locked.netlist, RESYN2)
        recovered = apply_key(
            netlist, Key(tuple(int(c) for c in cell.predicted_key))
        )
        reference = apply_key(netlist, locked.key)
        assert check_equivalence(recovered, reference).equivalent

    def test_resynthesis_sweep_from_spec(self, tmp_path):
        from repro.core.proxy import ProxyConfig
        from repro.flows import resynthesis_sweep_from_spec

        spec = ExperimentSpec(
            benchmarks=(BenchmarkSpec(name="c432"),),
            lock=LockSpec(locker="rll", key_size=6, seed=7),
        )
        points = resynthesis_sweep_from_spec(
            spec,
            ProxyConfig(num_samples=12, epochs=2, seed=0),
            objective="area",
            iterations=2,
            runner=Runner(workdir=tmp_path),
        )
        assert points
        assert all(p.metric_ratio > 0 for p in points)
        assert all(0.0 <= p.attack_accuracy <= 1.0 for p in points)

    def test_table_reporter(self, tmp_path):
        from repro.reporting import render_run_table

        run = run_experiment(small_spec(), workdir=tmp_path)
        table = render_run_table(run)
        assert "scope" in table and "redundancy" in table
        assert "c432" in table


# -- CLI integration -----------------------------------------------------

class TestPipelineCli:
    def _locked_design(self, tmp_path, capsys):
        design = tmp_path / "c432.bench"
        locked = tmp_path / "locked.bench"
        main(["gen", "c432", "--out", str(design)])
        main(["lock", str(design), "--key-size", "6", "--out", str(locked)])
        key_line = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("key (keep secret!): ")
        ][-1]
        return locked, key_line.split(": ")[1].strip()

    def test_attack_dispatches_by_name(self, tmp_path, capsys):
        locked, key = self._locked_design(tmp_path, capsys)
        assert main([
            "attack", str(locked), "--attack", "scope", "--key", key,
            "--workdir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "predicted key: " in out
        assert "accuracy: " in out

    def test_attack_sat_points_to_sat_attack(self, tmp_path, capsys):
        locked, key = self._locked_design(tmp_path, capsys)
        assert main([
            "attack", str(locked), "--attack", "sat", "--key", key,
        ]) == 2
        assert "sat-attack" in capsys.readouterr().err

    def test_run_command_on_toml_spec(self, tmp_path, capsys):
        spec = small_spec(name="cli-run")
        spec_path = tmp_path / "spec.toml"
        spec.dump(spec_path)
        out_path = tmp_path / "result.json"
        assert main([
            "run", str(spec_path), "--workdir", str(tmp_path / "cache"),
            "--out", str(out_path),
        ]) == 0
        assert "cli-run" in capsys.readouterr().out
        loaded = RunResult.load(out_path)
        assert {c.attack for c in loaded.cells} == {"scope", "redundancy"}

    def test_grid_command_warm_cache(self, tmp_path, capsys):
        workdir = str(tmp_path / "cache")
        argv = [
            "grid", "--benchmarks", "c432", "--attacks", "scope,redundancy",
            "--key-size", "6", "--workdir", workdir,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        # Warm rerun: every stage is a cache hit.
        assert "0 stages executed" in capsys.readouterr().out

    def test_grid_dump_spec_reproduces(self, tmp_path, capsys):
        workdir = str(tmp_path / "cache")
        spec_path = tmp_path / "grid.toml"
        assert main([
            "grid", "--benchmarks", "c432", "--attacks", "scope",
            "--key-size", "6", "--workdir", workdir,
            "--dump-spec", str(spec_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "run", str(spec_path), "--workdir", workdir,
        ]) == 0
        assert "0 stages executed" in capsys.readouterr().out


# -- SAT-resilient defenses through the pipeline --------------------------

class TestDefenseGrid:
    """The ISSUE-3 acceptance grid: {rll, antisat, rll+antisat} lockers
    crossed with the {sat, appsat} oracle-guided attacks, all green."""

    ATTACKS = (
        AttackSpec("sat", params={"max_iterations": 48}),
        AttackSpec("appsat", params={"max_iterations": 48,
                                     "query_period": 4}),
    )

    def _grid_spec(self, locker: str) -> ExperimentSpec:
        return ExperimentSpec(
            name=f"grid-{locker}",
            benchmarks=(BenchmarkSpec(name="c432"),),
            lock=LockSpec(locker=locker, key_size=4, seed=7),
            synth=SynthSpec(recipe="none"),
            attacks=self.ATTACKS,
        )

    def test_new_lockers_registered(self):
        for name in ("antisat", "sarlock", "rll+antisat", "rll+sarlock"):
            assert name in available("locker"), name
        for name in ("antisat", "sarlock"):
            assert name in available("defense"), name
        assert "appsat" in available("attack")

    def test_grid_runs_green_across_defenses(self, tmp_path):
        """Budget-exhausted SAT cells return partial results; no cell may
        kill the grid."""
        outcomes = {}
        for locker in ("rll", "antisat", "rll+antisat"):
            run = run_experiment(self._grid_spec(locker), workdir=tmp_path)
            assert len(run.cells) == 2, locker
            for cell in run.cells:
                details = cell.details["attack"]
                outcomes[(locker, cell.attack)] = details
                assert cell.accuracy is not None, (locker, cell.attack)
        # Plain RLL falls to the exact attack in a handful of DIPs...
        assert outcomes[("rll", "sat")]["exact"]
        assert not outcomes[("rll", "sat")]["budget_exhausted"]
        # ...while full-width Anti-SAT starves it into the budget...
        assert outcomes[("antisat", "sat")]["budget_exhausted"]
        assert outcomes[("rll+antisat", "sat")]["budget_exhausted"]
        # ...and AppSAT side-steps the defense with an approximate key.
        for locker in ("antisat", "rll+antisat"):
            details = outcomes[(locker, "appsat")]
            assert not details["budget_exhausted"], locker
            assert details["early_exit"], locker
            assert details["error_rate"] <= 0.05, locker

    def test_point_function_locker_key_sizes(self, tmp_path):
        run = run_experiment(
            ExperimentSpec(
                name="widths",
                benchmarks=(BenchmarkSpec(name="c432"),),
                lock=LockSpec(locker="rll+antisat", key_size=4, seed=1),
                synth=SynthSpec(recipe="none"),
            ),
            workdir=tmp_path,
        )
        # 4 RLL bits + 2 * 9 Anti-SAT bits on quick-scale c432.
        assert run.cells[0].key_size == 4 + 2 * 9

    def test_point_function_locker_rejects_prelocked(self, tmp_path, capsys):
        design = tmp_path / "c432.bench"
        locked = tmp_path / "locked.bench"
        main(["gen", "c432", "--out", str(design)])
        main(["lock", str(design), "--key-size", "4", "--out", str(locked)])
        capsys.readouterr()
        spec = ExperimentSpec(
            name="bad",
            benchmarks=(BenchmarkSpec(path=str(locked)),),
            lock=LockSpec(locker="antisat"),
        )
        with pytest.raises(PipelineError, match="unlocked"):
            run_experiment(spec, workdir=tmp_path / "cache")

    def test_structural_defense_spec_extends_key(self, tmp_path):
        """DefenseSpec(name='antisat') grafts the block onto the RLL lock:
        the attack sees the extended key and the spec round-trips."""
        spec = ExperimentSpec(
            name="defense-spec",
            benchmarks=(BenchmarkSpec(name="c432"),),
            lock=LockSpec(locker="rll", key_size=4, seed=3),
            defense=DefenseSpec(name="antisat", width=3, seed=4),
            synth=SynthSpec(recipe="none"),
            attacks=(AttackSpec("sat", params={"max_iterations": 64}),),
        )
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec
        run = run_experiment(spec, workdir=tmp_path)
        cell = run.cells[0]
        assert cell.key_size == 4 + 2 * 3
        info = cell.details["defense"]
        assert info["defense"] == "antisat"
        assert info["added_key_bits"] == 6
        assert "lock" not in info  # artifacts stay out of the JSON surface
        assert cell.details["attack"]["iterations"] >= 2 ** 2
        json.loads(run.to_json())

    def test_structural_defense_width_validation(self):
        with pytest.raises(SpecError, match="width"):
            DefenseSpec(name="antisat", width=-1)

    def test_sarlock_defense_spec(self, tmp_path):
        spec = ExperimentSpec(
            name="sarlock-defense",
            benchmarks=(BenchmarkSpec(name="c432"),),
            lock=LockSpec(locker="rll", key_size=4, seed=5),
            defense=DefenseSpec(name="sarlock", seed=6),
            synth=SynthSpec(recipe="none"),
        )
        run = run_experiment(spec, workdir=tmp_path)
        assert run.cells[0].key_size == 4 + 9
        assert run.cells[0].details["defense"]["defense"] == "sarlock"


class TestDefenseCli:
    def test_defend_scheme_compound_locks_unlocked_design(
        self, tmp_path, capsys
    ):
        design = tmp_path / "c432.bench"
        defended = tmp_path / "defended.bench"
        main(["gen", "c432", "--out", str(design)])
        capsys.readouterr()
        assert main([
            "defend", str(design), "--scheme", "rll+antisat",
            "--key-size", "4", "--out", str(defended),
        ]) == 0
        out = capsys.readouterr().out
        assert "partition rll: 4 key bits" in out
        assert "partition antisat: 18 key bits" in out
        key = [
            line for line in out.splitlines()
            if line.startswith("key (keep secret!): ")
        ][0].split(": ")[1].strip()
        assert len(key) == 4 + 18
        # The defended netlist under its key is the original design.
        assert main([
            "equiv", str(design), str(defended), "--key", key,
        ]) == 0

    def test_defend_scheme_grafts_onto_locked_design(self, tmp_path, capsys):
        design = tmp_path / "c432.bench"
        locked = tmp_path / "locked.bench"
        defended = tmp_path / "defended.bench"
        main(["gen", "c432", "--out", str(design)])
        main(["lock", str(design), "--key-size", "4", "--out", str(locked)])
        key_line = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("key (keep secret!): ")
        ][-1]
        rll_key = key_line.split(": ")[1].strip()
        assert main([
            "defend", str(locked), "--scheme", "sarlock", "--key", rll_key,
            "--out", str(defended), "--workdir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "defense sarlock: added 9 key bits" in out
        combined = [
            line for line in out.splitlines()
            if line.startswith("key (keep secret!): ")
        ][0].split(": ")[1].strip()
        assert len(combined) == 4 + 9
        assert main([
            "equiv", str(design), str(defended), "--key", combined,
        ]) == 0

    def test_defend_compound_rejects_locked_design(self, tmp_path, capsys):
        design = tmp_path / "c432.bench"
        locked = tmp_path / "locked.bench"
        main(["gen", "c432", "--out", str(design)])
        main(["lock", str(design), "--key-size", "4", "--out", str(locked)])
        capsys.readouterr()
        assert main([
            "defend", str(locked), "--scheme", "rll+antisat",
        ]) == 2
        assert "keyinput" in capsys.readouterr().err

    def test_sat_attack_appsat_on_defended_design(self, tmp_path, capsys):
        design = tmp_path / "c432.bench"
        defended = tmp_path / "defended.bench"
        main(["gen", "c432", "--out", str(design)])
        capsys.readouterr()
        main([
            "defend", str(design), "--scheme", "rll+antisat",
            "--key-size", "4", "--out", str(defended),
        ])
        key = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("key (keep secret!): ")
        ][0].split(": ")[1].strip()
        assert main([
            "sat-attack", str(defended), "--key", key, "--attack", "appsat",
            "--query-period", "4", "--workdir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "recovered key: " in out
        assert "approximate key: measured error rate" in out
        assert "~err=" in out  # query-complexity table outcome column
        # The exact attack on the same design exhausts a tiny budget but
        # still exits 0 with a partial key (grid-safe contract).
        assert main([
            "sat-attack", str(defended), "--key", key, "--max-iterations",
            "8", "--workdir", str(tmp_path / "cache"),
        ]) == 0
        assert "DIP budget exhausted" in capsys.readouterr().out

    def test_grid_max_iterations_flag(self, tmp_path, capsys):
        design = tmp_path / "c432.bench"
        main(["gen", "c432", "--out", str(design)])
        capsys.readouterr()
        out_path = tmp_path / "grid.json"
        assert main([
            "grid", "--benchmarks", str(design), "--locker", "antisat",
            "--attacks", "sat", "--max-iterations", "8", "--recipe", "none",
            "--workdir", str(tmp_path / "cache"), "--out", str(out_path),
        ]) == 0
        loaded = RunResult.load(out_path)
        details = loaded.cells[0].details["attack"]
        assert details["budget_exhausted"] is True
        assert details["iterations"] == 8


# -- strategy sweeps -------------------------------------------------------

def sweep_defense(**overrides) -> DefenseSpec:
    """A minimal-budget search defense declaring a strategy sweep."""
    fields = dict(
        name="almost", iterations=1, samples=8, epochs=2, seed=3,
        strategy=["sa", "random"], chains=2,
    )
    fields.update(overrides)
    return DefenseSpec(**fields)


class TestStrategySweep:
    def test_sweep_spec_round_trips(self, tmp_path):
        spec = small_spec(defense=sweep_defense())
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        path = tmp_path / "sweep.toml"
        spec.dump(path)
        loaded = ExperimentSpec.load(path)
        assert loaded == spec
        assert loaded.defense.strategies == ("sa", "random")
        assert loaded.defense.is_sweep

    def test_sweep_validation(self):
        with pytest.raises(SpecError, match="at least one"):
            DefenseSpec(strategy=[])
        with pytest.raises(SpecError, match="duplicate"):
            DefenseSpec(strategy=["sa", "sa"])
        with pytest.raises(SpecError, match="non-empty strings"):
            DefenseSpec(strategy=["sa", 3])
        with pytest.raises(SpecError, match="string or an array"):
            DefenseSpec(strategy=7)
        # Single-entry sweeps collapse to the canonical plain string.
        assert DefenseSpec(strategy=["pt"]) == DefenseSpec(strategy="pt")

    def test_variants_and_single_strategy(self):
        sweep = sweep_defense()
        variants = sweep.variants()
        assert [v.strategy for v in variants] == ["sa", "random"]
        assert all(not v.is_sweep for v in variants)
        assert variants[0].single_strategy == "sa"
        with pytest.raises(SpecError, match="expand it with variants"):
            sweep.single_strategy

    def test_runner_validates_every_swept_strategy(self, tmp_path):
        from repro.errors import SearchError

        spec = small_spec(
            attacks=(),
            defense=sweep_defense(strategy=["sa", "beem"]),
        )
        with pytest.raises(SearchError, match="unknown search strategy"):
            Runner(workdir=tmp_path).validate(spec)

    def test_sweep_on_structural_defense_rejected(self, tmp_path):
        # A sweep on a defense that ignores the strategy would only fan
        # out byte-identical cells — validation must refuse it up front.
        spec = small_spec(
            attacks=(),
            defense=sweep_defense(name="antisat"),
        )
        with pytest.raises(PipelineError, match="does not run a recipe"):
            Runner(workdir=tmp_path).validate(spec)

    def test_single_grid_run_produces_comparison_table(self, tmp_path):
        """The acceptance pin: one spec, one run, one populated table."""
        from repro.reporting import (
            records_from_run,
            render_search_comparison_table,
        )

        spec = small_spec(
            attacks=(),
            defense=sweep_defense(),
            report=ReportSpec(format="search"),
        )
        runner = Runner(workdir=tmp_path)
        run = runner.run(spec)
        assert [cell.strategy for cell in run.cells] == ["sa", "random"]
        assert run.cell("c432", strategy="random").strategy == "random"
        records = records_from_run(run)
        assert [r.strategy for r in records] == ["sa", "random"]
        assert all(r.label == "c432" for r in records)
        assert all(r.energy_evaluations > 0 for r in records)
        table = runner.report(run, spec)
        assert "sa" in table and "random" in table and "c432" in table
        assert render_search_comparison_table(records) == table
        # The run's JSON round-trips with the per-cell strategy tag.
        assert RunResult.from_json(run.to_json()).cells[0].strategy == "sa"

    def test_parallel_sweep_equals_serial(self, tmp_path):
        spec = small_spec(
            attacks=(AttackSpec("scope"),),
            defense=sweep_defense(),
        )
        serial = run_experiment(spec, workdir=tmp_path / "serial")
        parallel = run_experiment(
            spec, workdir=tmp_path / "parallel", jobs=2
        )
        assert [c.strategy for c in serial.cells] == [
            c.strategy for c in parallel.cells
        ]
        for left, right in zip(serial.cells, parallel.cells):
            assert left.recipe == right.recipe
            assert left.accuracy == right.accuracy
            assert left.details["defense"]["strategy"] == left.strategy

    def test_parallel_sweep_records_real_wall_clock(self, tmp_path):
        # With >1 attacks the parallel runner prefix-warms each variant's
        # defense stage, so every cell is a cache hit; the comparison
        # records must fall back to the warmup log's real timings rather
        # than reporting ~0s cache reads.
        from repro.reporting import records_from_run

        spec = small_spec(
            attacks=(
                AttackSpec("scope"),
                AttackSpec("redundancy", params={"num_patterns": 24}),
            ),
            defense=sweep_defense(),
        )
        run = run_experiment(spec, workdir=tmp_path, jobs=2)
        assert run.warmup  # the prefix-warming pass actually ran
        records = records_from_run(run)
        assert [r.strategy for r in records] == ["sa", "random"]
        # Proxy training alone takes well over 10ms; a cache read doesn't.
        assert all(r.elapsed_s > 0.01 for r in records), [
            r.elapsed_s for r in records
        ]

    def test_search_reporter_without_search_cells(self, tmp_path):
        run = run_experiment(small_spec(), workdir=tmp_path)
        from repro.pipeline import registry

        text = registry.get("reporter", "search")(run, ReportSpec())
        assert "no recipe-search cells" in text

    def test_grid_spec_flag_rejects_shaping_flags(self, tmp_path, capsys):
        spec_path = tmp_path / "sweep.toml"
        small_spec(defense=sweep_defense()).dump(spec_path)
        assert main([
            "grid", "--spec", str(spec_path), "--attacks", "scope",
            "--report", "json", "--no-cache",
        ]) == 2
        err = capsys.readouterr().err
        assert "--spec runs the spec file as-is" in err
        assert "--attacks" in err and "--report" in err


# -- graceful interruption & progress streaming ---------------------------

def _sleepy_attack(ctx, params):
    """A registered test attack that just sleeps (interruption target)."""
    import time as _time

    from repro.attacks.base import AttackResult

    _time.sleep(float(params.get("sleep_s", 5.0)))
    return AttackResult(
        predicted_bits=(0,) * len(ctx.lock.key_inputs),
        attack_name="sleepy",
    )


class TestInterruption:
    def test_serial_interrupt_keeps_completed_cells(self, tmp_path):
        runner = Runner(workdir=tmp_path)
        original = runner.run_cell
        calls = {"n": 0}

        def flaky(spec, bench, attack):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return original(spec, bench, attack)

        runner.run_cell = flaky
        run = runner.run(small_spec())
        assert run.interrupted
        assert len(run.cells) == 1
        assert run.cells[0].attack == "scope"
        # The flag survives the JSON round trip.
        assert RunResult.from_json(run.to_json()).interrupted

    def test_parallel_interrupt_terminates_pool(self, tmp_path):
        import signal as _signal

        register("attack", "sleepy")(_sleepy_attack)
        try:
            spec = small_spec(
                attacks=(
                    AttackSpec(
                        "sleepy", params={"sleep_s": 20.0}, label="s1"
                    ),
                    AttackSpec(
                        "sleepy", params={"sleep_s": 20.1}, label="s2"
                    ),
                ),
                synth=SynthSpec(recipe="none"),
            )
            runner = Runner(workdir=tmp_path, jobs=2)

            def _interrupt(signum, frame):
                raise KeyboardInterrupt

            previous = _signal.signal(_signal.SIGALRM, _interrupt)
            _signal.setitimer(_signal.ITIMER_REAL, 2.0)
            started = __import__("time").perf_counter()
            try:
                run = runner.run(spec)
            finally:
                _signal.setitimer(_signal.ITIMER_REAL, 0.0)
                _signal.signal(_signal.SIGALRM, previous)
            elapsed = __import__("time").perf_counter() - started
            assert run.interrupted
            # The 20s attack cells died with the pool: the interrupt must
            # not wait for them.
            assert elapsed < 15.0
        finally:
            unregister("attack", "sleepy")

    def test_sigterm_lands_like_ctrl_c(self, tmp_path):
        import os
        import signal as _signal

        runner = Runner(workdir=tmp_path)

        def send_sigterm(spec, bench, attack):
            os.kill(os.getpid(), _signal.SIGTERM)
            raise AssertionError("SIGTERM handler should have fired")

        runner.run_cell = send_sigterm
        run = runner.run(small_spec())
        assert run.interrupted
        assert run.cells == []

    def test_progress_callback_labels_entries(self, tmp_path):
        seen: list[dict] = []
        runner = Runner(workdir=tmp_path, progress=seen.append)
        runner.run(small_spec())
        assert {entry["benchmark"] for entry in seen} == {"c432"}
        assert {entry["attack"] for entry in seen} == {
            "scope", "redundancy"
        }
        assert all(
            {"stage", "fingerprint", "cached", "elapsed_s"}
            <= set(entry)
            for entry in seen
        )

    def test_cli_grid_interrupt_exits_130(self, tmp_path, capsys,
                                          monkeypatch):
        from repro.pipeline import runner as runner_mod

        def explode(self, spec, bench, attack):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner_mod.Runner, "run_cell", explode)
        out_path = tmp_path / "run.json"
        code = main([
            "grid", "--benchmarks", "c432", "--attacks", "scope",
            "--key-size", "4", "--workdir", str(tmp_path / "cache"),
            "--out", str(out_path),
        ])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err
        # The partial RunResult still lands on disk for later resumption.
        assert RunResult.load(out_path).interrupted

    def test_cli_main_maps_interrupt_to_130(self, capsys, monkeypatch):
        from repro import cli as cli_mod

        def interrupted_cmd(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_mod, "cmd_trace", interrupted_cmd)
        assert main(["trace", "whatever.jsonl"]) == 130
        assert "interrupted" in capsys.readouterr().err


class TestEvaluatorInterrupt:
    def test_evaluate_interrupt_terminates_pool(self):
        import signal as _signal

        from repro.core.search.evaluator import ProcessPoolEvaluator

        evaluator = ProcessPoolEvaluator(_sleep_energy, jobs=2)

        def _interrupt(signum, frame):
            raise KeyboardInterrupt

        previous = _signal.signal(_signal.SIGALRM, _interrupt)
        _signal.setitimer(_signal.ITIMER_REAL, 1.0)
        try:
            with pytest.raises(KeyboardInterrupt):
                evaluator.evaluate([30.0, 30.0])
        finally:
            _signal.setitimer(_signal.ITIMER_REAL, 0.0)
            _signal.signal(_signal.SIGALRM, previous)
        # terminate() already ran; close() stays idempotent.
        assert evaluator._pool is None
        evaluator.close()


def _sleep_energy(seconds: float) -> float:
    import time as _time

    _time.sleep(seconds)
    return seconds


# -- cache maintenance (repro cache) --------------------------------------

class TestCacheMaintenance:
    def _fill(self, root, n=4, size=1000):
        import os as _os
        import time as _time

        cache = ArtifactCache(root)
        for index in range(n):
            cache.put(f"{index:02d}{'ab' * 31}", b"x" * size)
            # Distinct mtimes so age-ordering is deterministic.
            path = cache.path_for(f"{index:02d}{'ab' * 31}")
            stamp = _time.time() - (n - index) * 3600
            _os.utime(path, (stamp, stamp))
        return cache

    def test_disk_stats(self, tmp_path):
        cache = self._fill(tmp_path / "cache")
        stats = cache.disk_stats()
        assert stats["entries"] == 4
        assert stats["bytes"] > 4 * 1000
        assert stats["schema"] == 5

    def test_prune_by_age(self, tmp_path):
        cache = self._fill(tmp_path / "cache")
        # Entries are 4h/3h/2h/1h old; evict anything past 2.5 hours.
        outcome = cache.prune(older_than_s=2.5 * 3600)
        assert outcome["removed"] == 2
        assert outcome["remaining"] == 2
        assert cache.disk_stats()["entries"] == 2

    def test_prune_by_size_evicts_oldest_first(self, tmp_path):
        cache = self._fill(tmp_path / "cache")
        total = cache.disk_stats()["bytes"]
        per_entry = total // 4
        outcome = cache.prune(max_bytes=2 * per_entry + 10)
        assert outcome["removed"] == 2
        # The newest two survive.
        assert cache.contains(f"{3:02d}{'ab' * 31}")
        assert cache.contains(f"{2:02d}{'ab' * 31}")
        assert not cache.contains(f"{0:02d}{'ab' * 31}")
        assert outcome["remaining_bytes"] <= 2 * per_entry + 10

    def test_parse_duration_and_size(self):
        from repro.pipeline.cache import parse_duration, parse_size

        assert parse_duration("90") == 90.0
        assert parse_duration("90s") == 90.0
        assert parse_duration("15m") == 900.0
        assert parse_duration("6h") == 21600.0
        assert parse_duration("2w") == 1209600.0
        assert parse_size("1024") == 1024
        assert parse_size("500M") == 500 * 1024**2
        assert parse_size("2G") == 2 * 1024**3
        assert parse_size("1kb") == 1024
        for bad in ("", "12x", "h", "5mm"):
            with pytest.raises(CacheError):
                parse_duration(bad)
            with pytest.raises(CacheError):
                parse_size(bad)

    def test_cli_cache_stats_and_prune(self, tmp_path, capsys):
        self._fill(tmp_path / "cache")
        assert main(["cache", "--workdir", str(tmp_path / "cache"),
                     "stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 4
        assert main(["cache", "--workdir", str(tmp_path / "cache"),
                     "prune", "--older-than", "150m"]) == 0
        outcome = json.loads(capsys.readouterr().out)
        assert outcome["removed"] == 2
        # prune with no criteria is a usage error, not a full wipe.
        assert main(["cache", "--workdir", str(tmp_path / "cache"),
                     "prune"]) == 2
