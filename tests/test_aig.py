"""Tests for the AIG data structure: strashing, folding, replacement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import (
    Aig,
    aig_from_netlist,
    lit_not,
    lit_var,
    make_lit,
)
from repro.aig.simulate import (
    exhaustive_signatures,
    functionally_equal,
    output_truth_tables,
    random_signatures,
)
from repro.errors import AigError
from tests.conftest import build_random_netlist


class TestLiterals:
    def test_encoding(self):
        assert make_lit(3) == 6
        assert make_lit(3, True) == 7
        assert lit_var(7) == 3
        assert lit_not(6) == 7
        assert lit_not(7) == 6


class TestConstruction:
    def test_constant_folding(self):
        aig = Aig()
        a = aig.add_pi("a")
        assert aig.add_and(a, 0) == 0
        assert aig.add_and(a, 1) == a
        assert aig.add_and(a, a) == a
        assert aig.add_and(a, lit_not(a)) == 0

    def test_structural_hashing(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        n1 = aig.add_and(a, b)
        n2 = aig.add_and(b, a)
        assert n1 == n2
        assert aig.num_ands() == 1

    def test_xor_mux_helpers(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        s = aig.add_pi("s")
        aig.add_po(aig.add_xor(a, b), "x")
        aig.add_po(aig.add_mux(s, a, b), "m")
        tables = output_truth_tables(aig)
        for minterm in range(8):
            bits = [(minterm >> i) & 1 for i in range(3)]
            va, vb, vs = bits
            assert ((tables[0].bits >> minterm) & 1) == va ^ vb
            assert ((tables[1].bits >> minterm) & 1) == (vb if vs else va)

    def test_many_and_or(self):
        aig = Aig()
        pis = [aig.add_pi(f"p{i}") for i in range(5)]
        aig.add_po(aig.add_many_and(pis), "a")
        aig.add_po(aig.add_many_or(pis), "o")
        tables = output_truth_tables(aig)
        assert tables[0].count_ones() == 1
        assert tables[1].count_ones() == 31

    def test_dead_literal_rejected(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        n = aig.add_and(a, b)
        aig.add_po(n, "y")
        aig.set_po(0, a)  # kills the AND node
        with pytest.raises(AigError):
            aig.add_and(n, a)

    def test_check_passes_on_valid(self, c432_quick):
        aig = aig_from_netlist(c432_quick)
        aig.check()


class TestReplace:
    def test_replace_with_constant(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        n1 = aig.add_and(a, b)
        n2 = aig.add_and(n1, lit_not(a))
        aig.add_po(n2, "y")
        aig.replace(lit_var(n1), 1)
        aig.check()
        # y = 1 & ~a = ~a
        assert aig.po_lits()[0] == lit_not(a)

    def test_replace_cascades_strash_merge(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        c = aig.add_pi("c")
        n1 = aig.add_and(a, b)
        n2 = aig.add_and(c, b)
        m1 = aig.add_and(n1, c)
        m2 = aig.add_and(n2, a)
        aig.add_po(m1, "y1")
        aig.add_po(m2, "y2")
        # Replacing n2 by n1 makes m2 = n1 & a; then further logic can merge.
        aig.replace(lit_var(n2), n1)
        aig.check()
        sigs = exhaustive_signatures(aig)
        width = 1 << 3

        def po_word(index):
            po = aig.po_lits()[index]
            word = sigs[lit_var(po)]
            if po & 1:
                word ^= (1 << width) - 1
            return word

        # y1 = (a&b)&c = minterm 7; y2 = (a&b)&a = a&b = minterms 3, 7.
        assert po_word(0) == 0b10000000
        assert po_word(1) == 0b10001000

    def test_replace_updates_pos(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        n = aig.add_and(a, b)
        aig.add_po(lit_not(n), "y")
        aig.replace(lit_var(n), a)
        assert aig.po_lits()[0] == lit_not(a)

    def test_replace_rejects_self(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        n = aig.add_and(a, b)
        with pytest.raises(AigError):
            aig.replace(lit_var(n), n)

    def test_dead_cone_reclaimed(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        c = aig.add_pi("c")
        n1 = aig.add_and(a, b)
        n2 = aig.add_and(n1, c)
        aig.add_po(n2, "y")
        assert aig.num_ands() == 2
        aig.replace(lit_var(n2), a)
        aig.check()
        assert aig.num_ands() == 0


class TestTraversal:
    def test_topological_order_property(self, c432_quick):
        aig = aig_from_netlist(c432_quick)
        position = {var: i for i, var in enumerate(aig.topological_ands())}
        for var in aig.topological_ands():
            for lit in aig.fanins(var):
                child = lit_var(lit)
                if aig.is_and(child):
                    assert position[child] < position[var]

    def test_levels_and_depth(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        c = aig.add_pi("c")
        n1 = aig.add_and(a, b)
        n2 = aig.add_and(n1, c)
        aig.add_po(n2, "y")
        assert aig.depth() == 2

    def test_mffc(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        c = aig.add_pi("c")
        n1 = aig.add_and(a, b)        # shared
        n2 = aig.add_and(n1, c)       # only in n3's cone
        n3 = aig.add_and(n2, lit_not(a))
        aig.add_po(n3, "y")
        aig.add_po(n1, "z")           # n1 referenced by a PO too
        leaves = {lit_var(a), lit_var(b), lit_var(c)}
        mffc = aig.mffc(lit_var(n3), leaves)
        assert lit_var(n3) in mffc
        assert lit_var(n2) in mffc
        assert lit_var(n1) not in mffc  # kept alive by PO z

    def test_reaches(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        n1 = aig.add_and(a, b)
        n2 = aig.add_and(n1, lit_not(a))
        aig.add_po(n2, "y")
        assert aig.reaches(n2, lit_var(n1), stop_vars=set())
        assert not aig.reaches(n1, lit_var(n2), stop_vars=set())


class TestCompact:
    def test_compact_preserves_function(self, c880_quick):
        aig = aig_from_netlist(c880_quick)
        compacted = aig.compact()
        compacted.check()
        assert functionally_equal(aig, compacted)

    def test_compact_drops_dangling(self):
        aig = Aig()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        used = aig.add_and(a, b)
        aig.add_po(used, "y")
        # set_po to a kills the node; rebuild to verify compaction.
        compacted = aig.compact()
        assert compacted.num_ands() == 1

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_random(self, seed):
        netlist = build_random_netlist(seed=seed)
        aig = aig_from_netlist(netlist)
        aig.check()
        assert functionally_equal(aig, aig.compact())
