"""Telemetry subsystem: metrics registry, spans, the worker bridge, CLI.

The acceptance property PRs rely on: with tracing enabled, the counter
deltas carried by the ``stage`` spans of a parallel grid run — including
spans emitted from pool worker processes — exactly equal the numbers the
pipeline reports through ``RunResult`` details.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os

import pytest

import repro.sat.solver as solver_mod
from repro.attacks.sat_attack import SatAttack, oracle_from_key
from repro.circuits import load_iscas85
from repro.cli import main
from repro.locking import lock_rll
from repro.obs.logs import configure_cli_logging, get_logger
from repro.obs.metrics import MetricsRegistry, REGISTRY, inc
from repro.obs.trace import (
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from repro.pipeline import (
    AttackSpec,
    BenchmarkSpec,
    ExperimentSpec,
    LockSpec,
    Runner,
    SynthSpec,
)
from repro.reporting.sat import SatAttackRecord, render_sat_attack_table
from repro.reporting.trace import (
    build_span_tree,
    load_trace,
    render_span_tree,
    render_trace_hotspots,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Each test starts from a zeroed registry and the NullTracer."""
    REGISTRY.reset()
    set_tracer(None)
    yield
    REGISTRY.reset()
    set_tracer(None)


# -- metrics registry ------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        registry.gauge("b").set(2.5)
        registry.histogram("c").observe(1.0)
        registry.histogram("c").observe(3.0)
        snap = registry.snapshot()
        assert snap["a"] == 5
        assert snap["b"] == 2.5
        assert snap["c.count"] == 2
        assert snap["c.sum"] == 4.0
        assert snap["c.min"] == 1.0
        assert snap["c.max"] == 3.0
        assert snap["c.mean"] == 2.0

    def test_counters_snapshot_only_counters(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("g").set(9)
        assert registry.counters() == {"a": 1}

    def test_cross_kind_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.snapshot() == {}

    def test_module_level_inc(self):
        inc("test.widgets", 3)
        assert REGISTRY.counters()["test.widgets"] == 3


# -- spans -----------------------------------------------------------------

class TestTracer:
    def test_nesting_and_parent_links(self):
        tracer = Tracer()
        with tracer.span("run") as outer:
            with tracer.span("stage") as inner:
                assert inner.parent_id == outer.span_id
        names = [r["name"] for r in tracer.records]
        assert names == ["stage", "run"]  # close order
        assert tracer.records[1]["parent_id"] is None

    def test_span_metric_deltas(self):
        tracer = Tracer()
        inc("pre.existing", 10)
        with tracer.span("outer"):
            inc("work.done", 2)
            with tracer.span("inner"):
                inc("work.done", 5)
        inner, outer = tracer.records
        assert inner["metrics"] == {"work.done": 5}
        assert outer["metrics"] == {"work.done": 7}
        assert "pre.existing" not in outer["metrics"]

    def test_span_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", fixed=1) as span:
            span.set(found=True)
        assert tracer.records[0]["attrs"] == {"fixed": 1, "found": True}

    def test_error_recorded(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        assert tracer.records[0]["attrs"]["error"] == "ValueError"

    def test_use_tracer_restores(self):
        tracer = Tracer()
        assert isinstance(get_tracer(), NullTracer)
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert isinstance(get_tracer(), NullTracer)

    def test_null_tracer_noops(self):
        null = NullTracer()
        with null.span("anything", attr=1) as span:
            span.set(more=2)
        assert null.drain() == 0
        assert null.worker_handle() is None
        null.flush()
        null.close()

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path) as tracer, use_tracer(tracer):
            with tracer.span("run"):
                with tracer.span("stage", stage="lock"):
                    inc("sat.conflicts", 3)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        records = load_trace(path)
        assert [r["name"] for r in records] == ["stage", "run"]
        roots = build_span_tree(records)
        assert len(roots) == 1 and roots[0]["name"] == "run"
        assert roots[0]["children"][0]["metrics"] == {"sat.conflicts": 3}

    def test_empty_trace_still_writes_header(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        with Tracer(path):
            pass
        assert json.loads(path.read_text().splitlines()[0])["schema"] >= 1

    def test_unbridged_tracer_is_not_picklable(self):
        import pickle

        with pytest.raises(TypeError):
            pickle.dumps(Tracer())


# -- the cross-process bridge ---------------------------------------------

def _bridge_task(_index):
    with get_tracer().span("worker.task"):
        inc("bridge.widgets", 2)
    return os.getpid()


def _bridge_init(handle):
    set_tracer(handle)


class TestWorkerBridge:
    def test_worker_spans_reach_parent(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("run") as run_span:
                handle = tracer.worker_handle()
                with multiprocessing.Pool(
                    2, initializer=_bridge_init, initargs=(handle,)
                ) as pool:
                    pids = pool.map(_bridge_task, range(4))
                assert tracer.drain() == 4
        tracer.close()
        worker_records = [
            r for r in tracer.records if r["name"] == "worker.task"
        ]
        assert len(worker_records) == 4
        assert any(pid != os.getpid() for pid in pids)
        for record in worker_records:
            assert record["pid"] != os.getpid()
            assert record["metrics"] == {"bridge.widgets": 2}
            # Worker spans hang off the span open at handle creation.
            assert record["parent_id"] == run_span.span_id


# -- solver restarts surfaced end to end ----------------------------------

class TestRestartsSurfaced:
    def test_restarts_in_attack_details_and_record(self, monkeypatch):
        # Force frequent restarts so even quick-scale instances hit them.
        monkeypatch.setattr(solver_mod, "_RESTART_BASE", 2)
        locked = lock_rll(
            load_iscas85("c432", scale="quick"), key_size=8, seed=0
        )
        result = SatAttack().attack(
            locked.netlist, oracle_from_key(locked.netlist, locked.key),
            true_key=locked.key,
        )
        solver_stats = result.details["solver"]
        assert solver_stats["restarts"] > 0
        # Per-iteration trace entries carry the restart deltas too.
        assert sum(
            entry["restarts"] for entry in result.details["trace"]
        ) > 0
        record = SatAttackRecord.from_result("c432", result)
        assert record.restarts == solver_stats["restarts"]
        table = render_sat_attack_table([record])
        assert "restarts" in table

    def test_registry_counts_restarts(self, monkeypatch):
        monkeypatch.setattr(solver_mod, "_RESTART_BASE", 2)
        locked = lock_rll(
            load_iscas85("c432", scale="quick"), key_size=8, seed=0
        )
        SatAttack().attack(
            locked.netlist, oracle_from_key(locked.netlist, locked.key)
        )
        assert REGISTRY.counters().get("sat.restarts", 0) > 0


# -- acceptance: parallel grid spans match RunResult ----------------------

def _two_cell_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="obs-accept",
        benchmarks=(BenchmarkSpec(name="c432"), BenchmarkSpec(name="c499")),
        lock=LockSpec(locker="rll", key_size=8, seed=0),
        synth=SynthSpec(recipe="none"),
        attacks=(AttackSpec("sat", params={"max_iterations": 128}),),
    )


class TestGridAcceptance:
    def test_worker_stage_spans_match_run_details(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        runner = Runner(workdir=tmp_path / "cache", jobs=2)
        with Tracer(path) as tracer, use_tracer(tracer):
            run = runner.run(_two_cell_spec())
        records = load_trace(path)
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        assert len(by_name["run"]) == 1
        assert len(by_name["cell"]) == 2
        # Cells executed in pool workers, not the parent process.
        assert all(
            r["pid"] != os.getpid() for r in by_name["cell"]
        )
        # Spans arrived for every stage of both cells.
        attack_spans = [
            r for r in by_name["stage"] if r["attrs"]["stage"] == "attack"
        ]
        assert len(attack_spans) == 2
        nodes = {r["span_id"]: r for r in records}
        for span in attack_spans:
            cell = nodes[span["parent_id"]]
            details = run.cell(
                cell["attrs"]["benchmark"], "sat"
            ).details["attack"]
            assert span["metrics"]["dip.iterations"] == details["iterations"]
            assert (
                span["metrics"]["dip.oracle_queries"]
                == details["oracle_queries"]
            )
            for counter in ("conflicts", "decisions", "propagations",
                            "restarts"):
                assert (
                    span["metrics"].get(f"sat.{counter}", 0)
                    == details["solver"][counter]
                )
            # The stage log's fingerprint is the span's fingerprint attr.
            stage_log = [
                entry
                for entry in run.cell(
                    cell["attrs"]["benchmark"], "sat"
                ).stages
                if entry["stage"] == "attack"
            ]
            assert span["attrs"]["fingerprint"] == stage_log[0]["fingerprint"]
            assert span["attrs"]["cached"] is False

    def test_disabled_tracer_leaves_no_records(self, tmp_path):
        runner = Runner(workdir=tmp_path / "cache", jobs=1)
        run = runner.run(_two_cell_spec())
        assert isinstance(get_tracer(), NullTracer)
        assert len(run.cells) == 2


# -- CLI surface -----------------------------------------------------------

class TestCli:
    def test_grid_trace_then_render(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        assert main([
            "grid", "--benchmarks", "c432", "--attacks", "sat",
            "--key-size", "8", "--recipe", "none", "--max-iterations", "64",
            "--workdir", str(tmp_path / "cache"),
            "--trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert f"wrote trace to {trace_path}" in out
        assert main(["trace", str(trace_path)]) == 0
        rendered = capsys.readouterr().out
        assert "run [" in rendered
        assert "attack.sat" in rendered
        assert "Top hotspots" in rendered

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["trace", str(missing)]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("not json\n")
        assert main(["trace", str(empty)]) == 2
        capsys.readouterr()

    def test_verbose_and_quiet_flags(self, tmp_path, capsys):
        out = tmp_path / "c.bench"
        assert main(["-v", "gen", "c432", "--out", str(out)]) == 0
        assert main(["-q", "gen", "c432", "--out", str(out)]) == 0
        capsys.readouterr()


# -- logging hierarchy -----------------------------------------------------

class TestLogging:
    def test_get_logger_roots_names(self):
        assert get_logger("repro.pipeline.runner").name == (
            "repro.pipeline.runner"
        )
        assert get_logger("synth.engine").name == "repro.synth.engine"
        assert get_logger("repro").name == "repro"

    def test_package_root_has_null_handler(self):
        root = logging.getLogger("repro")
        assert any(
            isinstance(h, logging.NullHandler) for h in root.handlers
        )

    def test_configure_cli_logging_levels(self):
        assert configure_cli_logging() == logging.WARNING
        assert configure_cli_logging(verbose=1) == logging.INFO
        assert configure_cli_logging(verbose=2) == logging.DEBUG
        assert configure_cli_logging(quiet=True) == logging.ERROR
        root = logging.getLogger("repro")
        cli_handlers = [
            h for h in root.handlers if getattr(h, "_repro_cli", False)
        ]
        # Repeated calls replace the handler, never stack duplicates.
        assert len(cli_handlers) == 1
        root.removeHandler(cli_handlers[0])


class TestTraceSinkCollision:
    def test_two_tracers_never_clobber_each_other(self, tmp_path):
        """Same --trace path twice: the second sink moves to a suffixed
        sibling instead of truncating the first (O_EXCL creation)."""
        path = tmp_path / "trace.jsonl"
        first = Tracer(str(path))
        with first.span("alpha"):
            pass
        first.close()
        second = Tracer(str(path))
        with second.span("beta"):
            pass
        second.close()
        assert first.path == str(path)
        assert second.path == str(tmp_path / "trace-1.jsonl")
        third = Tracer(str(path))
        third.flush()
        third.close()
        assert third.path == str(tmp_path / "trace-2.jsonl")
        # Each file holds its own spans, untouched by the others.
        names = {
            p.name: [r.get("name") for r in load_trace(p)
                     if r.get("kind") == "span"]
            for p in sorted(tmp_path.glob("trace*.jsonl"))
        }
        assert names["trace.jsonl"] == ["alpha"]
        assert names["trace-1.jsonl"] == ["beta"]
        assert names["trace-2.jsonl"] == []

    def test_suffix_respects_extensionless_paths(self, tmp_path):
        path = tmp_path / "tracefile"
        for expected in ("tracefile", "tracefile-1"):
            tracer = Tracer(str(path))
            tracer.flush()
            tracer.close()
            assert tracer.path == str(tmp_path / expected)

    def test_cli_reports_the_actual_sink_path(self, tmp_path, capsys):
        design = tmp_path / "c432.bench"
        main(["gen", "c432", "--out", str(design)])
        capsys.readouterr()
        (tmp_path / "t.jsonl").write_text("occupied\n")
        # --key missing exits 2 before any work, but the trace context
        # still closes — and must report the sink it actually wrote
        # (the suffixed sibling, since t.jsonl was taken).
        assert main([
            "sat-attack", str(design), "--recipe", "none",
            "--trace", str(tmp_path / "t.jsonl"),
            "--workdir", str(tmp_path / "cache"),
        ]) == 2
        out = capsys.readouterr().out
        assert f"wrote trace to {tmp_path / 't-1.jsonl'}" in out
        assert (tmp_path / "t.jsonl").read_text() == "occupied\n"
