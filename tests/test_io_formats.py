"""Tests for AIGER and Verilog export/import."""

import pytest

from repro.aig import aig_from_netlist
from repro.aig.aiger_io import parse_aiger, write_aiger
from repro.aig.simulate import functionally_equal
from repro.errors import AigError
from repro.netlist.verilog_io import mapped_to_verilog, netlist_to_verilog
from repro.mapping import map_aig
from tests.conftest import build_random_netlist


class TestAiger:
    def test_roundtrip_equivalence(self, c432_quick):
        aig = aig_from_netlist(c432_quick)
        text = write_aiger(aig)
        parsed = parse_aiger(text)
        parsed.check()
        assert parsed.pi_names() == aig.pi_names()
        assert parsed.po_names() == aig.po_names()
        assert functionally_equal(aig, parsed)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_roundtrip_random(self, seed):
        aig = aig_from_netlist(build_random_netlist(seed=seed))
        assert functionally_equal(aig, parse_aiger(write_aiger(aig)))

    def test_header_counts(self, c432_quick):
        aig = aig_from_netlist(c432_quick)
        header = write_aiger(aig).splitlines()[0].split()
        assert header[0] == "aag"
        _m, i, l, o, a = (int(x) for x in header[1:6])
        assert i == aig.num_pis
        assert l == 0
        assert o == aig.num_pos
        assert a == len(aig.topological_ands(roots=aig.po_lits()))

    def test_rejects_garbage(self):
        with pytest.raises(AigError):
            parse_aiger("not aiger at all")

    def test_rejects_latches(self):
        with pytest.raises(AigError):
            parse_aiger("aag 1 0 1 0 0\n2 2\n")

    def test_constant_output(self):
        from repro.aig import Aig

        aig = Aig("c")
        aig.add_pi("a")
        aig.add_po(1, "one")
        parsed = parse_aiger(write_aiger(aig))
        assert parsed.po_lits() == [1]


class TestVerilog:
    def test_primitive_export_structure(self, tiny_netlist):
        text = netlist_to_verilog(tiny_netlist)
        assert text.startswith("module tiny (")
        assert "endmodule" in text
        assert "  input a;" in text
        assert "  output y;" in text
        assert "and " in text and "xor " in text

    def test_mux_and_constants(self):
        from repro.circuits import CircuitBuilder
        from repro.netlist.gates import GateType

        builder = CircuitBuilder("m")
        s = builder.input("s")
        a = builder.input("a")
        b = builder.input("b")
        builder.gate(GateType.MUX, s, a, b, out="y")
        builder.gate(GateType.CONST1, out="k")
        netlist = builder._netlist
        netlist.add_output("y")
        netlist.add_output("k")
        text = netlist_to_verilog(netlist)
        assert "assign y = s ? b : a;" in text
        assert "assign k = 1'b1;" in text

    def test_mapped_export(self, c432_quick):
        mapped = map_aig(aig_from_netlist(c432_quick))
        text = mapped_to_verilog(mapped)
        assert f"module {c432_quick.name}" in text
        # Every instance appears with its cell name.
        for inst in mapped.instances[:5]:
            assert inst.cell_name in text

    def test_escaping(self):
        from repro.netlist.netlist import Netlist
        from repro.netlist.gates import GateType

        netlist = Netlist("esc")
        netlist.add_input("weird$net")
        netlist.add_gate("y", GateType.BUF, ("weird$net",))
        netlist.add_output("y")
        text = netlist_to_verilog(netlist)
        assert "\\weird$net " in text
