"""Tests for ISOP covers and algebraic factoring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.factor import FNode, factor_sop
from repro.synth.isop import (
    cube_literal_count,
    cube_table,
    isop,
    sop_table,
)
from repro.utils.truth import TruthTable


def tables(max_vars=5):
    return st.integers(min_value=0, max_value=max_vars).flatmap(
        lambda n: st.integers(min_value=0, max_value=(1 << (1 << n)) - 1).map(
            lambda bits: TruthTable(bits, n)
        )
    )


def eval_fnode(node: FNode, assignment) -> int:
    if node.kind == "const":
        return int(node.value)
    if node.kind == "lit":
        value = assignment[node.var]
        return value ^ int(node.negated)
    child_values = [eval_fnode(c, assignment) for c in node.children]
    if node.kind == "and":
        return int(all(child_values))
    if node.kind == "or":
        return int(any(child_values))
    if node.kind == "xor":
        acc = 0
        for value in child_values:
            acc ^= value
        return acc
    raise AssertionError(node.kind)


class TestIsop:
    def test_constants(self):
        assert isop(TruthTable.const(False, 2)) == []
        assert isop(TruthTable.const(True, 2)) == [(0, 0)]

    def test_single_variable(self):
        cubes = isop(TruthTable.var(0, 2))
        assert cubes == [(1, 0)]

    def test_and(self):
        f = TruthTable.var(0, 2) & TruthTable.var(1, 2)
        assert isop(f) == [(0b11, 0)]

    @given(tables())
    @settings(max_examples=120, deadline=None)
    def test_cover_is_exact(self, t):
        cubes = isop(t)
        assert sop_table(cubes, t.nvars).bits == t.bits

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_cover_is_irredundant(self, t):
        cubes = isop(t)
        # Dropping any cube must lose some minterm.
        for index in range(len(cubes)):
            reduced = cubes[:index] + cubes[index + 1:]
            assert sop_table(reduced, t.nvars).bits != t.bits

    def test_parity_cover_size(self):
        # XOR of 3 variables needs all 4 odd-parity cubes.
        f = (
            TruthTable.var(0, 3)
            ^ TruthTable.var(1, 3)
            ^ TruthTable.var(2, 3)
        )
        assert len(isop(f)) == 4

    def test_cube_table(self):
        cube = (0b01, 0b10)  # x0 & ~x1
        t = cube_table(cube, 2)
        assert t.bits == 0b0010

    def test_literal_count(self):
        assert cube_literal_count([(0b11, 0), (0, 0b1)]) == 3


class TestFactor:
    @given(tables(max_vars=4))
    @settings(max_examples=100, deadline=None)
    def test_factored_form_is_equivalent(self, t):
        tree = factor_sop(isop(t))
        for minterm in range(1 << t.nvars):
            assignment = [(minterm >> i) & 1 for i in range(t.nvars)]
            assert eval_fnode(tree, assignment) == t.evaluate(assignment)

    def test_factoring_shares_literals(self):
        # f = a b + a c should factor as a (b + c): 3 literals, not 4.
        cubes = [(0b011, 0), (0b101, 0)]
        tree = factor_sop(cubes)
        assert tree.num_literals() == 3

    def test_constants(self):
        assert factor_sop([]).kind == "const"
        assert factor_sop([(0, 0)]).value is True

    def test_rename(self):
        tree = factor_sop([(0b11, 0)])
        renamed = tree.rename({0: 5, 1: 7})
        vars_seen = set()

        def collect(node):
            if node.kind == "lit":
                vars_seen.add(node.var)
            for child in node.children:
                collect(child)

        collect(renamed)
        assert vars_seen == {5, 7}
