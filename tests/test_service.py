"""Job daemon: state machine, event-log store, supervision, HTTP API.

The supervision tests run a real worker pool over tiny c432 specs; the
chaos cases (SIGKILL mid-stage, SIGSTOP watchdog) use the documented
``stage_delay_s`` job option to hold each stage open long enough to hit
a deterministic kill window.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.cli import main
from repro.errors import JobStateError, ServiceError, SpecError
from repro.pipeline.spec import ExperimentSpec
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobSpec,
    JobStore,
    Service,
    ServiceClient,
    Supervisor,
    check_transition,
)

SMALL_SPEC = {
    "name": "svc-test",
    "benchmarks": [{"name": "c432"}],
    "lock": {"locker": "rll", "key_size": 4},
    "synth": {"recipe": "none"},
    "attacks": [{"name": "scope"}],
}


def small_job(name: str = "", **options) -> JobSpec:
    return JobSpec(
        experiment=ExperimentSpec.from_dict(SMALL_SPEC),
        name=name,
        options=options,
    )


def wait_for(predicate, timeout_s: float = 90.0, poll_s: float = 0.05):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll_s)
    raise AssertionError(f"timed out after {timeout_s}s waiting")


class TestStateMachine:
    def test_legal_edges(self):
        check_transition(QUEUED, RUNNING)
        check_transition(QUEUED, CANCELLED)
        check_transition(RUNNING, DONE)
        check_transition(RUNNING, FAILED)
        check_transition(RUNNING, CANCELLED)
        check_transition(RUNNING, QUEUED)  # the requeue edge

    @pytest.mark.parametrize(
        "current,new",
        [
            (QUEUED, DONE),            # must pass through RUNNING
            (QUEUED, FAILED),
            (DONE, RUNNING),           # terminal states have no exits
            (DONE, QUEUED),
            (FAILED, RUNNING),
            (CANCELLED, QUEUED),
            (CANCELLED, DONE),
            (RUNNING, RUNNING),        # no self-loops
        ],
    )
    def test_illegal_edges_raise(self, current, new):
        with pytest.raises(JobStateError):
            check_transition(current, new)

    def test_unknown_states_raise(self):
        with pytest.raises(JobStateError):
            check_transition("sleeping", RUNNING)
        with pytest.raises(JobStateError):
            check_transition(QUEUED, "paused")

    def test_record_attempts_count_dispatches(self):
        record = JobRecord(id="j1", spec={})
        record.transition(RUNNING, worker="w0", worker_pid=123, t=1.0)
        assert (record.attempts, record.worker) == (1, "w0")
        record.transition(QUEUED, t=2.0)  # crash requeue
        record.transition(RUNNING, worker="w1", worker_pid=456, t=3.0)
        assert (record.attempts, record.worker) == (2, "w1")

    def test_result_only_with_done(self):
        record = JobRecord(id="j1", spec={}, state=RUNNING)
        with pytest.raises(JobStateError):
            record.transition(FAILED, result={"cells": []}, t=1.0)

    def test_terminal_property(self):
        assert JobRecord(id="a", spec={}, state=DONE).terminal
        assert not JobRecord(id="a", spec={}, state=RUNNING).terminal


class TestJobSpec:
    def test_name_defaults_to_experiment(self):
        assert small_job().name == "svc-test"
        assert small_job(name="override").name == "override"

    def test_round_trip(self):
        job = small_job(jobs=2, stage_delay_s=0.5)
        again = JobSpec.from_dict(job.to_dict())
        assert again.to_dict() == job.to_dict()

    @pytest.mark.parametrize(
        "options",
        [
            {"retries": 3},            # unknown option
            {"jobs": "two"},           # wrong type
            {"jobs": True},            # bool is not a count
            {"jobs": 0},               # below minimum
            {"stage_delay_s": -1.0},   # negative delay
        ],
    )
    def test_bad_options_rejected(self, options):
        with pytest.raises(SpecError):
            small_job(**options)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown job field"):
            JobSpec.from_dict({"spec": SMALL_SPEC, "priority": 7})
        with pytest.raises(SpecError, match="missing 'spec'"):
            JobSpec.from_dict({"name": "x"})

    def test_malformed_experiment_rejected(self):
        with pytest.raises(SpecError):
            JobSpec.from_dict({"spec": {"benchmarks": "c432"}})


class TestJobStore:
    def test_submit_is_durable_and_replayable(self, tmp_path):
        with JobStore(tmp_path / "state") as store:
            record = store.submit(small_job())
            store.transition(
                record.id, RUNNING, worker="w0", worker_pid=99
            )
            store.progress(record.id, {"stage": "lock", "cached": False})
            store.transition(
                record.id, DONE, result={"cells": [], "name": "svc-test"}
            )
        with JobStore(tmp_path / "state") as again:
            replayed = again.get(record.id)
            assert replayed.state == DONE
            assert replayed.attempts == 1
            assert replayed.worker == "w0"
            assert replayed.result["name"] == "svc-test"
            assert replayed.progress == [
                {"stage": "lock", "cached": False}
            ]

    def test_replay_tolerates_torn_tail(self, tmp_path):
        with JobStore(tmp_path / "state") as store:
            record = store.submit(small_job())
        log = tmp_path / "state" / "events.jsonl"
        with open(log, "a") as handle:
            handle.write('{"event": "job.state", "id": "' )  # torn line
        with JobStore(tmp_path / "state") as again:
            assert again.get(record.id).state == QUEUED
            # And the store keeps appending cleanly after the torn line.
            again.transition(record.id, CANCELLED)
        with JobStore(tmp_path / "state") as third:
            assert third.get(record.id).state == CANCELLED

    def test_recover_demotes_running(self, tmp_path):
        with JobStore(tmp_path / "state") as store:
            record = store.submit(small_job())
            store.transition(record.id, RUNNING, worker="w0")
        # Simulated daemon kill: new store over the same dir.
        with JobStore(tmp_path / "state") as again:
            assert again.get(record.id).state == RUNNING
            assert again.recover() == [record.id]
            assert again.get(record.id).state == QUEUED
            assert again.queued()[0].id == record.id

    def test_illegal_transition_never_reaches_the_log(self, tmp_path):
        with JobStore(tmp_path / "state") as store:
            record = store.submit(small_job())
            lines = len(store.log_path.read_text().splitlines())
            with pytest.raises(JobStateError):
                store.transition(record.id, DONE)  # queued -> done
            assert (
                len(store.log_path.read_text().splitlines()) == lines
            )

    def test_progress_dropped_once_terminal(self, tmp_path):
        with JobStore(tmp_path / "state") as store:
            record = store.submit(small_job())
            store.transition(record.id, CANCELLED)
            store.progress(record.id, {"stage": "late-straggler"})
            assert store.get(record.id).progress == []

    def test_unknown_job_and_missing_result(self, tmp_path):
        with JobStore(tmp_path / "state") as store:
            with pytest.raises(JobStateError, match="unknown job"):
                store.get("nope")
            record = store.submit(small_job())
            with pytest.raises(ServiceError, match="no result"):
                store.result(record.id)


class TestSupervisor:
    def test_job_runs_to_done(self, tmp_path):
        store = JobStore(tmp_path / "state")
        record = store.submit(small_job())
        with Supervisor(
            store, workers=1, cache_root=tmp_path / "cache"
        ):
            wait_for(lambda: store.get(record.id).terminal)
        final = store.get(record.id)
        assert final.state == DONE
        assert final.attempts == 1
        assert final.result["cells"][0]["benchmark"] == "c432"
        # Per-stage progress streamed up with cell labels attached.
        stages = [entry["stage"] for entry in final.progress]
        assert "lock" in stages and "attack" in stages
        assert final.progress[0]["benchmark"] == "c432"
        store.close()

    def test_worker_crash_requeues_and_resumes_from_cache(self, tmp_path):
        """SIGKILL mid-stage: the retry completes with stage-cache hits."""
        store = JobStore(tmp_path / "state")
        record = store.submit(small_job(stage_delay_s=0.4))
        with Supervisor(
            store, workers=1, cache_root=tmp_path / "cache",
            poll_s=0.05,
        ):
            # Let the first attempt finish a couple of stages, then kill
            # the worker out from under it.
            wait_for(
                lambda: store.get(record.id).state == RUNNING
                and len(store.get(record.id).progress) >= 2
            )
            os.kill(store.get(record.id).worker_pid, signal.SIGKILL)
            wait_for(lambda: store.get(record.id).terminal)
        final = store.get(record.id)
        assert final.state == DONE
        assert final.attempts == 2
        # The completed stages of attempt 1 were artifact-cache hits.
        assert final.result["cache"]["hits"] > 0
        store.close()

    @pytest.mark.slow
    def test_crash_loop_turns_into_failed(self, tmp_path):
        store = JobStore(tmp_path / "state")
        record = store.submit(small_job(stage_delay_s=0.4))
        with Supervisor(
            store, workers=1, cache_root=tmp_path / "cache",
            poll_s=0.05, max_attempts=1,
        ):
            wait_for(lambda: store.get(record.id).state == RUNNING)
            wait_for(lambda: len(store.get(record.id).progress) >= 1)
            os.kill(store.get(record.id).worker_pid, signal.SIGKILL)
            wait_for(lambda: store.get(record.id).terminal)
        final = store.get(record.id)
        assert final.state == FAILED
        assert "worker died" in final.error
        store.close()

    @pytest.mark.slow
    def test_watchdog_kills_silent_worker(self, tmp_path):
        """SIGSTOP freezes heartbeats; the watchdog reaps, the job
        completes on a fresh worker."""
        store = JobStore(tmp_path / "state")
        record = store.submit(small_job(stage_delay_s=0.4))
        with Supervisor(
            store, workers=1, cache_root=tmp_path / "cache",
            poll_s=0.05, watchdog_s=1.5, heartbeat_s=0.2,
        ) as sup:
            wait_for(lambda: store.get(record.id).state == RUNNING)
            pid = store.get(record.id).worker_pid
            os.kill(pid, signal.SIGSTOP)
            wait_for(lambda: store.get(record.id).terminal, timeout_s=120)
            health = sup.health()
            assert health["jobs"][DONE] == 1
        assert store.get(record.id).state == DONE
        assert store.get(record.id).attempts == 2
        store.close()

    def test_cancel_queued_job_never_runs(self, tmp_path):
        store = JobStore(tmp_path / "state")
        # Two jobs on one worker: cancel the second while it queues.
        first = store.submit(small_job(stage_delay_s=0.3))
        second = store.submit(small_job())
        store.transition(second.id, CANCELLED, reason="test")
        with Supervisor(
            store, workers=1, cache_root=tmp_path / "cache",
            poll_s=0.05,
        ):
            wait_for(lambda: store.get(first.id).terminal)
        assert store.get(first.id).state == DONE
        assert store.get(second.id).state == CANCELLED
        assert store.get(second.id).attempts == 0
        store.close()

    def test_daemon_restart_resumes_without_losing_jobs(self, tmp_path):
        """Kill the daemon (well: drop the supervisor mid-run), reopen the
        state dir, and the job still completes — zero accepted-job loss."""
        store = JobStore(tmp_path / "state")
        record = store.submit(small_job(stage_delay_s=0.4))
        supervisor = Supervisor(
            store, workers=1, cache_root=tmp_path / "cache", poll_s=0.05
        )
        supervisor.start()
        wait_for(lambda: store.get(record.id).state == RUNNING)
        supervisor.stop()  # graceful: requeues the in-flight job
        assert store.get(record.id).state == QUEUED
        store.close()
        # "Restart": fresh store replays the log, recover() + run to DONE.
        store2 = JobStore(tmp_path / "state")
        assert store2.get(record.id).state == QUEUED
        with Supervisor(
            store2, workers=1, cache_root=tmp_path / "cache",
        ):
            wait_for(lambda: store2.get(record.id).terminal)
        assert store2.get(record.id).state == DONE
        store2.close()


@pytest.fixture(scope="module")
def live_service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("service")
    service = Service(
        state_dir=tmp / "state", port=0, workers=1,
        cache_root=tmp / "cache",
    )
    with service:
        yield service


class TestHttpApi:
    def test_healthz_and_metrics(self, live_service):
        client = ServiceClient(port=live_service.port)
        health = client.healthz()
        assert health["status"] == "ok"
        assert len(health["workers"]) == 1
        assert "service.workers" in client.metrics()

    def test_submit_wait_events(self, live_service):
        client = ServiceClient(port=live_service.port)
        job = client.submit(SMALL_SPEC, name="api-job")
        assert job["state"] == QUEUED
        final = client.wait(job["id"], timeout_s=120)
        assert final["state"] == DONE
        assert final["result"]["cells"][0]["attack"] == "scope"
        kinds = [event["event"] for event in client.events(job["id"])]
        assert kinds[0] == "job.submitted"
        assert "job.progress" in kinds
        assert kinds[-1] == "job.state"
        summaries = client.jobs()
        assert any(row["id"] == job["id"] for row in summaries)
        metrics = client.metrics()
        assert metrics["service.jobs_submitted"] >= 1
        assert metrics["service.jobs_completed"] >= 1

    def test_bad_submission_is_400_and_never_accepted(self, live_service):
        client = ServiceClient(port=live_service.port)
        before = len(client.jobs())
        with pytest.raises(ServiceError, match="400"):
            client.submit({"benchmarks": "oops"})
        with pytest.raises(ServiceError, match="400"):
            client._request("POST", "/jobs", None)  # empty body
        assert len(client.jobs()) == before

    def test_unknown_job_is_404(self, live_service):
        client = ServiceClient(port=live_service.port)
        with pytest.raises(ServiceError, match="404"):
            client.job("doesnotexist")
        with pytest.raises(ServiceError, match="404"):
            client._request("GET", "/nosuchroute")

    def test_cancel_terminal_job_is_409(self, live_service):
        client = ServiceClient(port=live_service.port)
        job = client.submit(SMALL_SPEC, name="done-then-cancel")
        client.wait(job["id"], timeout_s=120)
        with pytest.raises(ServiceError, match="409"):
            client.cancel(job["id"])

    def test_cancel_queued_job(self, live_service):
        client = ServiceClient(port=live_service.port)
        # stage_delay keeps the worker busy so the next job stays queued
        # long enough to cancel.
        busy = client.submit(SMALL_SPEC, options={"stage_delay_s": 0.3})
        victim = client.submit(SMALL_SPEC, name="to-cancel")
        cancelled = client.cancel(victim["id"])
        assert cancelled["id"] == victim["id"]
        assert client.job(victim["id"])["state"] == CANCELLED
        client.wait(busy["id"], timeout_s=120)

    def test_cli_submit_jobs_cancel(self, live_service, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SMALL_SPEC))
        port = str(live_service.port)
        assert main(["submit", str(spec_path), "--port", port,
                     "--wait", "--name", "cli-job"]) == 0
        out = capsys.readouterr().out
        assert "submitted job" in out
        assert "done" in out
        assert "c432" in out  # the result table
        assert main(["jobs", "--port", port]) == 0
        out = capsys.readouterr().out
        assert "cli-job" in out
        # Cancelling the (terminal) job maps the 409 onto CLI exit 2.
        client = ServiceClient(port=live_service.port)
        job_id = next(
            row["id"] for row in client.jobs()
            if row["name"] == "cli-job"
        )
        assert main(["cancel", job_id, "--port", port]) == 2

    def test_cli_against_dead_daemon(self, capsys):
        assert main(["jobs", "--port", "1"]) == 2
        assert "cannot reach job daemon" in capsys.readouterr().err
