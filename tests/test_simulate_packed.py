"""Property tests: the packed uint64-lane AIG backend is bit-identical
to the integer-word reference (:func:`simulate_words`).

The packed backend masks tail bits only at extraction and flips whole
lanes on complement, so the dangerous widths are the non-multiples of 64
(garbage tail bits in-flight) and width < 64 (a single partial lane).
Every test here forces ``backend=`` explicitly — the ``auto`` threshold
(:data:`PACKED_MIN_WIDTH`) would otherwise route these small widths to
the integer path and the assertions would compare it to itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aig import aig_from_netlist
from repro.aig.simulate import (
    cut_truth_table,
    exhaustive_signatures,
    functionally_equal,
    lanes_to_word,
    output_truth_tables,
    po_words,
    random_signatures,
    simulate_packed,
    simulate_words,
    word_to_lanes,
)
from repro.circuits import available_benchmarks, load_iscas85
from repro.utils.rng import make_rng

from tests.conftest import build_random_netlist

# 1 and 63: single partial lane.  64: exactly one lane.  65 and 100:
# partial tail lane.  256: multiple exact lanes.  331: multiple lanes
# with a tail.
WIDTHS = (1, 63, 64, 65, 100, 256, 331)


def random_stimulus(aig, width: int, seed: int) -> dict[int, int]:
    rng = make_rng(seed)
    mask = (1 << width) - 1
    return {
        var: int.from_bytes(rng.bytes((width + 7) // 8), "big") & mask
        for var in aig.pi_vars()
    }


def assert_backends_identical(aig, width: int, seed: int) -> None:
    stimulus = random_stimulus(aig, width, seed)
    reference = simulate_words(aig, stimulus, width)
    packed = simulate_packed(aig, stimulus, width)
    assert packed == reference
    assert po_words(aig, packed, width) == po_words(aig, reference, width)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("width", WIDTHS)
def test_packed_matches_reference_on_random_aigs(seed, width):
    netlist = build_random_netlist(
        num_inputs=5 + seed % 3, num_gates=20 + 5 * seed, seed=seed
    )
    assert_backends_identical(aig_from_netlist(netlist), width, seed)


@pytest.mark.parametrize("name", available_benchmarks())
def test_packed_matches_reference_on_iscas85(name):
    aig = aig_from_netlist(load_iscas85(name, scale="quick"))
    for width in (64, 100):
        assert_backends_identical(aig, width, seed=7)


@pytest.mark.slow
@pytest.mark.parametrize("name", available_benchmarks())
@pytest.mark.parametrize("seed", range(3))
def test_packed_matches_reference_on_iscas85_seed_sweep(name, seed):
    aig = aig_from_netlist(load_iscas85(name, scale="quick", seed=seed))
    for width in WIDTHS:
        assert_backends_identical(aig, width, seed=seed)


@pytest.mark.parametrize("width", WIDTHS)
def test_lanes_round_trip(width):
    rng = make_rng(width)
    for _ in range(8):
        word = int.from_bytes(rng.bytes((width + 7) // 8), "big") & (
            (1 << width) - 1
        )
        lanes = word_to_lanes(word, width)
        assert lanes.dtype == np.uint64
        assert lanes_to_word(lanes, width) == word


def test_lanes_to_word_masks_garbage_tail():
    # In-flight lanes legitimately carry garbage above `width`; extraction
    # must zero it without mutating the caller's array.
    lanes = np.array([np.uint64(0xFFFF_FFFF_FFFF_FFFF)], dtype=np.uint64)
    assert lanes_to_word(lanes, 4) == 0xF
    assert lanes[0] == np.uint64(0xFFFF_FFFF_FFFF_FFFF)


@pytest.mark.parametrize("seed", range(4))
def test_random_signatures_backend_invariant(seed):
    aig = aig_from_netlist(build_random_netlist(seed=seed))
    for width in (63, 128, 200):
        packed = random_signatures(aig, width=width, seed=seed, backend="packed")
        ints = random_signatures(aig, width=width, seed=seed, backend="int")
        assert packed == ints


@pytest.mark.parametrize("seed", range(4))
def test_exhaustive_signatures_backend_invariant(seed):
    aig = aig_from_netlist(build_random_netlist(num_inputs=5, seed=seed))
    assert exhaustive_signatures(aig, backend="packed") == exhaustive_signatures(
        aig, backend="int"
    )


@pytest.mark.parametrize("seed", range(4))
def test_cut_truth_table_agrees_with_packed_exhaustive(seed):
    # The PI cut of each PO cone reduces cut_truth_table to the full PO
    # truth table, which output_truth_tables derives via exhaustive
    # signatures — cross-checking the cut simulator against both backends.
    aig = aig_from_netlist(build_random_netlist(num_inputs=5, seed=seed))
    leaves = aig.pi_vars()
    tables = output_truth_tables(aig)
    for po, expected in zip(aig.po_lits(), tables):
        assert cut_truth_table(aig, po, leaves).bits == expected.bits


@pytest.mark.parametrize("seed", range(3))
def test_functionally_equal_backend_invariant(seed):
    base = aig_from_netlist(build_random_netlist(num_inputs=5, seed=seed))
    same = aig_from_netlist(build_random_netlist(num_inputs=5, seed=seed))
    other = aig_from_netlist(build_random_netlist(num_inputs=5, seed=seed + 50))
    for first, second in ((base, same), (base, other)):
        int_verdict = functionally_equal(first, second, backend="int")
        assert functionally_equal(first, second, backend="packed") == int_verdict
