"""Shared fixtures: small circuits, locked designs, random-netlist helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import CircuitBuilder, load_iscas85
from repro.locking import lock_rll
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.utils.rng import make_rng


def build_random_netlist(
    num_inputs: int = 6, num_gates: int = 25, num_outputs: int = 3, seed: int = 0
) -> Netlist:
    """A deterministic random DAG netlist (used by property-style tests)."""
    rng = make_rng(seed)
    builder = CircuitBuilder(f"rand{seed}")
    nets = builder.inputs("x", num_inputs)
    ops = [
        builder.and_, builder.nand, builder.or_, builder.nor,
        builder.xor, builder.xnor,
    ]
    produced = []
    for index in range(num_gates):
        if rng.random() < 0.15:
            net = builder.not_(nets[int(rng.integers(len(nets)))])
        else:
            op = ops[int(rng.integers(len(ops)))]
            i = int(rng.integers(len(nets)))
            j = int(rng.integers(len(nets)))
            if i == j:
                j = (j + 1) % len(nets)
            net = op(nets[i], nets[j])
        nets.append(net)
        produced.append(net)
    for index in range(num_outputs):
        builder.output(produced[-(index + 1)])
    return builder.build()


@pytest.fixture(scope="session")
def c432_quick() -> Netlist:
    return load_iscas85("c432", scale="quick")


@pytest.fixture(scope="session")
def c880_quick() -> Netlist:
    return load_iscas85("c880", scale="quick")


@pytest.fixture(scope="session")
def locked_c432(c432_quick):
    return lock_rll(c432_quick, key_size=8, seed=42)


@pytest.fixture()
def tiny_netlist() -> Netlist:
    """y = (a AND b) XOR c; z = NOT(a)."""
    builder = CircuitBuilder("tiny")
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    ab = builder.and_(a, b)
    builder.output(builder.xor(ab, c), name="y")
    builder.output(builder.not_(a), name="z")
    return builder.build()
