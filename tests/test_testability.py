"""Tests for the stuck-at fault substrate."""

import numpy as np
import pytest

from repro.circuits import CircuitBuilder
from repro.errors import NetlistError
from repro.netlist.simulate import exhaustive_patterns
from repro.testability import (
    Fault,
    collapse_faults,
    enumerate_faults,
    fault_simulate,
)


def _and_chain():
    builder = CircuitBuilder("chain")
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    ab = builder.and_(a, b)
    builder.output(builder.and_(ab, c), name="y")
    return builder.build()


class TestEnumeration:
    def test_both_polarities(self, tiny_netlist):
        faults = enumerate_faults(tiny_netlist)
        nets = tiny_netlist.all_nets()
        assert len(faults) == 2 * len(nets)
        assert Fault(nets[0], 0) in faults
        assert Fault(nets[0], 1) in faults

    def test_subset(self, tiny_netlist):
        faults = enumerate_faults(tiny_netlist, nets=["a"])
        assert faults == [Fault("a", 0), Fault("a", 1)]

    def test_str(self):
        assert str(Fault("n1", 1)) == "n1/sa1"


class TestCollapsing:
    def test_buffer_chain_collapses(self):
        builder = CircuitBuilder("bufs")
        a = builder.input("a")
        b1 = builder.buf(a)
        builder.output(builder.buf(b1), name="y")
        netlist = builder.build()
        faults = enumerate_faults(netlist)
        collapsed = collapse_faults(netlist, faults)
        assert len(collapsed) < len(faults)

    def test_inverter_polarity(self):
        builder = CircuitBuilder("inv")
        a = builder.input("a")
        builder.output(builder.not_(a), name="y")
        netlist = builder.build()
        faults = enumerate_faults(netlist)
        collapsed = collapse_faults(netlist, faults)
        # a/sa0 ~ not/sa1 and a/sa1 ~ not/sa0: the NOT-side faults drop.
        nets = {f.net for f in collapsed}
        assert "a" in nets


class TestFaultSimulation:
    def test_fully_testable_chain(self):
        netlist = _and_chain()
        faults = enumerate_faults(netlist)
        result = fault_simulate(
            netlist, faults, patterns=exhaustive_patterns(3)
        )
        assert result.undetected == []
        assert result.coverage == 1.0

    def test_untestable_fault_found(self):
        # y = a & ~a is constant 0: the sa0 fault on y is untestable.
        builder = CircuitBuilder("red")
        a = builder.input("a")
        na = builder.not_(a)
        builder.output(builder.and_(a, na), name="y")
        netlist = builder.build()
        result = fault_simulate(
            netlist,
            [Fault("y", 0), Fault("y", 1)],
            patterns=exhaustive_patterns(1),
        )
        undetected = {str(f) for f in result.undetected}
        assert "y/sa0" in undetected
        assert "y/sa1" not in undetected

    def test_input_fault_detected(self):
        netlist = _and_chain()
        result = fault_simulate(
            netlist, [Fault("a", 0)], patterns=exhaustive_patterns(3)
        )
        assert len(result.detected) == 1

    def test_unknown_net_rejected(self, tiny_netlist):
        with pytest.raises(NetlistError):
            fault_simulate(tiny_netlist, [Fault("ghost", 0)])

    def test_random_patterns_detect_most(self, c432_quick):
        faults = enumerate_faults(
            c432_quick, nets=[g.output for g in c432_quick.gates[:20]]
        )
        result = fault_simulate(c432_quick, faults, num_patterns=256, seed=1)
        assert result.coverage > 0.6

    def test_matches_brute_force(self):
        """Event-driven result equals full faulty-circuit resimulation."""
        from repro.netlist.simulate import simulate_patterns
        from tests.conftest import build_random_netlist

        netlist = build_random_netlist(seed=12, num_gates=15)
        patterns = exhaustive_patterns(len(netlist.inputs))[:64]
        golden = simulate_patterns(netlist, patterns)
        internal = [g.output for g in netlist.gates if g.output not in netlist.outputs]
        faults = enumerate_faults(netlist, nets=internal[:8])
        result = fault_simulate(netlist, faults, patterns=patterns)
        detected = {str(f) for f in result.detected}
        for fault in faults:
            # Brute force: rebuild with the net replaced by a constant.
            from repro.attacks.redundancy import _tie_input
            from repro.netlist.gates import GateType
            from repro.netlist.netlist import Netlist

            forced = Netlist(name="f")
            forced.inputs = list(netlist.inputs)
            renamed = f"{fault.net}__orig"
            for gate in netlist.gates:
                out = renamed if gate.output == fault.net else gate.output
                forced.gates.append(type(gate)(out, gate.gate_type, gate.inputs))
            forced.add_gate(
                fault.net,
                GateType.CONST1 if fault.stuck_at else GateType.CONST0,
                (),
            )
            forced.outputs = list(netlist.outputs)
            outputs = simulate_patterns(forced, patterns, input_order=netlist.inputs)
            brute_detected = bool((outputs != golden).any())
            assert brute_detected == (str(fault) in detected), str(fault)
