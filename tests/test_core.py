"""Tests for the ALMOST core: SA, proxy models, adversarial training, defense."""

import math

import pytest

from repro.core import (
    AlmostConfig,
    AlmostDefense,
    ProxyConfig,
    SaConfig,
    simulated_annealing,
    train_adversarial_attack,
)
from repro.core.adversarial import AdversarialConfig
from repro.core.proxy import (
    build_random_proxy,
    build_resyn2_proxy,
    evaluate_on_recipe_set,
)
from repro.locking import lock_rll
from repro.synth import RESYN2, Recipe, random_recipe


class TestSimulatedAnnealing:
    def test_minimizes_quadratic(self):
        result = simulated_annealing(
            10.0,
            energy_fn=lambda x: (x - 3.0) ** 2,
            neighbour_fn=lambda x, rng: x + rng.normal(0, 1.0),
            config=SaConfig(iterations=300, t_initial=5.0, seed=1),
        )
        assert abs(result.best_state - 3.0) < 0.5

    def test_trace_structure(self):
        result = simulated_annealing(
            0.0,
            energy_fn=lambda x: abs(x),
            neighbour_fn=lambda x, rng: x + rng.normal(),
            config=SaConfig(iterations=10, seed=2),
            trace_fn=lambda state, energy: {"state": state},
        )
        assert len(result.trace) == 11  # initial + 10 iterations
        assert {"iteration", "energy", "best_energy", "state"} <= set(
            result.trace[0]
        )

    def test_stop_energy_short_circuits(self):
        result = simulated_annealing(
            100.0,
            energy_fn=lambda x: abs(x),
            neighbour_fn=lambda x, rng: x / 2,
            config=SaConfig(iterations=100, seed=3),
            stop_energy=1.0,
        )
        assert len(result.trace) < 101
        assert result.best_energy <= 1.0

    def test_deterministic(self):
        def run():
            return simulated_annealing(
                5.0,
                energy_fn=lambda x: x * x,
                neighbour_fn=lambda x, rng: x + rng.normal(),
                config=SaConfig(iterations=50, seed=9),
            ).best_state

        assert run() == run()

    def test_accepts_worse_moves_at_high_temperature(self):
        # With huge T, the walk should wander to worse states sometimes.
        states = []
        simulated_annealing(
            0.0,
            energy_fn=lambda x: abs(x),
            neighbour_fn=lambda x, rng: x + 1.0,
            config=SaConfig(iterations=20, t_initial=1e9, seed=4),
            trace_fn=lambda s, e: states.append(s) or {},
        )
        assert max(states) > 0.0


@pytest.fixture(scope="module")
def tiny_locked():
    from repro.circuits import load_iscas85

    netlist = load_iscas85("c432", scale="quick")
    return lock_rll(netlist, key_size=8, seed=33)


_TINY = ProxyConfig(
    num_samples=16, epochs=4, relock_key_bits=8, num_random_recipes=2, seed=3
)


class TestProxyModels:
    def test_resyn2_proxy(self, tiny_locked):
        proxy = build_resyn2_proxy(tiny_locked, _TINY)
        accuracy = proxy.predicted_accuracy(RESYN2)
        assert 0.0 <= accuracy <= 1.0
        assert proxy.name == "M_resyn2"

    def test_cache_hit(self, tiny_locked):
        proxy = build_resyn2_proxy(tiny_locked, _TINY)
        first = proxy.predicted_accuracy(RESYN2)
        assert proxy.predicted_accuracy(RESYN2) == first
        # Memo entries are keyed on the full step tuple, not the short
        # rendering (collision-proof by construction).
        assert RESYN2.steps in proxy._cache

    def test_random_proxy(self, tiny_locked):
        proxy = build_random_proxy(tiny_locked, _TINY)
        assert proxy.name == "M_random"
        recipes = [random_recipe(10, seed=i) for i in range(2)]
        accuracies = evaluate_on_recipe_set(proxy, recipes)
        assert len(accuracies) == 2

    def test_adversarial_proxy(self, tiny_locked):
        proxy = train_adversarial_attack(
            tiny_locked,
            _TINY,
            AdversarialConfig(
                period=2, augment_samples=8, sa_iterations=2, max_rounds=1
            ),
        )
        assert proxy.name == "M*"
        accuracy = proxy.predicted_accuracy(RESYN2)
        assert 0.0 <= accuracy <= 1.0
        # Adversarial augmentation must have grown the pool.
        assert len(proxy.attack.training_graphs) >= _TINY.num_samples

    def test_adversarial_synth_cache_is_exact(self, tiny_locked):
        """The per-(relock seed, prefix) cache must not change M* at all:
        same trained pool, same predictions, cached or not."""
        adv = dict(period=2, augment_samples=8, sa_iterations=2, max_rounds=1)
        cached = train_adversarial_attack(
            tiny_locked, _TINY, AdversarialConfig(cache_entries=256, **adv)
        )
        uncached = train_adversarial_attack(
            tiny_locked, _TINY, AdversarialConfig(cache_entries=0, **adv)
        )
        assert len(cached.attack.training_graphs) == len(
            uncached.attack.training_graphs
        )
        for recipe in (RESYN2, random_recipe(10, seed=21)):
            assert cached.predicted_accuracy(
                recipe
            ) == uncached.predicted_accuracy(recipe)

    def test_adversarial_energy_reuses_relock_snapshots(self, tiny_locked):
        """Re-evaluating one (recipe, relock seed) resumes from the full
        snapshot — zero new steps — and reproduces the localities exactly."""
        from repro.attacks.omla import OmlaAttack
        from repro.core.adversarial import _adversarial_energy
        from repro.core.proxy import _omla_config
        from repro.synth import SynthCache

        attack = OmlaAttack(RESYN2, _omla_config(_TINY, "cache-test"))
        data = attack.generate_training_data(
            tiny_locked.netlist, num_samples=8, recipes=[RESYN2], seed=1
        )
        attack.train(data)
        cache = SynthCache()
        recipe = random_recipe(10, seed=7)
        first_acc, first_graphs = _adversarial_energy(
            attack, tiny_locked, recipe, 8, seed=17, cache=cache
        )
        executed = cache.steps_executed
        assert executed == 10 and cache.steps_saved == 0
        second_acc, second_graphs = _adversarial_energy(
            attack, tiny_locked, recipe, 8, seed=17, cache=cache
        )
        assert cache.steps_executed == executed  # full-prefix resume
        assert cache.steps_saved == 10
        assert second_acc == first_acc
        assert len(second_graphs) == len(first_graphs)
        # A different relock seed is a different circuit: its own chain.
        _acc, _graphs = _adversarial_energy(
            attack, tiny_locked, recipe, 8, seed=18, cache=cache
        )
        assert cache.steps_executed == executed + 10


class TestAlmostDefense:
    def test_search_with_synthetic_evaluator(self):
        # Evaluator: accuracy = 0.5 + 0.05 * (#balance steps); SA should
        # remove balance steps to reach ~0.5.
        def evaluator(recipe: Recipe) -> float:
            return 0.5 + 0.05 * sum(1 for s in recipe if s == "balance")

        defense = AlmostDefense(
            evaluator,
            AlmostConfig(sa_iterations=60, seed=1, stop_margin=0.001),
        )
        result = defense.generate_recipe(initial=RESYN2)
        assert result.predicted_accuracy <= 0.55
        assert "balance" not in result.recipe.steps or (
            result.predicted_accuracy < 0.56
        )

    def test_trace_records_accuracy(self):
        defense = AlmostDefense(
            lambda recipe: 0.6, AlmostConfig(sa_iterations=5, seed=2)
        )
        result = defense.generate_recipe()
        trace = result.accuracy_trace()
        assert len(trace) == 6
        assert all(a == 0.6 for a in trace)

    def test_recipe_length_fixed(self):
        defense = AlmostDefense(
            lambda recipe: 0.5, AlmostConfig(recipe_length=10, sa_iterations=3, seed=4)
        )
        result = defense.generate_recipe()
        assert len(result.recipe) == 10

    def test_end_to_end_defense(self, tiny_locked):
        from repro.core.almost import defend

        proxy = build_resyn2_proxy(tiny_locked, _TINY)
        result, netlist, mapped = defend(
            tiny_locked, proxy, AlmostConfig(sa_iterations=3, seed=5)
        )
        # The shipped netlist keeps all key inputs and is a valid circuit.
        assert netlist.key_inputs == tiny_locked.netlist.key_inputs
        netlist.validate()
        assert mapped.num_cells() > 0
