"""Tests for the SAT-resilient defenses (Anti-SAT, SARLock, compounds),
the shared DipLoop core, and the AppSAT approximate attack."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.attacks import (
    ATTACK_REGISTRY,
    AppSatAttack,
    AppSatConfig,
    DipLoop,
    SatAttack,
    SatAttackConfig,
    get_attack,
    oracle_from_key,
)
from repro.circuits import CircuitBuilder
from repro.defenses import (
    POINT_FUNCTION_SCHEMES,
    compound,
    lock_antisat,
    lock_sarlock,
    lock_scheme,
    next_key_index,
)
from repro.errors import AttackError, LockingError
from repro.locking import Key, apply_key, lock_rll, oracle_outputs
from repro.netlist.simulate import exhaustive_patterns
from repro.sat import check_equivalence
from tests.conftest import build_random_netlist


def small_circuit(num_inputs: int = 4, seed: int = 0):
    return build_random_netlist(
        num_inputs=num_inputs, num_gates=12, num_outputs=2, seed=seed
    )


class TestAntiSat:
    def test_function_preserved_under_correct_key(self, c432_quick):
        """SAT-proven: the Anti-SAT block is silent under the correct key."""
        locked = lock_antisat(c432_quick, seed=3)
        assert len(locked.key) == 2 * len(c432_quick.inputs)
        unlocked = apply_key(locked.netlist, locked.key)
        assert check_equivalence(unlocked, c432_quick).equivalent

    def test_every_equal_half_key_is_correct(self):
        """Anti-SAT's correct keys are exactly the B||B pairs."""
        netlist = small_circuit(3)
        locked = lock_antisat(netlist, width=2, seed=1)
        for bits in itertools.product((0, 1), repeat=2):
            key = Key(bits + bits)
            unlocked = apply_key(locked.netlist, key)
            assert check_equivalence(unlocked, netlist).equivalent, bits

    def test_wrong_key_corrupts(self):
        netlist = small_circuit(4)
        locked = lock_antisat(netlist, width=4, seed=2)
        half = locked.key.bits[:4]
        other = tuple(1 - b for b in locked.key.bits[4:])
        wrong = Key(half + other)
        unlocked = apply_key(locked.netlist, wrong)
        assert not check_equivalence(unlocked, netlist).equivalent

    def test_mismatched_halves_rejected(self):
        netlist = small_circuit(4)
        with pytest.raises(LockingError, match="halves"):
            lock_antisat(netlist, width=2, key=Key((0, 1, 1, 0)))

    def test_partition_metadata(self, c432_quick):
        locked = lock_antisat(c432_quick, width=4, seed=5)
        assert [p.scheme for p in locked.partitions] == ["antisat"]
        assert locked.partitions[0].key_inputs == locked.key_input_names
        assert locked.partition_bits("antisat") == locked.key.bits

    def test_width_validation(self):
        netlist = small_circuit(3)
        with pytest.raises(LockingError, match="width"):
            lock_antisat(netlist, width=7)


class TestSarLock:
    def test_function_preserved_under_correct_key(self, c432_quick):
        """SAT-proven: the mask silences the block under the secret key."""
        locked = lock_sarlock(c432_quick, seed=4)
        assert len(locked.key) == len(c432_quick.inputs)
        unlocked = apply_key(locked.netlist, locked.key)
        assert check_equivalence(unlocked, c432_quick).equivalent

    def test_wrong_key_corrupts_exactly_one_minterm(self):
        """The SARLock contract: every wrong key errs on exactly X = K."""
        netlist = small_circuit(3, seed=5)
        locked = lock_sarlock(netlist, seed=6)
        width = len(netlist.inputs)
        patterns = exhaustive_patterns(width)
        correct = oracle_outputs(locked.netlist, locked.key, patterns)
        for bits in itertools.product((0, 1), repeat=width):
            key = Key(bits)
            if key.bits == locked.key.bits:
                continue
            outputs = oracle_outputs(locked.netlist, key, patterns)
            wrong_rows = np.flatnonzero((outputs != correct).any(axis=1))
            assert len(wrong_rows) == 1, bits
            # ... and the corrupted minterm is X = K, by construction.
            assert tuple(patterns[wrong_rows[0]]) == bits

    def test_key_is_unique(self):
        """Unlike Anti-SAT, exactly one key unlocks a SARLocked design."""
        netlist = small_circuit(3, seed=7)
        locked = lock_sarlock(netlist, seed=8)
        result = SatAttack().attack(locked)
        assert result.details["key_unique"] is True
        assert result.predicted_bits == locked.key.bits

    def test_explicit_key_is_honored(self):
        netlist = small_circuit(3)
        key = Key((1, 0, 1))
        locked = lock_sarlock(netlist, key=key)
        assert locked.key == key
        unlocked = apply_key(locked.netlist, key)
        assert check_equivalence(unlocked, netlist).equivalent


class TestCompound:
    def test_rll_plus_antisat_partitions_and_numbering(self, c432_quick):
        locked = lock_scheme(c432_quick, "rll+antisat", key_size=4, seed=9)
        assert [p.scheme for p in locked.partitions] == ["rll", "antisat"]
        assert len(locked.partitions[0]) == 4
        assert len(locked.partitions[1]) == 2 * len(c432_quick.inputs)
        # Key-input numbering continues across stages, so the concatenated
        # key bits line up with netlist.key_inputs order.
        assert list(locked.key_input_names) == locked.netlist.key_inputs
        assert locked.key_input_names[4] == "keyinput4"
        assert len(locked.key) == len(locked.key_input_names)

    def test_function_preserved(self, c432_quick):
        for scheme in ("rll+antisat", "rll+sarlock"):
            locked = lock_scheme(c432_quick, scheme, key_size=4, seed=10)
            unlocked = apply_key(locked.netlist, locked.key)
            assert check_equivalence(unlocked, c432_quick).equivalent, scheme

    def test_partition_bits_roundtrip(self, c432_quick):
        locked = lock_scheme(c432_quick, "rll+sarlock", key_size=4, seed=11)
        rll_bits = locked.partition_bits("rll")
        sar_bits = locked.partition_bits("sarlock")
        assert rll_bits + sar_bits == locked.key.bits
        with pytest.raises(LockingError):
            locked.partition_bits("antisat")

    def test_compound_requires_lockers(self, c432_quick):
        with pytest.raises(LockingError):
            compound(c432_quick)
        with pytest.raises(LockingError, match="scheme"):
            lock_scheme(c432_quick, "rll+telepathy")

    def test_next_key_index_continues(self, c432_quick):
        locked = lock_rll(c432_quick, key_size=3, seed=1)
        assert next_key_index(locked.netlist) == 3
        assert next_key_index(c432_quick) == 0


class TestDipLoopOnDefenses:
    def test_antisat_forces_exponential_dips(self):
        """Anti-SAT's DIP lower bound: each DIP kills one K1 group, so the
        loop needs at least 2^(k-1) iterations at block width k."""
        netlist = small_circuit(4, seed=12)
        for k in (2, 3):
            locked = lock_antisat(netlist, width=k, seed=k)
            result = SatAttack(
                SatAttackConfig(max_iterations=256)
            ).attack(locked)
            assert result.details["exact"], k
            assert result.details["iterations"] >= 2 ** (k - 1), (
                k, result.details["iterations"]
            )
            unlocked = apply_key(locked.netlist, Key(result.predicted_bits))
            assert check_equivalence(unlocked, netlist).equivalent

    def test_antisat_recovered_key_never_unique(self):
        """Every B||B key is correct, so the survivor can't be unique."""
        netlist = small_circuit(4, seed=13)
        locked = lock_antisat(netlist, width=3, seed=14)
        result = SatAttack().attack(locked)
        assert result.details["exact"]
        assert result.details["key_unique"] is False

    def test_dip_loop_unit(self, c432_quick):
        """Drive the DipLoop core directly, the way both attacks do."""
        locked = lock_rll(c432_quick, key_size=6, seed=15)
        oracle = oracle_from_key(locked.netlist, locked.key)
        loop = DipLoop(locked.netlist, oracle)
        while True:
            pattern = loop.find_dip()
            if pattern is None:
                break
            response = loop.observe(pattern)
            assert response.shape == (len(locked.netlist.outputs),)
        assert loop.iterations == len(loop.trace)
        assert loop.oracle_queries == loop.iterations
        predicted = loop.extract_key()
        assert predicted is not None
        unlocked = apply_key(locked.netlist, Key(predicted))
        assert check_equivalence(unlocked, c432_quick).equivalent
        details = loop.details()
        assert details["iterations"] == loop.iterations
        assert details["solver"]["propagations"] > 0

    def test_dip_loop_needs_key_inputs(self, c432_quick):
        with pytest.raises(AttackError):
            DipLoop(c432_quick, lambda p: p)


class TestBackendEquivalence:
    """The incremental solver backend is a pure optimization: with
    canonical (lex-min) DIP extraction it must replay the cold-start
    backend bit for bit — same DIP sequence, same iteration count, same
    recovered key — on the point-function defenses that stress the loop
    hardest."""

    @staticmethod
    def run_loop(locked, backend):
        oracle = oracle_from_key(locked.netlist, locked.key)
        loop = DipLoop(
            locked.netlist, oracle, backend=backend, canonical_dips=True
        )
        dips = []
        while True:
            pattern = loop.find_dip()
            if pattern is None:
                break
            dips.append(tuple(int(b) for b in pattern))
            loop.observe(pattern)
        return dips, loop.extract_key(), loop.iterations, loop.solver_stats()

    @pytest.mark.parametrize("defense", ["antisat", "sarlock"])
    def test_cold_and_incremental_replay_identically(self, defense):
        netlist = small_circuit(4, seed=21)
        if defense == "antisat":
            locked = lock_antisat(netlist, width=3, seed=22)
        else:
            locked = lock_sarlock(netlist, seed=22)
        cold = self.run_loop(locked, "cold")
        incremental = self.run_loop(locked, "incremental")
        assert incremental[0] == cold[0], "DIP sequences diverged"
        assert incremental[1] == cold[1], "recovered keys diverged"
        assert incremental[2] == cold[2], "iteration counts diverged"
        # The point of the incremental backend: the cold arm re-derives
        # what the persistent solver remembered.
        assert incremental[3]["propagations"] <= cold[3]["propagations"]

    def test_attack_config_selects_backend(self):
        netlist = small_circuit(4, seed=23)
        locked = lock_antisat(netlist, width=2, seed=24)
        results = [
            SatAttack(
                SatAttackConfig(backend=backend, canonical_dips=True)
            ).attack(locked)
            for backend in ("incremental", "cold")
        ]
        assert [r.details["backend"] for r in results] == ["incremental", "cold"]
        assert results[0].predicted_bits == results[1].predicted_bits
        assert (
            results[0].details["iterations"] == results[1].details["iterations"]
        )


class TestAppSat:
    def test_registered(self):
        assert ATTACK_REGISTRY["appsat"] is AppSatAttack
        assert get_attack("appsat") is AppSatAttack

    def test_exact_on_plain_rll(self, c432_quick):
        """With nothing starving the loop, AppSAT degenerates to exact."""
        locked = lock_rll(c432_quick, key_size=6, seed=16)
        result = AppSatAttack().attack(locked)
        assert result.details["exact"]
        assert result.details["error_rate"] == 0.0
        assert not result.details["budget_exhausted"]
        unlocked = apply_key(locked.netlist, Key(result.predicted_bits))
        assert check_equivalence(unlocked, c432_quick).equivalent

    def test_early_exit_on_point_function(self, c432_quick):
        """Full-width Anti-SAT needs ~2^n DIPs; AppSAT settles early with
        a low-error approximate key instead."""
        locked = lock_scheme(c432_quick, "rll+antisat", key_size=4, seed=17)
        config = AppSatConfig(
            max_iterations=128, query_period=4, random_queries=48, seed=18
        )
        result = AppSatAttack(config).attack(locked)
        assert result.details["early_exit"]
        assert not result.details["exact"]
        assert result.details["error_rate"] <= 0.05
        assert result.details["iterations"] < 128
        # The approximate key really is approximately correct: measure the
        # output error rate on fresh random patterns.
        rng = np.random.default_rng(99)
        patterns = rng.integers(
            0, 2, size=(128, len(locked.netlist.functional_inputs)),
            dtype=np.uint8,
        )
        expected = oracle_outputs(locked.netlist, locked.key, patterns)
        predicted = oracle_outputs(
            locked.netlist, Key(result.predicted_bits), patterns
        )
        error = (expected != predicted).any(axis=1).mean()
        assert error <= 0.05

    def test_budget_exhaustion_shares_partial_shape(self, c432_quick):
        locked = lock_antisat(c432_quick, seed=19)
        config = AppSatConfig(
            max_iterations=3, query_period=100, settle_rounds=1
        )
        result = AppSatAttack(config).attack(locked)
        assert result.details["budget_exhausted"] is True
        assert not result.details["exact"]
        assert result.key_size == len(locked.key)

    def test_config_validation(self):
        with pytest.raises(AttackError):
            AppSatConfig(query_period=0)
        with pytest.raises(AttackError):
            AppSatConfig(error_threshold=1.5)
        with pytest.raises(AttackError):
            AppSatConfig(random_queries=0)
        with pytest.raises(AttackError):
            AppSatConfig(settle_rounds=0)

    def test_point_function_schemes_exported(self):
        assert set(POINT_FUNCTION_SCHEMES) == {"antisat", "sarlock"}


class TestReviewRegressions:
    def test_flip_target_that_is_also_an_input(self):
        """A primary output that is directly a primary input must not
        close a combinational cycle through the block's comparators."""
        from repro.circuits import CircuitBuilder

        builder = CircuitBuilder("passthrough")
        a = builder.input("a")
        b = builder.input("b")
        builder.output(a, name="a")         # PO == PI
        builder.output(builder.and_(a, b), name="y")
        netlist = builder.build()
        for lock_fn in (lock_antisat, lock_sarlock):
            locked = lock_fn(netlist, target="a", seed=1)
            locked.netlist.validate()
            unlocked = apply_key(locked.netlist, locked.key)
            assert check_equivalence(unlocked, netlist).equivalent

    def test_trace_attributes_solver_effort_to_iterations(self, c432_quick):
        """Per-DIP deltas must span the miter solve, not just the oracle
        query — totals and trace sums must agree."""
        locked = lock_rll(c432_quick, key_size=8, seed=21)
        result = SatAttack().attack(locked)
        trace = result.details["trace"]
        totals = result.details["solver"]
        for counter in ("decisions", "propagations"):
            assert sum(e[counter] for e in trace) <= totals[counter]
        # The DIP searches do real work; the old bug recorded all zeros.
        assert sum(e["propagations"] for e in trace) > 0
        assert sum(e["decisions"] for e in trace) > 0

    def test_appsat_budget_error_rate_matches_returned_key(self, c432_quick):
        """On budget exhaustion the reported error rate is measured for
        the key actually returned, not a stale earlier candidate."""
        locked = lock_antisat(c432_quick, seed=22)
        config = AppSatConfig(
            max_iterations=6, query_period=2, random_queries=64,
            error_threshold=0.0, settle_rounds=50, seed=23,
        )
        result = AppSatAttack(config).attack(locked)
        assert result.details["budget_exhausted"]
        reported = result.details["error_rate"]
        assert reported is not None
        # Re-measure independently: a wrong Anti-SAT key errs on at most
        # one minterm, so the measured rate must be tiny either way.
        patterns = np.random.default_rng(24).integers(
            0, 2, size=(256, len(locked.netlist.functional_inputs)),
            dtype=np.uint8,
        )
        expected = oracle_outputs(locked.netlist, locked.key, patterns)
        predicted = oracle_outputs(
            locked.netlist, Key(result.predicted_bits), patterns
        )
        measured = float((expected != predicted).any(axis=1).mean())
        assert abs(measured - reported) <= 0.05

    def test_given_locker_partition_survives_structural_defense(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        design = tmp_path / "c432.bench"
        locked = tmp_path / "locked.bench"
        main(["gen", "c432", "--out", str(design)])
        main(["lock", str(design), "--key-size", "4", "--out", str(locked)])
        key_line = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("key (keep secret!): ")
        ][-1]
        assert main([
            "defend", str(locked), "--scheme", "antisat",
            "--key", key_line.split(": ")[1].strip(),
            "--workdir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "partition given: 4 key bits" in out
        assert "partition antisat: 18 key bits" in out

    def test_point_function_locker_rejects_explicit_key(self, tmp_path):
        from repro.errors import PipelineError
        from repro.pipeline import (
            BenchmarkSpec, ExperimentSpec, LockSpec, run_experiment,
        )

        spec = ExperimentSpec(
            name="bad-key",
            benchmarks=(BenchmarkSpec(name="c432"),),
            lock=LockSpec(locker="antisat", key="0101"),
        )
        with pytest.raises(PipelineError, match="LockSpec.key"):
            run_experiment(spec, workdir=tmp_path, use_cache=False)

    def test_query_record_constructors_agree(self):
        from repro.reporting import QueryComplexityRecord

        class FakeCell:
            attack = "sat"
            key_size = 8
            elapsed_s = 1.5
            details = {"attack": {"iterations": 4, "budget_exhausted": True}}

        class FakeResult:
            attack_name = "sat"
            key_size = 8
            details = {"iterations": 4, "budget_exhausted": True}

        from_cell = QueryComplexityRecord.from_cell("s", FakeCell())
        from_result = QueryComplexityRecord.from_result("s", FakeResult())
        # One fallback policy: identical details yield identical verdicts.
        assert from_cell.exact == from_result.exact is False
        assert from_cell.budget_exhausted and from_result.budget_exhausted
        assert from_cell.dips == from_result.dips == 4
