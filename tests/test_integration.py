"""Cross-module integration and property tests.

These exercise whole pipelines (lock -> synthesize -> map -> attack-view)
and invariants that only show up when modules compose.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import aig_from_netlist, netlist_from_aig
from repro.aig.aiger_io import parse_aiger, write_aiger
from repro.aig.simulate import functionally_equal
from repro.attacks.subgraph import extract_localities, victim_key_inputs
from repro.locking import lock_rll, oracle_outputs
from repro.mapping import map_aig
from repro.netlist.simulate import random_patterns, simulate_patterns
from repro.synth import RESYN2, apply_recipe, random_recipe
from repro.synth.engine import synthesize_and_map
from tests.conftest import build_random_netlist


class TestFullPipeline:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_lock_synth_map_preserves_oracle(self, seed):
        """The mapped, synthesized locked circuit equals the original
        under the correct key — the tape-out guarantee."""
        netlist = build_random_netlist(
            seed=seed, num_inputs=6, num_gates=30, num_outputs=3
        )
        locked = lock_rll(netlist, key_size=6, seed=seed)
        recipe = random_recipe(6, seed=seed + 1)
        _synth, mapped = synthesize_and_map(locked.netlist, recipe)
        expanded = mapped.to_netlist()

        patterns = random_patterns(len(netlist.inputs), 128, seed=seed + 2)
        want = simulate_patterns(netlist, patterns)
        got = oracle_outputs(expanded, locked.key, patterns)
        # Locking may rename PO nets (when the PO itself was locked), but
        # the positional order of outputs is preserved through the flow.
        order = [expanded.outputs.index(o) for o in locked.netlist.outputs]
        assert (want == got[:, order]).all()

    def test_localities_deterministic(self, locked_c432):
        _synth, mapped = synthesize_and_map(locked_c432.netlist, RESYN2)
        keys = victim_key_inputs(mapped)
        first = extract_localities(mapped, keys, [0] * len(keys))
        second = extract_localities(mapped, keys, [0] * len(keys))
        for a, b in zip(first, second):
            assert np.array_equal(a.features, b.features)
            assert np.array_equal(a.edges, b.edges)

    def test_every_quick_benchmark_survives_the_pipeline(self):
        from repro.circuits import load_iscas85

        for name in ("c1355", "c6288"):
            netlist = load_iscas85(name, scale="quick")
            locked = lock_rll(netlist, key_size=8, seed=1)
            _synth, mapped = synthesize_and_map(locked.netlist, RESYN2)
            assert len(victim_key_inputs(mapped)) == 8


class TestFormatsCompose:
    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=10, deadline=None)
    def test_aiger_after_synthesis(self, seed):
        """AIGER round-trips synthesized circuits, not just fresh ones."""
        aig = aig_from_netlist(build_random_netlist(seed=seed, num_gates=25))
        optimized = apply_recipe(aig, RESYN2)
        assert functionally_equal(optimized, parse_aiger(write_aiger(optimized)))

    def test_bench_aiger_bench_chain(self, c432_quick):
        from repro.netlist.bench_io import parse_bench, write_bench

        aig = aig_from_netlist(c432_quick)
        via_aiger = parse_aiger(write_aiger(aig))
        back = netlist_from_aig(via_aiger)
        reparsed = parse_bench(write_bench(back), name="roundtrip")
        assert functionally_equal(aig, aig_from_netlist(reparsed))


class TestProxyContract:
    def test_predicted_accuracy_on_circuit_matches_recipe_path(self):
        """Both proxy entry points must agree for the same recipe."""
        from repro.circuits import load_iscas85
        from repro.core.proxy import ProxyConfig, build_resyn2_proxy

        netlist = load_iscas85("c432", scale="quick")
        locked = lock_rll(netlist, key_size=8, seed=2)
        proxy = build_resyn2_proxy(
            locked, ProxyConfig(num_samples=16, epochs=3, relock_key_bits=8, seed=1)
        )
        via_recipe = proxy.predicted_accuracy(RESYN2)
        _synth, mapped = synthesize_and_map(locked.netlist, RESYN2)
        via_circuit = proxy.predicted_accuracy_on_circuit(mapped)
        assert via_recipe == via_circuit

    def test_empty_recipe_set_rejected(self):
        from repro.core.proxy import evaluate_on_recipe_set
        from repro.errors import AttackError

        with pytest.raises(AttackError):
            evaluate_on_recipe_set(None, [])


class TestSaInvariants:
    def test_best_energy_monotone_in_trace(self):
        from repro.core.sa import SaConfig, simulated_annealing

        result = simulated_annealing(
            10.0,
            energy_fn=lambda x: abs(x - 2.0),
            neighbour_fn=lambda x, rng: x + rng.normal(),
            config=SaConfig(iterations=40, seed=5),
        )
        best_values = [entry["best_energy"] for entry in result.trace]
        assert all(b1 >= b2 for b1, b2 in zip(best_values, best_values[1:])) or (
            sorted(best_values, reverse=True) == best_values
        )
        assert result.best_energy == min(entry["energy"] for entry in result.trace)
