"""Testability analysis: stuck-at fault models, simulation and coverage.

This substrate backs the redundancy attack (paper ref. [8]) and is usable
standalone: enumerate single-stuck-at faults, collapse equivalent ones,
fault-simulate random or user patterns, and report coverage / undetected
(candidate-redundant) faults.
"""

from repro.testability.faults import (
    Fault,
    FaultSimResult,
    collapse_faults,
    enumerate_faults,
    fault_simulate,
)

__all__ = [
    "Fault",
    "FaultSimResult",
    "enumerate_faults",
    "collapse_faults",
    "fault_simulate",
]
