"""Single-stuck-at fault enumeration, collapsing and simulation.

The fault simulator is serial but bit-parallel: each fault is injected by
forcing the faulty net's packed simulation words to all-zeros/all-ones and
re-propagating only the fault's output cone, 64 patterns per word.

Equivalence collapsing implements the classic structural rules: a stuck-at
fault on a gate input is equivalent to a fault on its (single-fanout)
driver for inverting/buffering gates, and AND/OR gate input/output faults
collapse along the controlled value.  The collapsed set is what ATPG tools
report, and what the redundancy attack counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import NetlistError
from repro.netlist.gates import GateType, gate_function
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import random_patterns, simulate


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault on a net (output faults only, post-collapse)."""

    net: str
    stuck_at: int  # 0 or 1

    def __str__(self) -> str:
        return f"{self.net}/sa{self.stuck_at}"


@dataclass
class FaultSimResult:
    """Outcome of fault simulation over a pattern set."""

    detected: list[Fault] = field(default_factory=list)
    undetected: list[Fault] = field(default_factory=list)
    num_patterns: int = 0

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


def enumerate_faults(netlist: Netlist, nets: Optional[Sequence[str]] = None) -> list[Fault]:
    """Both stuck-at faults for every net (or the given subset)."""
    targets = list(nets) if nets is not None else netlist.all_nets()
    return [Fault(net, v) for net in targets for v in (0, 1)]


def collapse_faults(netlist: Netlist, faults: Sequence[Fault]) -> list[Fault]:
    """Drop faults structurally equivalent to another fault in the list.

    Rules applied (conservative, classic):

    * NOT/BUF output faults are equivalent to the (appropriately inverted)
      input-side fault when the input net has fanout 1 — keep the driver's.
    * Faults on nets with no readers and not POs are unobservable by
      construction; they are kept (they are exactly the redundancy signal
      the attack wants) — collapsing never hides them.
    """
    drivers = netlist.driver_map()
    fanouts = netlist.fanout_map()
    fault_set = {(f.net, f.stuck_at) for f in faults}
    kept: list[Fault] = []
    for fault in faults:
        gate = drivers.get(fault.net)
        if gate is not None and gate.gate_type in (GateType.BUF, GateType.NOT):
            source = gate.inputs[0]
            polarity = (
                fault.stuck_at
                if gate.gate_type is GateType.BUF
                else 1 - fault.stuck_at
            )
            if (
                len(fanouts.get(source, [])) == 1
                and source not in netlist.outputs
                and (source, polarity) in fault_set
            ):
                continue  # equivalent fault survives at the driver
        kept.append(fault)
    return kept


def fault_simulate(
    netlist: Netlist,
    faults: Sequence[Fault],
    patterns: Optional[np.ndarray] = None,
    num_patterns: int = 256,
    seed: int = 0,
) -> FaultSimResult:
    """Serial fault simulation with cone-limited re-propagation."""
    if patterns is None:
        patterns = random_patterns(len(netlist.inputs), num_patterns, seed)
    num = patterns.shape[0]
    nwords = (num + 63) // 64
    packed: dict[str, np.ndarray] = {}
    for col, net in enumerate(netlist.inputs):
        bits = np.zeros(nwords, dtype=np.uint64)
        ones = np.nonzero(patterns[:, col])[0]
        np.bitwise_or.at(
            bits, ones // 64, np.uint64(1) << (ones % 64).astype(np.uint64)
        )
        packed[net] = bits
    golden = simulate(netlist, packed)

    order = netlist.topological_gates()
    position = {gate.output: i for i, gate in enumerate(order)}
    fanouts = netlist.fanout_map()
    tail = num % 64
    tail_mask = (
        np.uint64((1 << tail) - 1) if tail else np.uint64(0xFFFFFFFFFFFFFFFF)
    )
    all_ones = np.full(nwords, np.uint64(0xFFFFFFFFFFFFFFFF))

    result = FaultSimResult(num_patterns=num)
    outputs = set(netlist.outputs)
    for fault in faults:
        if fault.net not in golden:
            raise NetlistError(f"fault on unknown net {fault.net!r}")
        faulty: dict[str, np.ndarray] = {}
        forced = (
            all_ones.copy() if fault.stuck_at else np.zeros(nwords, np.uint64)
        )
        faulty[fault.net] = forced
        # Event-driven propagation through the fault's output cone.
        frontier = sorted(
            {position[g.output] for g in fanouts.get(fault.net, [])}
        )
        pending = list(frontier)
        seen = set(pending)
        # A fault directly on a PO net is detected by direct observation;
        # anywhere else it must propagate to an output to count.
        detected = fault.net in outputs and _differs(
            golden[fault.net], forced, tail_mask
        )
        while pending and not detected:
            pending.sort()
            index = pending.pop(0)
            seen.discard(index)
            gate = order[index]
            if gate.gate_type is GateType.CONST0 or gate.gate_type is GateType.CONST1:
                continue
            fanin_words = [
                faulty.get(n, golden[n]) for n in gate.inputs
            ]
            value = gate_function(gate.gate_type, fanin_words)
            old = faulty.get(gate.output, golden[gate.output])
            if _equal(value, old):
                continue
            faulty[gate.output] = value
            if gate.output in outputs and _differs(
                golden[gate.output], value, tail_mask
            ):
                detected = True
                break
            for reader in fanouts.get(gate.output, []):
                reader_pos = position[reader.output]
                if reader_pos not in seen:
                    seen.add(reader_pos)
                    pending.append(reader_pos)
        if detected:
            result.detected.append(fault)
        else:
            result.undetected.append(fault)
    return result


def _differs(a: np.ndarray, b: np.ndarray, tail_mask: np.uint64) -> bool:
    if a.shape[0] == 0:
        return False
    if a.shape[0] > 1 and (a[:-1] != b[:-1]).any():
        return True
    return bool(((a[-1] ^ b[-1]) & tail_mask) != 0)


def _equal(a: np.ndarray, b: np.ndarray) -> bool:
    return bool((a == b).all())
