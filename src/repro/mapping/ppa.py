"""PPA analysis and post-mapping optimization (the DC-compiler stand-in).

* :func:`analyze_ppa` — static timing with a linear delay model, area
  accumulation, and power = leakage + activity-weighted dynamic power using
  switching activities from random simulation of the mapped logic.
* :func:`optimize_mapping` — the ``+opt`` flow: repeated critical-path gate
  upsizing (X1 -> X2) followed by area recovery (downsizing off-critical
  cells back to X1 when slack allows), mirroring "ultra effort + area
  recovery" in the paper's Table III setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError
from repro.mapping.mapper import MappedCircuit
from repro.netlist.simulate import switching_activity

#: Clock assumed for dynamic power normalization (arbitrary but fixed).
_SUPPLY_V = 1.1
_FREQ_GHZ = 1.0


@dataclass(frozen=True)
class PpaReport:
    """Power-performance-area summary of a mapped circuit."""

    area: float          # um^2
    delay: float         # ps (critical path)
    power: float         # uW (leakage + dynamic)
    leakage_power: float
    dynamic_power: float
    num_cells: int

    def overhead_vs(self, baseline: "PpaReport") -> dict[str, float]:
        """Percentage overheads of ``self`` relative to ``baseline``."""

        def pct(ours: float, theirs: float) -> float:
            if theirs == 0:
                return 0.0
            return 100.0 * (ours - theirs) / theirs

        return {
            "area": pct(self.area, baseline.area),
            "delay": pct(self.delay, baseline.delay),
            "power": pct(self.power, baseline.power),
        }


def _arrival_times(mapped: MappedCircuit) -> dict[str, float]:
    """Net arrival times under the linear delay model."""
    fanouts = mapped.fanout_counts()
    arrival: dict[str, float] = {net: 0.0 for net in mapped.inputs}
    pending = list(mapped.instances)
    # Instances are appended in topological order by the mapper; a single
    # pass suffices, but verify inputs are ready to fail loudly otherwise.
    for inst in pending:
        cell = mapped.library[inst.cell_name]
        if any(net not in arrival for net in inst.inputs):
            raise MappingError(
                f"instance {inst.output} evaluated before its inputs"
            )
        input_arrival = max(
            (arrival[net] for net in inst.inputs), default=0.0
        )
        load = fanouts.get(inst.output, 0)
        arrival[inst.output] = (
            input_arrival + cell.intrinsic_delay + cell.load_factor * load
        )
    return arrival


def analyze_ppa(
    mapped: MappedCircuit,
    num_patterns: int = 1024,
    seed: int = 0,
) -> PpaReport:
    """Compute the PPA report of a mapped circuit."""
    arrival = _arrival_times(mapped)
    delay = max((arrival[net] for net in mapped.outputs), default=0.0)
    area = mapped.total_area()
    leakage_nw = sum(
        mapped.library[inst.cell_name].leakage for inst in mapped.instances
    )
    # Dynamic power: P = alpha * C * V^2 * f per driven pin.
    netlist = mapped.to_netlist()
    activity = switching_activity(netlist, num_patterns=num_patterns, seed=seed)
    input_cap_of: dict[str, float] = {}
    for inst in mapped.instances:
        cell = mapped.library[inst.cell_name]
        for net in inst.inputs:
            input_cap_of[net] = input_cap_of.get(net, 0.0) + cell.input_cap
    dynamic_uw = 0.0
    for net, cap_ff in input_cap_of.items():
        alpha = activity.get(net, 0.0)
        # fF * V^2 * GHz = uW
        dynamic_uw += alpha * cap_ff * _SUPPLY_V * _SUPPLY_V * _FREQ_GHZ
    leakage_uw = leakage_nw / 1000.0
    return PpaReport(
        area=area,
        delay=delay,
        power=leakage_uw + dynamic_uw,
        leakage_power=leakage_uw,
        dynamic_power=dynamic_uw,
        num_cells=mapped.num_cells(),
    )


def _critical_instances(mapped: MappedCircuit, slack_fraction: float) -> set[int]:
    """Indices of instances on (near-)critical paths."""
    arrival = _arrival_times(mapped)
    delay = max((arrival[net] for net in mapped.outputs), default=0.0)
    threshold = delay * (1.0 - slack_fraction)
    producers = {inst.output: i for i, inst in enumerate(mapped.instances)}
    critical: set[int] = set()
    frontier = [
        net for net in mapped.outputs if arrival.get(net, 0.0) >= threshold
    ]
    seen = set(frontier)
    while frontier:
        net = frontier.pop()
        index = producers.get(net)
        if index is None:
            continue
        critical.add(index)
        inst = mapped.instances[index]
        if not inst.inputs:
            continue
        worst = max(inst.inputs, key=lambda n: arrival.get(n, 0.0))
        if worst not in seen:
            seen.add(worst)
            frontier.append(worst)
    return critical


def optimize_mapping(
    mapped: MappedCircuit,
    rounds: int = 3,
    slack_fraction: float = 0.05,
) -> MappedCircuit:
    """The ``+opt`` flow: upsize critical cells, downsize the rest.

    Operates in place on a shallow copy of the instance list and returns the
    optimized circuit.
    """
    out = MappedCircuit(
        name=mapped.name,
        library=mapped.library,
        inputs=list(mapped.inputs),
        outputs=list(mapped.outputs),
        instances=[
            type(inst)(
                inst.cell_name,
                inst.output,
                inst.inputs,
                inst.source_var,
                inst.source_negated,
            )
            for inst in mapped.instances
        ],
    )
    for _ in range(rounds):
        critical = _critical_instances(out, slack_fraction)
        changed = False
        for index, inst in enumerate(out.instances):
            base, strength = inst.cell_name.rsplit("_", 1)
            if base.startswith("LOGIC"):
                continue
            if index in critical and strength == "X1":
                inst.cell_name = f"{base}_X2"
                changed = True
            elif index not in critical and strength == "X2":
                inst.cell_name = f"{base}_X1"
                changed = True
        if not changed:
            break
    return out
