"""The standard-cell library model.

Cell timing/area/power numbers follow the public NanGate 45 nm Open Cell
Library's typical-corner flavour (simplified to a linear delay model:
``delay = intrinsic + load_factor * fanout``).  Each logical cell exists in
two drive strengths; ``X2`` trades ~45% extra area and leakage for ~30%
lower intrinsic delay and load sensitivity, which is what the ``+opt``
sizing pass exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import MappingError


@dataclass(frozen=True)
class Cell:
    """One standard cell: logic function plus physical characteristics."""

    name: str
    num_inputs: int
    function: Callable[[Sequence[np.ndarray]], np.ndarray]
    area: float          # um^2
    intrinsic_delay: float  # ps
    load_factor: float      # ps per fanout
    input_cap: float        # fF per input pin
    leakage: float          # nW

    def evaluate(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        if len(inputs) != self.num_inputs:
            raise MappingError(
                f"cell {self.name} expects {self.num_inputs} inputs"
            )
        return self.function(inputs)


#: Factories that can rebuild a library by name — makes :class:`CellLibrary`
#: picklable even though its cell functions are lambdas, which in turn lets
#: mapped circuits travel through the pipeline artifact cache and
#: multiprocessing workers.
_LIBRARY_FACTORIES: dict[str, Callable[[], "CellLibrary"]] = {}


def register_library_factory(
    name: str, factory: Callable[[], "CellLibrary"]
) -> None:
    """Register a zero-arg factory that rebuilds the library ``name``."""
    _LIBRARY_FACTORIES[name] = factory


def _rebuild_library(name: str) -> "CellLibrary":
    factory = _LIBRARY_FACTORIES.get(name)
    if factory is None:
        raise MappingError(
            f"cannot unpickle library {name!r}: no registered factory"
        )
    return factory()


class CellLibrary:
    """A named collection of cells with drive-strength variants."""

    def __init__(self, name: str, cells: Sequence[Cell]):
        self.name = name
        self._cells = {cell.name: cell for cell in cells}

    def __reduce__(self):
        if self.name in _LIBRARY_FACTORIES:
            return (_rebuild_library, (self.name,))
        return super().__reduce__()

    def __getitem__(self, name: str) -> Cell:
        cell = self._cells.get(name)
        if cell is None:
            raise MappingError(f"library {self.name} has no cell {name!r}")
        return cell

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def cell_names(self) -> list[str]:
        return sorted(self._cells)

    def variant(self, name: str, strength: str) -> Cell:
        """The drive-strength sibling of a cell, e.g. ``X1`` -> ``X2``."""
        base = name.rsplit("_", 1)[0]
        return self[f"{base}_{strength}"]


def _cell_pair(
    base: str,
    num_inputs: int,
    function: Callable[[Sequence[np.ndarray]], np.ndarray],
    area: float,
    delay: float,
    load: float,
    cap: float,
    leakage: float,
) -> list[Cell]:
    """Build the X1/X2 pair for one logical function."""
    x1 = Cell(
        name=f"{base}_X1",
        num_inputs=num_inputs,
        function=function,
        area=area,
        intrinsic_delay=delay,
        load_factor=load,
        input_cap=cap,
        leakage=leakage,
    )
    x2 = Cell(
        name=f"{base}_X2",
        num_inputs=num_inputs,
        function=function,
        area=area * 1.45,
        intrinsic_delay=delay * 0.70,
        load_factor=load * 0.55,
        input_cap=cap * 1.9,
        leakage=leakage * 1.9,
    )
    return [x1, x2]


def nangate45_library() -> CellLibrary:
    """The library used throughout the reproduction (NanGate45 flavour)."""
    cells: list[Cell] = []
    cells += _cell_pair(
        "INV", 1, lambda x: ~x[0], 0.532, 10.0, 3.2, 1.6, 1.1
    )
    cells += _cell_pair(
        "BUF", 1, lambda x: x[0].copy(), 0.798, 18.0, 2.4, 1.5, 1.3
    )
    cells += _cell_pair(
        "NAND2", 2, lambda x: ~(x[0] & x[1]), 0.798, 14.0, 3.6, 1.6, 1.5
    )
    cells += _cell_pair(
        "NOR2", 2, lambda x: ~(x[0] | x[1]), 0.798, 17.0, 4.4, 1.5, 1.4
    )
    cells += _cell_pair(
        "AND2", 2, lambda x: x[0] & x[1], 1.064, 22.0, 3.0, 1.5, 1.9
    )
    cells += _cell_pair(
        "OR2", 2, lambda x: x[0] | x[1], 1.064, 24.0, 3.2, 1.5, 1.9
    )
    cells += _cell_pair(
        "ANDNOT2", 2, lambda x: x[0] & ~x[1], 1.064, 23.0, 3.3, 1.5, 1.8
    )
    cells += _cell_pair(
        "ORNOT2", 2, lambda x: x[0] | ~x[1], 1.064, 25.0, 3.4, 1.5, 1.8
    )
    cells += _cell_pair(
        "XOR2", 2, lambda x: x[0] ^ x[1], 1.596, 32.0, 4.8, 2.1, 2.6
    )
    cells += _cell_pair(
        "XNOR2", 2, lambda x: ~(x[0] ^ x[1]), 1.596, 33.0, 4.9, 2.1, 2.6
    )
    cells += _cell_pair(
        "AOI21", 3, lambda x: ~((x[0] & x[1]) | x[2]), 1.064, 19.0, 4.6, 1.7, 1.7
    )
    cells += _cell_pair(
        "OAI21", 3, lambda x: ~((x[0] | x[1]) & x[2]), 1.064, 20.0, 4.7, 1.7, 1.7
    )
    cells += _cell_pair(
        "MUX2", 3,  # MUX2(sel, a, b) = b if sel else a
        lambda x: (x[0] & x[2]) | (~x[0] & x[1]),
        1.862, 30.0, 4.0, 1.9, 2.9,
    )
    # Tie cells (constants); delays irrelevant, tiny area/leakage.
    cells += _cell_pair(
        "LOGIC0", 0, lambda x: None, 0.266, 0.0, 0.0, 0.0, 0.3
    )
    cells += _cell_pair(
        "LOGIC1", 0, lambda x: None, 0.266, 0.0, 0.0, 0.0, 0.3
    )
    return CellLibrary("nangate45-lite", cells)


register_library_factory("nangate45-lite", nangate45_library)
