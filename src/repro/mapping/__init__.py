"""Technology mapping and PPA analysis (NanGate45-flavoured).

Maps synthesized AIGs onto a small standard-cell library with structural
pattern matching (XOR/XNOR, MUX, AOI/OAI, polarity-aware AND forms), then
reports power, performance and area the way the paper's Synopsys DC flow
does — including a ``-opt`` (map only) and ``+opt`` (area recovery + gate
sizing) pair of settings for Table III.
"""

from repro.mapping.cells import Cell, CellLibrary, nangate45_library
from repro.mapping.mapper import MappedCircuit, map_aig
from repro.mapping.ppa import PpaReport, analyze_ppa, optimize_mapping

__all__ = [
    "Cell",
    "CellLibrary",
    "nangate45_library",
    "MappedCircuit",
    "map_aig",
    "PpaReport",
    "analyze_ppa",
    "optimize_mapping",
]
