"""Structural technology mapping from AIG to standard cells.

The mapper covers the AIG with library cells in three steps:

1. *pattern detection* — two-level idioms (XOR/XNOR, MUX, AOI21, OAI21) are
   matched greedily on single-fanout internal nodes;
2. *polarity-aware covering* — every remaining AND node is realized by the
   cell matching its effective fanin polarities (AND2/NAND2/NOR2/OR2/
   ANDNOT2/ORNOT2), choosing the output polarity used by the majority of
   readers so that explicit inverters are rare;
3. *inverter insertion* — readers that need the opposite polarity share one
   INV per net.

The result tracks which AIG variable each cell output realizes (and with
which phase) so PPA power analysis can reuse AIG switching activities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.aig.aig import Aig, lit_var
from repro.errors import MappingError
from repro.mapping.cells import Cell, CellLibrary, nangate45_library
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


@dataclass
class CellInstance:
    """One placed cell: ``output = cell(inputs)``."""

    cell_name: str
    output: str
    inputs: tuple[str, ...]
    source_var: int  # AIG variable this instance's output tracks (-1: none)
    source_negated: bool = False


@dataclass
class MappedCircuit:
    """A technology-mapped circuit (cell instances over named nets)."""

    name: str
    library: CellLibrary
    inputs: list[str]
    outputs: list[str]
    instances: list[CellInstance] = field(default_factory=list)

    def num_cells(self) -> int:
        return len(self.instances)

    def total_area(self) -> float:
        return sum(self.library[inst.cell_name].area for inst in self.instances)

    def cell_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for inst in self.instances:
            base = inst.cell_name.rsplit("_", 1)[0]
            histogram[base] = histogram.get(base, 0) + 1
        return histogram

    def fanout_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {net: 0 for net in self.inputs}
        for inst in self.instances:
            counts.setdefault(inst.output, 0)
        for inst in self.instances:
            for net in inst.inputs:
                counts[net] = counts.get(net, 0) + 1
        for net in self.outputs:
            counts[net] = counts.get(net, 0) + 1
        return counts

    def to_netlist(self) -> Netlist:
        """Primitive-gate expansion (for simulation and verification)."""
        netlist = Netlist(name=self.name)
        for net in self.inputs:
            netlist.add_input(net)
        counter = 0

        def fresh() -> str:
            nonlocal counter
            counter += 1
            return f"_m{counter}"

        for inst in self.instances:
            base = inst.cell_name.rsplit("_", 1)[0]
            ins = inst.inputs
            out = inst.output
            if base == "LOGIC0":
                netlist.add_gate(out, GateType.CONST0, ())
            elif base == "LOGIC1":
                netlist.add_gate(out, GateType.CONST1, ())
            elif base == "INV":
                netlist.add_gate(out, GateType.NOT, ins)
            elif base == "BUF":
                netlist.add_gate(out, GateType.BUF, ins)
            elif base in ("AND2", "NAND2", "OR2", "NOR2", "XOR2", "XNOR2"):
                netlist.add_gate(out, GateType[base[:-1]], ins)
            elif base == "ANDNOT2":
                nb = fresh()
                netlist.add_gate(nb, GateType.NOT, (ins[1],))
                netlist.add_gate(out, GateType.AND, (ins[0], nb))
            elif base == "ORNOT2":
                nb = fresh()
                netlist.add_gate(nb, GateType.NOT, (ins[1],))
                netlist.add_gate(out, GateType.OR, (ins[0], nb))
            elif base == "AOI21":
                ab = fresh()
                netlist.add_gate(ab, GateType.AND, (ins[0], ins[1]))
                netlist.add_gate(out, GateType.NOR, (ab, ins[2]))
            elif base == "OAI21":
                ab = fresh()
                netlist.add_gate(ab, GateType.OR, (ins[0], ins[1]))
                netlist.add_gate(out, GateType.NAND, (ab, ins[2]))
            elif base == "MUX2":
                netlist.add_gate(out, GateType.MUX, ins)
            else:  # pragma: no cover - library closed set
                raise MappingError(f"no primitive expansion for {base}")
        for net in self.outputs:
            netlist.add_output(net)
        netlist.validate()
        return netlist


def map_aig(
    aig: Aig,
    library: Optional[CellLibrary] = None,
    detect_patterns: bool = True,
) -> MappedCircuit:
    """Map an AIG onto the cell library (all X1 strengths)."""
    library = library if library is not None else nangate45_library()
    mapped = MappedCircuit(
        name=aig.name,
        library=library,
        inputs=list(aig.pi_names()),
        outputs=[],
    )
    order = aig.topological_ands(roots=aig.po_lits())
    in_cone = set(order)
    po_vars = {lit_var(po) for po in aig.po_lits()}

    # --- usage polarities -------------------------------------------------
    pos_uses: dict[int, int] = {}
    neg_uses: dict[int, int] = {}
    for var in order:
        for lit in aig.fanins(var):
            child = lit_var(lit)
            if lit & 1:
                neg_uses[child] = neg_uses.get(child, 0) + 1
            else:
                pos_uses[child] = pos_uses.get(child, 0) + 1
    for po in aig.po_lits():
        child = lit_var(po)
        if po & 1:
            neg_uses[child] = neg_uses.get(child, 0) + 1
        else:
            pos_uses[child] = pos_uses.get(child, 0) + 1

    # --- pattern detection --------------------------------------------------
    # pattern[var] = (kind, payload); absorbed nodes are skipped in covering.
    pattern: dict[int, tuple[str, tuple]] = {}
    absorbed: set[int] = set()
    if detect_patterns:
        for var in order:
            if var in absorbed:
                continue
            f0, f1 = aig.fanins(var)
            if not (f0 & 1) or not (f1 & 1):
                continue
            v0, v1 = lit_var(f0), lit_var(f1)
            if not (aig.is_and(v0) and aig.is_and(v1)) or v0 == v1:
                continue
            if v0 in absorbed or v1 in absorbed or v0 in pattern or v1 in pattern:
                continue
            single_use = all(
                aig.num_refs(c) == 1 and c not in po_vars for c in (v0, v1)
            )
            if not single_use:
                continue
            g00, g01 = aig.fanins(v0)
            g10, g11 = aig.fanins(v1)
            vars0 = {lit_var(g00), lit_var(g01)}
            vars1 = {lit_var(g10), lit_var(g11)}
            if vars0 != vars1:
                continue
            if {g10, g11} == {g00 ^ 1, g01 ^ 1}:
                # var = ~(ab) & ~(a'b') -> XOR(a, b) with a=g00, b=g01
                pattern[var] = ("xor", (g00, g01))
                absorbed.update((v0, v1))
                continue
            shared = vars0 & vars1
            if len(shared) == 2:
                # Same two variables, exactly one flipped -> MUX.
                lits0 = {g00, g01}
                lits1 = {g10, g11}
                flipped = {l ^ 1 for l in lits0}
                common = lits0 & lits1
                if len(common) == 1 and len(lits1 & flipped) == 1:
                    pass  # fall through: not a standard mux shape
            # MUX: var = ~(s&b) & ~(~s&a) -> ~var... handled via select var.
            select = None
            # sorted(): first matching candidate wins, so candidate order
            # must be canonical for the mapped netlist to be reproducible.
            for cand in sorted(vars0):
                lits_with_cand0 = [l for l in (g00, g01) if lit_var(l) == cand]
                lits_with_cand1 = [l for l in (g10, g11) if lit_var(l) == cand]
                if (
                    len(lits_with_cand0) == 1
                    and len(lits_with_cand1) == 1
                    and lits_with_cand0[0] == (lits_with_cand1[0] ^ 1)
                ):
                    select = cand
                    break
            if select is not None and len(vars0 | vars1) >= 2:
                sel_lit0 = next(l for l in (g00, g01) if lit_var(l) == select)
                data0 = next(l for l in (g00, g01) if lit_var(l) != select)
                data1 = next(l for l in (g10, g11) if lit_var(l) != select)
                # ~var = MUX(sel, ...): when sel_lit0 true, v0 = data0.
                # ~var = (sel_lit0 & data0) | (~sel_lit0 & data1)
                pattern[var] = ("mux", (sel_lit0, data0, data1))
                absorbed.update((v0, v1))

    # --- covering -------------------------------------------------------------
    # stored[var] = (net, negated): the mapped net computes var ^ negated.
    stored: dict[int, tuple[str, bool]] = {}
    inv_nets: dict[str, str] = {}
    const_nets: dict[int, str] = {}
    for var, name in zip(aig.pi_vars(), aig.pi_names()):
        stored[var] = (name, False)

    def net_for(lit: int) -> str:
        """Net computing ``lit`` exactly, adding INV/const cells on demand."""
        var = lit_var(lit)
        if var == 0:
            value = 1 if (lit & 1) else 0
            if value not in const_nets:
                net = f"const{value}"
                const_nets[value] = net
                mapped.instances.append(
                    CellInstance(
                        f"LOGIC{value}_X1",
                        net,
                        (),
                        source_var=0,
                        source_negated=bool(value),
                    )
                )
            return const_nets[value]
        net, negated = stored[var]
        want_neg = bool(lit & 1)
        if negated == want_neg:
            return net
        if net not in inv_nets:
            inv_net = f"{net}_bar"
            mapped.instances.append(
                CellInstance(
                    "INV_X1",
                    inv_net,
                    (net,),
                    source_var=var,
                    source_negated=not negated,
                )
            )
            inv_nets[net] = inv_net
        return inv_nets[net]

    for var in order:
        if var in absorbed:
            continue
        out_net = f"n{var}"
        prefer_neg = neg_uses.get(var, 0) > pos_uses.get(var, 0)
        if var in pattern:
            kind, payload = pattern[var]
            if kind == "xor":
                a, b = payload
                in_a = net_for(a & ~1)
                in_b = net_for(b & ~1)
                parity = (a & 1) ^ (b & 1)
                # var = XOR(lit a, lit b); with positive nets, complement
                # folds into choosing XOR vs XNOR and output phase.
                # var = a ^ b; using positive nets A, B: var = A ^ B ^ parity.
                if prefer_neg:
                    cell = "XOR2_X1" if parity else "XNOR2_X1"
                    stored[var] = (out_net, True)
                else:
                    cell = "XNOR2_X1" if parity else "XOR2_X1"
                    stored[var] = (out_net, False)
                mapped.instances.append(
                    CellInstance(
                        cell,
                        out_net,
                        (in_a, in_b),
                        source_var=var,
                        source_negated=prefer_neg,
                    )
                )
            else:  # mux: ~var = sel ? data0 : data1  (sel true -> data0)
                sel_lit, data0, data1 = payload
                sel_net = net_for(sel_lit)
                # MUX2(sel, a, b) = b if sel else a; ~var = data0 if sel.
                a_net = net_for(data1)
                b_net = net_for(data0)
                mapped.instances.append(
                    CellInstance(
                        "MUX2_X1",
                        out_net,
                        (sel_net, a_net, b_net),
                        source_var=var,
                        source_negated=True,
                    )
                )
                stored[var] = (out_net, True)
            continue
        f0, f1 = aig.fanins(var)
        nets = []
        effs = []
        for lit in (f0, f1):
            child = lit_var(lit)
            if child == 0:
                nets.append(net_for(0))
                effs.append(bool(lit & 1) ^ False)
                continue
            child_net, child_neg = stored[child]
            nets.append(child_net)
            effs.append(bool(lit & 1) ^ child_neg)
        eff0, eff1 = effs
        if not eff0 and not eff1:
            cell = "NAND2_X1" if prefer_neg else "AND2_X1"
            negated = prefer_neg
            ins = (nets[0], nets[1])
        elif eff0 and eff1:
            cell = "OR2_X1" if prefer_neg else "NOR2_X1"
            negated = prefer_neg
            ins = (nets[0], nets[1])
        else:
            plain, comp = (nets[0], nets[1]) if eff1 else (nets[1], nets[0])
            cell = "ORNOT2_X1" if prefer_neg else "ANDNOT2_X1"
            negated = prefer_neg
            ins = (comp, plain) if prefer_neg else (plain, comp)
        mapped.instances.append(
            CellInstance(cell, out_net, ins, source_var=var, source_negated=negated)
        )
        stored[var] = (out_net, negated)

    # --- primary outputs ---------------------------------------------------
    for po_lit, po_name in zip(aig.po_lits(), aig.po_names()):
        net = net_for(po_lit)
        mapped.instances.append(
            CellInstance(
                "BUF_X1",
                po_name,
                (net,),
                source_var=lit_var(po_lit),
                source_negated=bool(po_lit & 1),
            )
        )
        mapped.outputs.append(po_name)
    return mapped
