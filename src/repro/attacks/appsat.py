"""AppSAT: approximate oracle-guided SAT attack (Shamsi et al., HOST'17).

The exact DIP loop is what point-function defenses (Anti-SAT, SARLock —
:mod:`repro.defenses`) starve: each DIP eliminates a vanishing fraction of
the wrong keys, so convergence takes ~``2^width`` iterations.  AppSAT's
observation is that those surviving "wrong" keys are *almost correct* —
they err on a single minterm — so an attacker content with an approximate
key can stop as soon as random sampling can no longer tell the candidate
apart from the oracle:

1. run the ordinary DIP loop (shared :class:`~repro.attacks.sat_attack.\
DipLoop` core);
2. every ``query_period`` DIPs, extract the current candidate key and
   estimate its error rate on ``random_queries`` random patterns against
   the oracle;
3. feed any disagreeing random pattern back as an I/O constraint (it acts
   like a free DIP), and once the measured error stays at or below
   ``error_threshold`` for ``settle_rounds`` consecutive estimates, return
   the candidate as an *approximate* key with its measured error rate.

Against compound RLL+point-function locks this recovers the RLL portion
exactly (its wrong keys corrupt many minterms, so random queries expose
them) while giving up on the point-function portion — precisely the
published failure mode of these defenses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.attacks.base import AttackResult
from repro.attacks.sat_attack import DipLoop, Oracle, resolve_oracle
from repro.errors import AttackError
from repro.locking.key import Key
from repro.locking.rll import LockedCircuit
from repro.netlist.netlist import Netlist
from repro.obs.trace import get_tracer
from repro.utils.rng import make_rng


@dataclass
class AppSatConfig:
    """Knobs for the approximate DIP loop."""

    max_iterations: int = 512
    query_period: int = 8       # estimate error every this many DIPs
    random_queries: int = 64    # patterns per error estimate
    error_threshold: float = 0.0  # acceptable estimated error rate
    settle_rounds: int = 2      # consecutive passing estimates before exit
    seed: int = 0
    #: Solver discipline for the shared DipLoop core; see
    #: :class:`~repro.attacks.sat_attack.DipLoop`.
    backend: str = "incremental"
    canonical_dips: bool = False

    def __post_init__(self) -> None:
        if self.query_period < 1:
            raise AttackError("AppSatConfig.query_period must be >= 1")
        if self.random_queries < 1:
            raise AttackError("AppSatConfig.random_queries must be >= 1")
        if not 0.0 <= self.error_threshold < 1.0:
            raise AttackError(
                "AppSatConfig.error_threshold must be in [0, 1)"
            )
        if self.settle_rounds < 1:
            raise AttackError("AppSatConfig.settle_rounds must be >= 1")


class AppSatAttack:
    """Approximate SAT attack: DIP loop + periodic random-query estimation."""

    name = "appsat"

    def __init__(self, config: Optional[AppSatConfig] = None):
        self.config = config if config is not None else AppSatConfig()

    def attack(
        self,
        locked: Union[Netlist, LockedCircuit],
        oracle: Optional[Oracle] = None,
        true_key: Optional[Key] = None,
    ) -> AttackResult:
        """Run the approximate loop; returns a key with a measured error.

        Termination is one of: *exact* (the miter went UNSAT — same proof
        as :class:`~repro.attacks.sat_attack.SatAttack`), *early exit*
        (error estimate settled at or below the threshold) or *budget
        exhaustion* (``details["budget_exhausted"] = True``, sharing the
        partial-result shape of the exact attack so grids keep running).
        """
        config = self.config
        netlist, oracle, true_key = resolve_oracle(locked, oracle, true_key)
        loop = DipLoop(
            netlist,
            oracle,
            backend=config.backend,
            canonical_dips=config.canonical_dips,
        )
        rng = make_rng(config.seed)
        settled = 0
        estimates = 0
        reinforced = 0
        error_rate: Optional[float] = None
        candidate: Optional[tuple[int, ...]] = None
        exact = False
        early_exit = False
        budget_exhausted = False

        with get_tracer().span(
            "attack.appsat", circuit=netlist.name, keys=len(netlist.key_inputs)
        ) as span:
            while True:
                pattern = loop.find_dip()
                if pattern is None:
                    exact = True
                    break
                if loop.iterations >= config.max_iterations:
                    budget_exhausted = True
                    break
                loop.observe(pattern)
                if loop.iterations % config.query_period:
                    continue
                candidate = loop.extract_key()
                if candidate is None:
                    raise AttackError(
                        "no key survives the accumulated I/O constraints "
                        "(inconsistent oracle?)"
                    )
                estimates += 1
                error_rate, wrong = self._estimate_error(
                    loop, candidate, rng
                )
                for wrong_pattern, response in wrong:
                    loop.add_observation(wrong_pattern, response)
                reinforced += len(wrong)
                if error_rate <= config.error_threshold:
                    settled += 1
                    if settled >= config.settle_rounds:
                        early_exit = True
                        break
                else:
                    settled = 0

            if exact or budget_exhausted or candidate is None:
                candidate = loop.extract_key()
                if candidate is None:
                    raise AttackError(
                        "no key survives the accumulated I/O constraints "
                        "(inconsistent oracle?)"
                    )
            if exact:
                error_rate = 0.0
            elif not early_exit:
                # Budget exhaustion re-extracted a fresh candidate; any
                # earlier estimate belonged to a different key, so measure
                # this one.
                error_rate, _wrong = self._estimate_error(
                    loop, candidate, rng
                )
            key_unique = loop.key_is_unique(candidate) if exact else False
            span.set(
                iterations=loop.iterations,
                exact=exact,
                early_exit=early_exit,
                budget_exhausted=budget_exhausted,
            )
        confidence = 1.0 if exact else (0.5 if budget_exhausted else 0.9)
        details = loop.details()
        details.update(
            {
                "exact": exact,
                "early_exit": early_exit,
                "budget_exhausted": budget_exhausted,
                "error_rate": error_rate,
                "error_estimates": estimates,
                "reinforced_queries": reinforced,
                "key_unique": key_unique,
            }
        )
        return AttackResult(
            predicted_bits=candidate,
            true_key=true_key,
            confidence=tuple(confidence for _ in candidate),
            attack_name=self.name,
            details=details,
        )

    def _estimate_error(
        self,
        loop: DipLoop,
        candidate: tuple[int, ...],
        rng,
    ) -> tuple[float, list[tuple[np.ndarray, np.ndarray]]]:
        """Fraction of random patterns where the candidate key errs.

        Returns ``(error_rate, wrong)`` with ``wrong`` the disagreeing
        ``(pattern, oracle_response)`` pairs for constraint reinforcement.
        The whole estimate is one packed simulation pass when the oracle
        allows it (see :meth:`DipLoop.compare_key`); query accounting is
        unchanged — one oracle query per random pattern.
        """
        patterns = rng.integers(
            0, 2,
            size=(self.config.random_queries, len(loop.functional)),
            dtype=np.uint8,
        )
        expected, predicted = loop.compare_key(candidate, patterns)
        mismatch = (expected != predicted).any(axis=1)
        wrong = [
            (patterns[index], expected[index])
            for index in np.flatnonzero(mismatch)
        ]
        return float(mismatch.mean()), wrong
