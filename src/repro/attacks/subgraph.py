"""Key-gate locality extraction: netlist neighbourhoods as labeled graphs.

OMLA's insight is that the synthesized neighbourhood of a key gate leaks the
key bit.  The extractor builds the undirected gate-connectivity graph of a
circuit — either a primitive-gate :class:`~repro.netlist.Netlist` or a
technology-mapped :class:`~repro.mapping.MappedCircuit` (the realistic
setting: OMLA attacks mapped netlists, where XOR/XNOR and AND/NAND cell
choices expose polarity) — and, for every key input, cuts out the
``hops``-hop enclosing subgraph around it, producing
:class:`~repro.ml.data.GraphData` with per-node structural features:

* gate/cell-type one-hot (including PI / key-input markers),
* in/out-degree,
* distance from the key input (normalized),
* a flag for nets feeding primary outputs,
* the net's signal probability under random stimulus (0.5 when no
  simulation profile is supplied) — the one *functional* feature, fed
  from a single packed simulation pass over the whole circuit
  (:func:`functional_signal_probs`) rather than per-locality
  re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import AttackError
from repro.mapping.mapper import MappedCircuit
from repro.ml.data import GraphData
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import signal_probabilities

#: Feature layout: one-hot over these type slots, then numeric features.
_TYPE_SLOTS = [
    "PI",
    "KEYIN",
    # Primitive netlist gate types.
    GateType.BUF.value,
    GateType.NOT.value,
    GateType.AND.value,
    GateType.NAND.value,
    GateType.OR.value,
    GateType.NOR.value,
    GateType.XOR.value,
    GateType.XNOR.value,
    GateType.MUX.value,
    GateType.CONST0.value,
    GateType.CONST1.value,
    # Mapped cell bases that have no primitive alias above.
    "INV",
    "ANDNOT2",
    "ORNOT2",
    "AOI21",
    "OAI21",
]
_CELL_ALIASES = {
    "BUF": "BUF",
    "INV": "INV",
    "AND2": "AND",
    "NAND2": "NAND",
    "OR2": "OR",
    "NOR2": "NOR",
    "XOR2": "XOR",
    "XNOR2": "XNOR",
    "MUX2": "MUX",
    "LOGIC0": "CONST0",
    "LOGIC1": "CONST1",
    "ANDNOT2": "ANDNOT2",
    "ORNOT2": "ORNOT2",
    "AOI21": "AOI21",
    "OAI21": "OAI21",
}
_NUMERIC_FEATURES = 5  # in-degree, out-degree, distance, drives-PO, signal-prob
FEATURE_DIM = len(_TYPE_SLOTS) + _NUMERIC_FEATURES

_KEY_PREFIXES = ("keyinput", "relockinput")


class _GateGraph:
    """Uniform view over primitive netlists and mapped circuits."""

    def __init__(self, circuit: Union[Netlist, MappedCircuit]):
        self.name = circuit.name
        self.inputs = set(circuit.inputs)
        self.outputs = set(circuit.outputs)
        self._type: dict[str, str] = {}
        self._fanins: dict[str, tuple[str, ...]] = {}
        self._fanouts: dict[str, list[str]] = {}
        if isinstance(circuit, Netlist):
            for gate in circuit.gates:
                self._add(gate.output, gate.gate_type.value, gate.inputs)
        else:
            for inst in circuit.instances:
                base = inst.cell_name.rsplit("_", 1)[0]
                slot = _CELL_ALIASES.get(base)
                if slot is None:
                    raise AttackError(f"unknown cell base {base!r}")
                self._add(inst.output, slot, inst.inputs)

    def _add(self, output: str, type_slot: str, inputs: Sequence[str]) -> None:
        self._type[output] = type_slot
        self._fanins[output] = tuple(inputs)
        for net in inputs:
            self._fanouts.setdefault(net, []).append(output)

    def type_slot(self, net: str) -> str:
        slot = self._type.get(net)
        if slot is not None:
            return slot
        if any(net.startswith(p) for p in _KEY_PREFIXES):
            return "KEYIN"
        return "PI"

    def fanins(self, net: str) -> tuple[str, ...]:
        return self._fanins.get(net, ())

    def fanouts(self, net: str) -> list[str]:
        return self._fanouts.get(net, [])

    def neighbours(self, net: str) -> list[str]:
        return list(self.fanins(net)) + self.fanouts(net)


@dataclass
class LocalityExtractor:
    """Configurable locality extraction over one circuit.

    ``signal_probs`` optionally maps nets to their signal probability
    under random stimulus (see :func:`functional_signal_probs`); nets
    without an entry get the uninformative 0.5.
    """

    circuit: Union[Netlist, MappedCircuit]
    hops: int = 3
    max_nodes: int = 60
    signal_probs: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        self._graph = _GateGraph(self.circuit)

    def extract(self, key_net: str, label: int) -> GraphData:
        """The enclosing subgraph around ``key_net``, labeled ``label``."""
        graph = self._graph
        if key_net not in graph.inputs:
            raise AttackError(f"{key_net!r} is not a primary input")
        distance = {key_net: 0}
        frontier = [key_net]
        order = [key_net]
        for hop in range(1, self.hops + 1):
            if len(order) >= self.max_nodes or not frontier:
                break
            next_frontier: list[str] = []
            for net in frontier:
                for neighbour in graph.neighbours(net):
                    if neighbour in distance:
                        continue
                    distance[neighbour] = hop
                    order.append(neighbour)
                    next_frontier.append(neighbour)
                    if len(order) >= self.max_nodes:
                        break
                if len(order) >= self.max_nodes:
                    break
            frontier = next_frontier
        index_of = {net: i for i, net in enumerate(order)}
        features = np.zeros((len(order), FEATURE_DIM))
        base = len(_TYPE_SLOTS)
        probs = self.signal_probs if self.signal_probs is not None else {}
        for net, node_index in index_of.items():
            slot = graph.type_slot(net)
            features[node_index, _TYPE_SLOTS.index(slot)] = 1.0
            features[node_index, base + 0] = len(graph.fanins(net))
            features[node_index, base + 1] = len(graph.fanouts(net))
            features[node_index, base + 2] = distance[net] / max(self.hops, 1)
            features[node_index, base + 3] = 1.0 if net in graph.outputs else 0.0
            features[node_index, base + 4] = probs.get(net, 0.5)
        edges = []
        for net, node_index in index_of.items():
            for fanin in graph.fanins(net):
                fanin_index = index_of.get(fanin)
                if fanin_index is not None:
                    edges.append((fanin_index, node_index))
        return GraphData(
            features=features,
            edges=np.array(edges, dtype=np.int64).reshape(-1, 2),
            label=int(label),
            meta={
                "key_net": key_net,
                "circuit": graph.name,
                "nets": list(order),
            },
        )


def victim_key_inputs(circuit: Union[Netlist, MappedCircuit]) -> list[str]:
    """The ``keyinput<i>`` pins of a circuit, in key-bit order."""
    keys = [n for n in circuit.inputs if n.startswith("keyinput")]
    return sorted(keys, key=lambda n: int(n[len("keyinput"):]))


def functional_signal_probs(
    circuit: Union[Netlist, MappedCircuit],
    num_patterns: int = 512,
    seed: int = 0,
) -> dict[str, float]:
    """Per-net signal probabilities for the locality feature column.

    One packed bit-parallel simulation pass over the whole circuit; every
    locality then reads its nets' probabilities from the shared map.
    Mapped circuits are profiled through their primitive-netlist view so
    net names line up with the gate graph.
    """
    netlist = (
        circuit if isinstance(circuit, Netlist) else circuit.to_netlist()
    )
    return signal_probabilities(netlist, num_patterns=num_patterns, seed=seed)


def extract_localities(
    circuit: Union[Netlist, MappedCircuit],
    key_nets: Sequence[str],
    labels: Sequence[int],
    hops: int = 3,
    max_nodes: int = 60,
    signal_probs: Optional[Mapping[str, float]] = None,
) -> list[GraphData]:
    """Extract one labeled locality per key input."""
    if len(key_nets) != len(labels):
        raise AttackError("key_nets and labels length mismatch")
    extractor = LocalityExtractor(
        circuit, hops=hops, max_nodes=max_nodes, signal_probs=signal_probs
    )
    return [
        extractor.extract(net, label) for net, label in zip(key_nets, labels)
    ]
