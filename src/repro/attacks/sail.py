"""SAIL-style attack: reverting synthesis-induced local changes.

SAIL (Chakraborty et al., AsianHOST 2018) targets XOR/XNOR locking by
learning how synthesis locally transforms the logic around a key gate, then
reverting the transformation to recover the pre-synthesis gate type (which
binds the key bit: XOR -> 0, XNOR -> 1 before bubble pushing).

This implementation follows SAIL's tensor flavour: each key-gate locality is
encoded as an *ordered* sequence of gate-type codes along the shortest-first
BFS of the neighbourhood (capturing "which gate is where" rather than the
bag-of-gates histogram SnapShot uses), and an MLP maps the sequence to the
key bit.  Training data comes from the same self-referencing relock +
resynthesize loop as OMLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import AttackResult
from repro.attacks.subgraph import _TYPE_SLOTS, LocalityExtractor, victim_key_inputs
from repro.errors import AttackError
from repro.locking.key import Key
from repro.ml.autograd import Tensor, cross_entropy
from repro.ml.data import GraphData
from repro.ml.layers import Mlp
from repro.ml.optim import Adam
from repro.utils.rng import derive_seed, make_rng


def sequence_encoding(graph: GraphData, max_gates: int) -> np.ndarray:
    """Ordered locality encoding: one one-hot type block per BFS position.

    Positions beyond the locality size stay zero (padding), so localities of
    different sizes share one fixed-length representation.
    """
    num_types = len(_TYPE_SLOTS)
    vector = np.zeros(max_gates * num_types)
    for position, row in enumerate(graph.features[:max_gates]):
        type_index = int(row[:num_types].argmax())
        vector[position * num_types + type_index] = 1.0
    return vector


@dataclass
class SailAttack:
    """Sequence-encoded locality classifier (SAIL-style baseline)."""

    hops: int = 3
    max_gates: int = 24
    hidden: int = 64
    epochs: int = 80
    lr: float = 3e-3
    seed: int = 0

    def __post_init__(self) -> None:
        self._model: Optional[Mlp] = None

    def train(self, graphs: Sequence[GraphData]) -> None:
        if not graphs:
            raise AttackError("SAIL training requires localities")
        features = np.vstack(
            [sequence_encoding(g, self.max_gates) for g in graphs]
        )
        labels = np.array([g.label for g in graphs], dtype=np.int64)
        self._model = Mlp(
            features.shape[1],
            self.hidden,
            2,
            seed=derive_seed(self.seed, "sail"),
        )
        optimizer = Adam(self._model.parameters(), lr=self.lr)
        rng = make_rng(derive_seed(self.seed, "order"))
        for _epoch in range(self.epochs):
            order = rng.permutation(len(labels))
            for start in range(0, len(labels), 64):
                block = order[start: start + 64]
                optimizer.zero_grad()
                loss = cross_entropy(
                    self._model(Tensor(features[block])), labels[block]
                )
                loss.backward()
                optimizer.step()

    def attack(
        self,
        circuit,
        true_key: Optional[Key] = None,
        key_nets: Optional[Sequence[str]] = None,
    ) -> AttackResult:
        if self._model is None:
            raise AttackError("SAIL model is not trained")
        key_nets = (
            list(key_nets) if key_nets is not None else victim_key_inputs(circuit)
        )
        if not key_nets:
            raise AttackError("circuit has no key inputs to attack")
        extractor = LocalityExtractor(
            circuit, hops=self.hops, max_nodes=self.max_gates
        )
        features = np.vstack(
            [
                sequence_encoding(extractor.extract(net, 0), self.max_gates)
                for net in key_nets
            ]
        )
        logits = self._model(Tensor(features)).data
        shifted = logits - logits.max(axis=-1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=-1, keepdims=True)
        return AttackResult(
            predicted_bits=tuple(int(b) for b in logits.argmax(axis=-1)),
            true_key=true_key,
            confidence=tuple(float(p) for p in probs.max(axis=-1)),
            attack_name="SAIL",
        )
