"""OMLA: oracle-less ML attack via GNN subgraph classification.

The attack (Alrahis et al., IEEE TCAS-II 2022) proceeds in three steps:

1. **self-referencing data generation** — re-lock the netlist under attack
   with key bits the attacker chose, re-synthesize with the defender's
   recipe, and extract labeled key-gate localities;
2. **training** — fit a GIN subgraph classifier on those localities;
3. **inference** — extract the localities of the *victim* key inputs and
   predict their key bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import AttackResult
from repro.attacks.subgraph import (
    FEATURE_DIM,
    extract_localities,
    functional_signal_probs,
    victim_key_inputs,
)
from repro.errors import AttackError
from repro.locking.key import Key
from repro.locking.relock import relock
from repro.mapping.mapper import MappedCircuit
from repro.ml.data import GraphData, pack_graphs
from repro.ml.gnn import GinClassifier
from repro.ml.train import TrainConfig, train_classifier
from repro.netlist.netlist import Netlist
from repro.synth.engine import synthesize_and_map
from repro.synth.recipe import Recipe
from repro.utils.rng import derive_seed


@dataclass
class OmlaConfig:
    """Attack hyper-parameters (scaled-down OMLA defaults)."""

    hops: int = 3
    max_nodes: int = 60
    hidden: int = 32
    num_layers: int = 3
    epochs: int = 40
    batch_size: int = 64
    lr: float = 5e-3
    relock_key_bits: int = 32      # key gates added per relock round
    num_relocks: int = 4           # rounds of relock + resynthesize
    seed: int = 0
    #: Fill the locality feature column with simulated per-net signal
    #: probabilities (one packed pass per circuit).  Off by default so the
    #: structural-only baseline stays the reference configuration.
    functional_features: bool = False
    feature_patterns: int = 512    # patterns per signal-probability pass


class OmlaAttack:
    """A trainable OMLA attacker bound to one synthesis recipe."""

    def __init__(self, recipe: Recipe, config: Optional[OmlaConfig] = None):
        self.recipe = recipe
        self.config = config if config is not None else OmlaConfig()
        self.model: Optional[GinClassifier] = None
        self.training_graphs: list[GraphData] = []

    # -- data generation --------------------------------------------------

    def generate_training_data(
        self,
        locked_netlist: Netlist,
        num_samples: Optional[int] = None,
        recipes: Optional[Sequence[Recipe]] = None,
        seed: Optional[int] = None,
    ) -> list[GraphData]:
        """Self-referencing training data from relock + resynthesize rounds.

        ``recipes`` optionally varies the synthesis recipe per round (used
        to build the ``M_random`` and adversarial ``M*`` training sets);
        by default every round uses the attack's bound recipe.
        """
        config = self.config
        seed = config.seed if seed is None else seed
        graphs: list[GraphData] = []
        round_index = 0
        while True:
            if num_samples is not None and len(graphs) >= num_samples:
                break
            if num_samples is None and round_index >= config.num_relocks:
                break
            round_seed = derive_seed(seed, "relock", round_index)
            relocked = relock(
                locked_netlist,
                key_size=config.relock_key_bits,
                seed=round_seed,
            )
            recipe = (
                recipes[round_index % len(recipes)]
                if recipes
                else self.recipe
            )
            _netlist, mapped = synthesize_and_map(relocked.netlist, recipe)
            graphs.extend(
                extract_localities(
                    mapped,
                    relocked.key_input_names,
                    relocked.key.bits,
                    hops=config.hops,
                    max_nodes=config.max_nodes,
                    signal_probs=self._signal_probs(mapped),
                )
            )
            round_index += 1
        if num_samples is not None:
            graphs = graphs[:num_samples]
        return graphs

    def _signal_probs(self, circuit) -> Optional[dict[str, float]]:
        """The shared signal-probability map, when functional features are on."""
        if not self.config.functional_features:
            return None
        return functional_signal_probs(
            circuit,
            num_patterns=self.config.feature_patterns,
            seed=derive_seed(self.config.seed, "signal-probs"),
        )

    # -- training -----------------------------------------------------------

    def train(
        self,
        graphs: Sequence[GraphData],
        epochs: Optional[int] = None,
        extra_graphs_provider=None,
    ) -> GinClassifier:
        """Fit the GIN classifier; stores and returns the model."""
        if not graphs:
            raise AttackError("OMLA training requires labeled localities")
        config = self.config
        self.model = GinClassifier(
            in_features=FEATURE_DIM,
            hidden=config.hidden,
            num_layers=config.num_layers,
            seed=derive_seed(config.seed, "model"),
        )
        self.training_graphs = list(graphs)
        train_classifier(
            self.model,
            self.training_graphs,
            TrainConfig(
                epochs=epochs if epochs is not None else config.epochs,
                batch_size=config.batch_size,
                lr=config.lr,
                seed=derive_seed(config.seed, "train"),
            ),
            extra_graphs_provider=extra_graphs_provider,
        )
        return self.model

    # -- inference -------------------------------------------------------------

    def predict_bits(
        self, circuit, key_nets: Optional[Sequence[str]] = None
    ) -> tuple[list[int], list[float]]:
        """Predicted key bits (and confidences) for ``key_nets``.

        ``circuit`` may be a primitive netlist or a mapped circuit; mapped
        views carry the richer cell vocabulary the model was trained on.
        """
        if self.model is None:
            raise AttackError("attack model is not trained")
        key_nets = (
            list(key_nets) if key_nets is not None else victim_key_inputs(circuit)
        )
        if not key_nets:
            raise AttackError("circuit has no key inputs to attack")
        graphs = extract_localities(
            circuit,
            key_nets,
            [0] * len(key_nets),  # placeholder labels
            hops=self.config.hops,
            max_nodes=self.config.max_nodes,
            signal_probs=self._signal_probs(circuit),
        )
        batch = pack_graphs(graphs)
        probabilities = self.model.predict_proba(batch)
        bits = probabilities.argmax(axis=-1)
        confidence = probabilities.max(axis=-1)
        return [int(b) for b in bits], [float(c) for c in confidence]

    def attack(self, circuit, true_key: Optional[Key] = None) -> AttackResult:
        """Run inference against the victim key inputs of ``circuit``."""
        bits, confidence = self.predict_bits(circuit)
        return AttackResult(
            predicted_bits=tuple(bits),
            true_key=true_key,
            confidence=tuple(confidence),
            attack_name="OMLA",
            details={"recipe": str(self.recipe)},
        )

    def accuracy_on(self, circuit, true_key: Key) -> float:
        """Convenience: attack accuracy against a circuit with known key."""
        return self.attack(circuit, true_key).accuracy
