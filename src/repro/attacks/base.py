"""Common attack-result container and accuracy accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import AttackError
from repro.locking.key import Key


@dataclass
class AttackResult:
    """Outcome of one attack run against one locked circuit.

    ``accuracy`` follows the paper's definition: correctly predicted key
    bits over total key bits.  Bits the attack abstains on (``prediction ==
    -1``) count as incorrect, exactly as in footnote 2.
    """

    predicted_bits: tuple[int, ...]
    true_key: Optional[Key] = None
    confidence: tuple[float, ...] = ()
    attack_name: str = ""
    details: dict = field(default_factory=dict)

    @property
    def key_size(self) -> int:
        return len(self.predicted_bits)

    @property
    def accuracy(self) -> float:
        if self.true_key is None:
            raise AttackError("accuracy requires the true key")
        if len(self.true_key) != len(self.predicted_bits):
            raise AttackError("prediction/key size mismatch")
        correct = sum(
            1
            for predicted, truth in zip(self.predicted_bits, self.true_key.bits)
            if predicted == truth
        )
        return correct / len(self.predicted_bits)

    def summary(self) -> str:
        acc = f"{100.0 * self.accuracy:.2f}%" if self.true_key else "n/a"
        return (
            f"{self.attack_name or 'attack'}: {self.key_size} bits, "
            f"accuracy {acc}"
        )


def majority_baseline_accuracy(key: Key) -> float:
    """Accuracy of always guessing the key's majority bit (sanity floor)."""
    ones = sum(key.bits)
    return max(ones, len(key) - ones) / len(key)
