"""SCOPE: synthesis-based constant-propagation attack (unsupervised).

For every key input and each hypothesised value, the attack ties the input
to that constant, runs synthesis, and collects report features (gate count,
depth, mapped area, XOR count...).  The per-bit feature *delta* between the
two hypotheses is projected on the first principal component of all deltas;
the sign of the projection decides the bit.  No training labels are used —
exactly SCOPE's unsupervised setting — which is also why its accuracy
scatters around 50% on resilient designs (paper Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.aig.aig import Aig, lit_not
from repro.aig.build import aig_from_netlist
from repro.attacks.base import AttackResult
from repro.errors import AttackError
from repro.locking.key import Key
from repro.mapping.mapper import map_aig
from repro.netlist.netlist import Netlist
from repro.synth.engine import apply_recipe
from repro.synth.recipe import Recipe


def _tie_key_input(aig: Aig, key_net: str, value: int) -> Aig:
    """Copy of ``aig`` with primary input ``key_net`` tied to a constant."""
    out = Aig(aig.name)
    mapping = {0: 0}
    for var, name in zip(aig.pi_vars(), aig.pi_names()):
        if name == key_net:
            mapping[var] = 1 if value else 0
        else:
            mapping[var] = out.add_pi(name)
    for var in aig.topological_ands():
        f0, f1 = aig.fanins(var)
        l0 = mapping[f0 >> 1] ^ (f0 & 1)
        l1 = mapping[f1 >> 1] ^ (f1 & 1)
        mapping[var] = out.add_and(l0, l1)
    for po, name in zip(aig.po_lits(), aig.po_names()):
        out.add_po(mapping[po >> 1] ^ (po & 1), name)
    return out


def _report_features(aig: Aig) -> np.ndarray:
    """Synthesis-report feature vector (the data SCOPE mines)."""
    mapped = map_aig(aig)
    histogram = mapped.cell_histogram()
    return np.array(
        [
            aig.num_ands(),
            aig.depth(),
            mapped.total_area(),
            mapped.num_cells(),
            histogram.get("XOR2", 0) + histogram.get("XNOR2", 0),
            histogram.get("INV", 0),
            histogram.get("NAND2", 0) + histogram.get("NOR2", 0),
        ],
        dtype=np.float64,
    )


@dataclass
class ScopeAttack:
    """SCOPE bound to one analysis recipe (defaults to a light script)."""

    recipe: Optional[Recipe] = None

    def __post_init__(self) -> None:
        if self.recipe is None:
            self.recipe = Recipe.parse("b; rw; rf; b")

    def attack(
        self,
        netlist: Netlist,
        true_key: Optional[Key] = None,
        key_nets: Optional[Sequence[str]] = None,
    ) -> AttackResult:
        key_nets = (
            list(key_nets) if key_nets is not None else netlist.key_inputs
        )
        if not key_nets:
            raise AttackError("netlist has no key inputs to attack")
        aig = aig_from_netlist(netlist)
        deltas = []
        for key_net in key_nets:
            tied0 = apply_recipe(_tie_key_input(aig, key_net, 0), self.recipe)
            tied1 = apply_recipe(_tie_key_input(aig, key_net, 1), self.recipe)
            deltas.append(_report_features(tied0) - _report_features(tied1))
        matrix = np.vstack(deltas)
        centred = matrix - matrix.mean(axis=0, keepdims=True)
        scale = centred.std(axis=0)
        scale[scale == 0.0] = 1.0
        centred /= scale
        # First principal component via SVD.
        _u, _s, vt = np.linalg.svd(centred, full_matrices=False)
        projection = centred @ vt[0]
        # Fixed sign convention: orient the component so that a positive
        # projection means "tying to 0 simplified more", guessed as bit 1.
        if vt[0].sum() < 0:
            projection = -projection
        bits = tuple(int(p > 0) for p in projection)
        confidence = tuple(float(abs(p)) for p in projection)
        return AttackResult(
            predicted_bits=bits,
            true_key=true_key,
            confidence=confidence,
            attack_name="SCOPE",
            details={"recipe": str(self.recipe)},
        )
