"""Attacks on logic locking: the oracle-less family plus the SAT attack.

Oracle-less (the paper's threat models — they see the locked, synthesized
netlist and the defender's recipe, never a functional chip):

* :mod:`repro.attacks.omla` — GNN subgraph classification around key gates
  (OMLA, the paper's primary attack).
* :mod:`repro.attacks.scope` — unsupervised constant-propagation /
  synthesis-report analysis (SCOPE).
* :mod:`repro.attacks.redundancy` — testability analysis: the key value
  hypothesis producing fewer untestable faults is inferred as correct.
* :mod:`repro.attacks.snapshot` — SnapShot-style MLP on flattened locality
  encodings (extra baseline).
* :mod:`repro.attacks.sail` — SAIL-style local-structure recovery.

Oracle-guided (the classic contrast class the paper positions against):

* :mod:`repro.attacks.sat_attack` — the DIP-loop SAT attack, built on the
  :mod:`repro.sat` subsystem and an unlocked black-box oracle; its
  :class:`~repro.attacks.sat_attack.DipLoop` core is the reusable
  miter/DIP machinery.
* :mod:`repro.attacks.appsat` — the AppSAT approximate variant: periodic
  random-query error estimation with an early exit, the standard response
  to point-function defenses (:mod:`repro.defenses`).

:data:`ATTACK_REGISTRY` maps canonical names to attack classes;
:func:`get_attack` is the by-name lookup the CLI's ``sat-attack`` command
(and downstream tooling) instantiates from.
"""

from repro.attacks.base import AttackResult
from repro.attacks.subgraph import LocalityExtractor, extract_localities
from repro.attacks.omla import OmlaAttack, OmlaConfig
from repro.attacks.scope import ScopeAttack
from repro.attacks.redundancy import RedundancyAttack
from repro.attacks.snapshot import SnapShotAttack
from repro.attacks.sail import SailAttack
from repro.attacks.sat_attack import (
    DipLoop,
    SatAttack,
    SatAttackConfig,
    oracle_from_key,
)
from repro.attacks.appsat import AppSatAttack, AppSatConfig

from repro.errors import AttackError

ATTACK_REGISTRY: dict[str, type] = {
    "omla": OmlaAttack,
    "scope": ScopeAttack,
    "redundancy": RedundancyAttack,
    "snapshot": SnapShotAttack,
    "sail": SailAttack,
    "sat": SatAttack,
    "appsat": AppSatAttack,
}

def get_attack(name: str) -> type:
    """Look up an attack class by canonical name."""
    try:
        return ATTACK_REGISTRY[name]
    except KeyError:
        raise AttackError(
            f"unknown attack {name!r}; available: {sorted(ATTACK_REGISTRY)}"
        ) from None


__all__ = [
    "AttackResult",
    "LocalityExtractor",
    "extract_localities",
    "OmlaAttack",
    "OmlaConfig",
    "ScopeAttack",
    "RedundancyAttack",
    "SnapShotAttack",
    "SailAttack",
    "DipLoop",
    "SatAttack",
    "SatAttackConfig",
    "AppSatAttack",
    "AppSatConfig",
    "oracle_from_key",
    "ATTACK_REGISTRY",
    "get_attack",
]
