"""Oracle-less attacks on logic locking (the paper's threat models).

* :mod:`repro.attacks.omla` — GNN subgraph classification around key gates
  (OMLA, the paper's primary attack).
* :mod:`repro.attacks.scope` — unsupervised constant-propagation /
  synthesis-report analysis (SCOPE).
* :mod:`repro.attacks.redundancy` — testability analysis: the key value
  hypothesis producing fewer untestable faults is inferred as correct.
* :mod:`repro.attacks.snapshot` — SnapShot-style MLP on flattened locality
  encodings (extra baseline).

All attacks are *oracle-less*: they see the locked, synthesized netlist and
the defender's synthesis recipe, never a functional chip.
"""

from repro.attacks.base import AttackResult
from repro.attacks.subgraph import LocalityExtractor, extract_localities
from repro.attacks.omla import OmlaAttack, OmlaConfig
from repro.attacks.scope import ScopeAttack
from repro.attacks.redundancy import RedundancyAttack
from repro.attacks.snapshot import SnapShotAttack

__all__ = [
    "AttackResult",
    "LocalityExtractor",
    "extract_localities",
    "OmlaAttack",
    "OmlaConfig",
    "ScopeAttack",
    "RedundancyAttack",
    "SnapShotAttack",
]
