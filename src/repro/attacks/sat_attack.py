"""The oracle-guided SAT attack on logic locking (Subramanyan et al., 2015).

This is the *oracle-guided* counterpart to the oracle-less ML family the
ALMOST paper defends against: the attacker holds the locked netlist **and**
a black-box functional chip (the oracle) and runs the classic DIP loop:

1. encode the locked circuit twice over shared functional inputs with two
   independent key vectors, and assert (under an activation assumption)
   that some output differs — a satisfying assignment is a *distinguishing
   input pattern* (DIP): an input on which the two candidate keys disagree;
2. query the oracle on the DIP and pin both circuit copies to the observed
   outputs, eliminating every key inconsistent with that I/O observation;
3. repeat until UNSAT — no DIP remains, so all surviving keys are
   functionally equivalent — then drop the activation assumption and read
   any surviving key from the solver model.

The miter/DIP machinery lives in :class:`DipLoop` so attack variants can
drive it differently: :class:`SatAttack` here runs it to UNSAT (exact
recovery), :class:`repro.attacks.appsat.AppSatAttack` interleaves random
query-based error estimation and exits early with an approximate key — the
difference that matters against point-function defenses
(:mod:`repro.defenses`), where exact convergence needs exponentially many
DIPs but an approximate key is a few queries away.

The incremental CDCL solver keeps its learned clauses across iterations;
the activation literal is what lets the same solver instance alternate
between "find a DIP" and "give me a surviving key".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from repro.attacks.base import AttackResult
from repro.errors import AttackError
from repro.locking.key import Key, KeyOracle, oracle_outputs, oracle_outputs_batch
from repro.locking.rll import LockedCircuit
from repro.netlist.netlist import Netlist
from repro.obs import metrics as _metrics
from repro.obs.trace import get_tracer
from repro.sat.cnf import Cnf, add_xor_clauses, tseitin_netlist
from repro.sat.solver import CdclSolver

Oracle = Callable[[np.ndarray], np.ndarray]

#: Solver counters sampled into each per-iteration trace entry.
_TRACE_COUNTERS = ("conflicts", "decisions", "propagations", "restarts")

#: Solver stats that are gauges (current level), not monotone counters —
#: these are read from the live solver instead of summed across the
#: retired solvers a cold-start loop burns through.
_GAUGE_STATS = ("learned_kept",)


def oracle_from_key(locked: Netlist, key: Key) -> Oracle:
    """Black-box oracle simulating the locked netlist under the true key.

    Patterns follow ``locked.functional_inputs`` order; outputs follow
    ``locked.outputs`` order — the interface an unlocked chip on a tester
    would expose.  The returned callable is a
    :class:`~repro.locking.key.KeyOracle`, which the loop recognises to
    batch candidate-key evaluation into the oracle's own packed pass.
    """
    return KeyOracle(locked, key)


def resolve_oracle(
    locked: Union[Netlist, LockedCircuit],
    oracle: Optional[Oracle],
    true_key: Optional[Key],
) -> tuple[Netlist, Oracle, Optional[Key]]:
    """Normalize the (netlist, oracle, true key) triple attacks start from.

    ``locked`` may be a bare netlist (then ``oracle`` is required) or a
    :class:`LockedCircuit`, whose own key builds the oracle — the
    defender's netlist+key stand in for the physical unlocked chip.
    """
    if isinstance(locked, LockedCircuit):
        netlist = locked.netlist
        if oracle is None:
            oracle = oracle_from_key(netlist, locked.key)
        if true_key is None:
            true_key = locked.key
    else:
        netlist = locked
    if oracle is None:
        raise AttackError("SAT attack needs an oracle (or a LockedCircuit)")
    # Missing keyinput* pins are DipLoop's invariant; it raises on them.
    return netlist, oracle, true_key


class DipLoop:
    """Reusable miter/DIP core both SAT-family attacks drive.

    Owns the double encoding, the activation-gated miter constraint, the
    solver and the oracle bookkeeping.  Per-iteration solver effort
    (conflict/decision/propagation deltas and wall-clock time) is
    recorded in :attr:`trace` so callers can surface query-complexity
    curves without re-running anything.

    ``backend`` selects the solver discipline:

    * ``"incremental"`` (default) — one :class:`CdclSolver` lives for the
      whole loop; learned clauses, activities and saved phases carry over
      every ``find_dip``/``extract_key``/``key_is_unique`` call.
    * ``"cold"`` — every public solve entry point rebuilds a fresh solver
      from the accumulated clauses, the from-scratch re-solve discipline
      the original attack implementations used.  This is the reference
      arm the ``BENCH_sat`` comparison measures the incremental backend
      against; solver counters are aggregated across the retired solvers
      so traces stay comparable.

    ``canonical_dips=True`` makes every extracted model lex-minimal over
    its variables of interest (functional inputs for DIPs, key inputs for
    keys) via assumption probing.  The lex-min model of a constraint set
    is unique — learned clauses are implied, so they never change it —
    which pins both backends to bit-identical DIP sequences and keys, the
    property the cross-backend equivalence regression asserts.
    """

    def __init__(
        self,
        netlist: Netlist,
        oracle: Oracle,
        backend: str = "incremental",
        canonical_dips: bool = False,
    ):
        if not netlist.key_inputs:
            raise AttackError(
                "design has no keyinput* pins; nothing to recover"
            )
        if backend not in ("incremental", "cold"):
            raise AttackError(f"unknown DipLoop backend {backend!r}")
        self.netlist = netlist
        self.oracle = oracle
        self.backend = backend
        self.canonical_dips = canonical_dips
        self.key_nets = netlist.key_inputs
        self.functional = netlist.functional_inputs
        self.iterations = 0
        self.oracle_queries = 0
        self.trace: list[dict] = []
        self.started = time.perf_counter()
        self._iter_started = self.started
        self._iter_counters = dict.fromkeys(_TRACE_COUNTERS, 0)

        cnf = Cnf()
        self._copy_a = tseitin_netlist(netlist, cnf)
        self._shared = {
            net: self._copy_a.inputs[net] for net in self.functional
        }
        self._copy_b = tseitin_netlist(netlist, cnf, input_vars=self._shared)

        # Activation literal gating the "outputs differ" miter constraint.
        self.activate = cnf.new_var()
        diffs = []
        for net in netlist.outputs:
            diff = cnf.new_var()
            add_xor_clauses(
                cnf, diff, self._copy_a.outputs[net], self._copy_b.outputs[net]
            )
            diffs.append(diff)
        cnf.add_clause((-self.activate, *diffs))
        # The clause/variable log the cold backend rebuilds from; the
        # incremental backend only ever appends to its one solver.
        self._all_clauses: list[tuple[int, ...]] = [
            tuple(clause) for clause in cnf.clauses
        ]
        self._num_vars = cnf.num_vars
        self._stats_base: dict[str, int] = {}
        self.solver = CdclSolver(cnf)

    # -- solver discipline -------------------------------------------------

    def _begin_call(self) -> None:
        """Cold backend: retire the current solver, rebuild from scratch."""
        if self.backend != "cold":
            return
        for name, value in self.solver.stats.items():
            if name not in _GAUGE_STATS:
                self._stats_base[name] = self._stats_base.get(name, 0) + value
        solver = CdclSolver()
        solver.ensure_vars(self._num_vars)
        for clause in self._all_clauses:
            solver.add_clause(clause)
        self.solver = solver

    def _add_clause(self, clause: tuple[int, ...]) -> None:
        """Append a permanent clause: to the log and the live solver."""
        self._all_clauses.append(tuple(clause))
        self.solver.add_clause(clause)

    def solver_stats(self) -> dict[str, int]:
        """Aggregate solver counters (including any retired cold solvers)."""
        stats = dict(self.solver.stats)
        for name, value in self._stats_base.items():
            if name not in _GAUGE_STATS:
                stats[name] = stats.get(name, 0) + value
        return stats

    def _lex_min_model(
        self,
        model: dict[int, bool],
        assumptions: list[int],
        variables: list[int],
    ) -> dict[int, bool]:
        """Greedy lex-min over ``variables`` by assumption probing.

        A variable already 0 in the current model stays 0 for free; a 1
        is probed with a forced 0 and kept at 1 only if that is UNSAT.
        """
        fixed = list(assumptions)
        for var in variables:
            if not model[var]:
                fixed.append(-var)
                continue
            probe = self.solver.solve(fixed + [-var])
            if probe.satisfiable:
                assert probe.model is not None
                model = probe.model
                fixed.append(-var)
            else:
                fixed.append(var)
        return model

    # -- the loop proper ---------------------------------------------------

    def find_dip(self) -> Optional[np.ndarray]:
        """Next distinguishing input pattern, or None once none remains.

        ``None`` is the convergence proof: every surviving key pair agrees
        on every input.  A globally unsatisfiable miter before any
        observation indicates a broken encoding and raises.
        """
        # Snapshot the counters *before* the miter solve (and, on the cold
        # backend, before the rebuild) so the matching observe() call can
        # attribute this DIP's search effort to its trace entry.
        self._iter_started = time.perf_counter()
        stats = self.solver_stats()
        self._iter_counters = {name: stats[name] for name in _TRACE_COUNTERS}
        self._begin_call()
        result = self.solver.solve([self.activate])
        if not result.satisfiable:
            if not result.assumption_failed and self.iterations == 0:
                raise AttackError("miter unsatisfiable before any DIP")
            return None
        assert result.model is not None
        model = result.model
        if self.canonical_dips:
            model = self._lex_min_model(
                model,
                [self.activate],
                [self._shared[net] for net in self.functional],
            )
        return np.array(
            [int(model[self._shared[net]]) for net in self.functional],
            dtype=np.uint8,
        )

    def observe(self, pattern: np.ndarray) -> np.ndarray:
        """Query the oracle on ``pattern`` and pin both copies to the reply.

        Returns the oracle response; increments the iteration counter and
        appends a trace entry with the solver-effort deltas this DIP cost
        (spanning the :meth:`find_dip` solve that produced the pattern).
        """
        response = self.query_oracle(pattern.reshape(1, -1))[0]
        self.add_observation(pattern, response)
        self.iterations += 1
        _metrics.inc("dip.iterations")
        entry = {
            "iteration": self.iterations,
            "elapsed_s": round(time.perf_counter() - self._iter_started, 6),
        }
        stats = self.solver_stats()
        for name in _TRACE_COUNTERS:
            entry[name] = stats[name] - self._iter_counters[name]
        self.trace.append(entry)
        return response

    def query_oracle(self, patterns: np.ndarray) -> np.ndarray:
        """Raw oracle access with query accounting (one query per pattern)."""
        count = int(patterns.shape[0])
        self.oracle_queries += count
        _metrics.inc("dip.oracle_queries", count)
        return self.oracle(patterns)

    def compare_key(
        self, candidate: tuple[int, ...], patterns: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Oracle and candidate-key outputs on ``patterns``.

        Counts one oracle query per pattern, like :meth:`query_oracle`.
        When the oracle is a :class:`~repro.locking.key.KeyOracle` over
        this loop's netlist — the common case, built by
        :func:`resolve_oracle` from a ``LockedCircuit`` — the true key and
        the candidate ride one packed simulation pass; a foreign oracle
        falls back to a separate call plus a candidate simulation, with a
        bit-identical result either way.
        """
        count = int(patterns.shape[0])
        self.oracle_queries += count
        _metrics.inc("dip.oracle_queries", count)
        if (
            isinstance(self.oracle, KeyOracle)
            and self.oracle.netlist is self.netlist
        ):
            stacked = oracle_outputs_batch(
                self.netlist, [self.oracle.key, Key(candidate)], patterns
            )
            return stacked[0], stacked[1]
        expected = self.oracle(patterns)
        predicted = oracle_outputs(self.netlist, Key(candidate), patterns)
        return expected, predicted

    def add_observation(
        self, pattern: np.ndarray, response: np.ndarray
    ) -> None:
        """Constrain both key copies to reproduce one I/O observation.

        Used by :meth:`observe` for DIPs and directly by AppSAT to feed
        back disagreeing *random* queries without spending a miter solve.
        """
        self._pin_observation(pattern, response, self._copy_a)
        self._pin_observation(pattern, response, self._copy_b)

    def extract_key(self) -> Optional[tuple[int, ...]]:
        """A key consistent with every observation so far (miter disabled).

        ``None`` means no key survives — possible only with an
        inconsistent oracle.  Before convergence this is the *candidate*
        key AppSAT error-estimates; after convergence it is provably
        equivalent to the oracle.
        """
        self._begin_call()
        result = self.solver.solve([-self.activate])
        if not result.satisfiable:
            return None
        assert result.model is not None
        model = result.model
        if self.canonical_dips:
            model = self._lex_min_model(
                model,
                [-self.activate],
                [self._copy_a.inputs[net] for net in self.key_nets],
            )
        return tuple(
            int(model[self._copy_a.inputs[net]]) for net in self.key_nets
        )

    def key_is_unique(self, key_bits: tuple[int, ...]) -> bool:
        """True when no *other* key satisfies the accumulated observations.

        Blocks ``key_bits`` on the first copy's key variables and re-solves
        under the deactivated miter; a model is a different surviving key.
        After convergence the survivors are functionally equivalent, but
        they are still distinct keys — a table must not call them unique.
        The blocking clause is permanent, so call this after the loop is
        otherwise done with the solver.
        """
        self._begin_call()
        blocking = tuple(
            -self._copy_a.inputs[net] if bit else self._copy_a.inputs[net]
            for net, bit in zip(self.key_nets, key_bits)
        )
        self._add_clause(blocking)
        return not self.solver.solve([-self.activate]).satisfiable

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self.started

    def details(self) -> dict:
        """The instrumentation block shared by every DipLoop-based attack."""
        return {
            "iterations": self.iterations,
            "oracle_queries": self.oracle_queries,
            "trace": list(self.trace),
            "elapsed_s": self.elapsed_s,
            "backend": self.backend,
            "solver": self.solver_stats(),
        }

    def _pin_observation(
        self, pattern: np.ndarray, response: np.ndarray, key_copy
    ) -> None:
        """Add a circuit copy constrained to one oracle observation.

        The fresh copy shares ``key_copy``'s key variables, its functional
        inputs are pinned to the DIP and its outputs to the oracle response,
        so every future model's key must reproduce this I/O pair.
        """
        shared = {net: key_copy.inputs[net] for net in self.key_nets}
        extra = Cnf(self._num_vars)
        observed = tseitin_netlist(self.netlist, extra, input_vars=shared)
        self._num_vars = max(self._num_vars, extra.num_vars)
        self.solver.ensure_vars(extra.num_vars)
        for clause in extra.clauses:
            self._add_clause(tuple(clause))
        for net, bit in zip(self.functional, pattern):
            var = observed.inputs[net]
            self._add_clause((var if bit else -var,))
        for net, bit in zip(self.netlist.outputs, response):
            lit = observed.outputs[net]
            self._add_clause((lit if bit else -lit,))


@dataclass
class SatAttackConfig:
    """Budget and solver-discipline knobs for the DIP loop."""

    max_iterations: int = 512
    #: "incremental" (persistent solver) or "cold" (fresh solver per call);
    #: see :class:`DipLoop`.
    backend: str = "incremental"
    #: Lex-minimal DIPs/keys — the cross-backend determinism contract.
    canonical_dips: bool = False


class SatAttack:
    """Oracle-guided SAT key recovery; API-compatible with the other attacks."""

    name = "sat"

    def __init__(self, config: Optional[SatAttackConfig] = None):
        self.config = config if config is not None else SatAttackConfig()

    def attack(
        self,
        locked: Union[Netlist, LockedCircuit],
        oracle: Optional[Oracle] = None,
        true_key: Optional[Key] = None,
    ) -> AttackResult:
        """Run the DIP loop to convergence and return the recovered key.

        On DIP-budget exhaustion the attack does **not** raise: it returns
        a partial result flagged ``details["budget_exhausted"] = True``
        whose key merely satisfies the observations made so far — the
        expected outcome against point-function defenses, and the shape
        grid runs rely on so one resilient cell cannot kill a whole sweep.
        """
        netlist, oracle, true_key = resolve_oracle(locked, oracle, true_key)
        with get_tracer().span(
            "attack.sat", circuit=netlist.name, keys=len(netlist.key_inputs)
        ) as span:
            loop = DipLoop(
                netlist,
                oracle,
                backend=self.config.backend,
                canonical_dips=self.config.canonical_dips,
            )
            budget_exhausted = False
            dips: list[dict[str, int]] = []
            while True:
                pattern = loop.find_dip()
                if pattern is None:
                    break
                if loop.iterations >= self.config.max_iterations:
                    budget_exhausted = True
                    break
                loop.observe(pattern)
                dips.append(
                    {net: int(bit) for net, bit in zip(loop.functional, pattern)}
                )
            span.set(
                iterations=loop.iterations, budget_exhausted=budget_exhausted
            )
            predicted = loop.extract_key()
        if predicted is None:
            raise AttackError(
                "no key survives the accumulated I/O constraints "
                "(inconsistent oracle?)"
            )
        # A budget-exhausted loop just found a DIP, i.e. two surviving keys
        # that disagree — the candidate is provably not unique.
        key_unique = (
            False if budget_exhausted else loop.key_is_unique(predicted)
        )
        confidence = 0.5 if budget_exhausted else 1.0
        details = loop.details()
        details.update(
            {
                "key_unique": key_unique,
                "budget_exhausted": budget_exhausted,
                "exact": not budget_exhausted,
                "dips": dips,
            }
        )
        return AttackResult(
            predicted_bits=predicted,
            true_key=true_key,
            confidence=tuple(confidence for _ in predicted),
            attack_name=self.name,
            details=details,
        )
