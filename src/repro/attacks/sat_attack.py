"""The oracle-guided SAT attack on logic locking (Subramanyan et al., 2015).

This is the *oracle-guided* counterpart to the oracle-less ML family the
ALMOST paper defends against: the attacker holds the locked netlist **and**
a black-box functional chip (the oracle) and runs the classic DIP loop:

1. encode the locked circuit twice over shared functional inputs with two
   independent key vectors, and assert (under an activation assumption)
   that some output differs — a satisfying assignment is a *distinguishing
   input pattern* (DIP): an input on which the two candidate keys disagree;
2. query the oracle on the DIP and pin both circuit copies to the observed
   outputs, eliminating every key inconsistent with that I/O observation;
3. repeat until UNSAT — no DIP remains, so all surviving keys are
   functionally equivalent — then drop the activation assumption and read
   any surviving key from the solver model.

The incremental CDCL solver keeps its learned clauses across iterations;
the activation literal is what lets the same solver instance alternate
between "find a DIP" and "give me a surviving key".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from repro.attacks.base import AttackResult
from repro.errors import AttackError
from repro.locking.key import Key, oracle_outputs
from repro.locking.rll import LockedCircuit
from repro.netlist.netlist import Netlist
from repro.sat.cnf import Cnf, add_xor_clauses, tseitin_netlist
from repro.sat.solver import CdclSolver

Oracle = Callable[[np.ndarray], np.ndarray]


def oracle_from_key(locked: Netlist, key: Key) -> Oracle:
    """Black-box oracle simulating the locked netlist under the true key.

    Patterns follow ``locked.functional_inputs`` order; outputs follow
    ``locked.outputs`` order — the interface an unlocked chip on a tester
    would expose.
    """
    def oracle(patterns: np.ndarray) -> np.ndarray:
        return oracle_outputs(locked, key, patterns)

    return oracle


@dataclass
class SatAttackConfig:
    """Budget knobs for the DIP loop."""

    max_iterations: int = 512


class SatAttack:
    """Oracle-guided SAT key recovery; API-compatible with the other attacks."""

    name = "sat"

    def __init__(self, config: Optional[SatAttackConfig] = None):
        self.config = config if config is not None else SatAttackConfig()

    def attack(
        self,
        locked: Union[Netlist, LockedCircuit],
        oracle: Optional[Oracle] = None,
        true_key: Optional[Key] = None,
    ) -> AttackResult:
        """Run the DIP loop and return the recovered key.

        ``locked`` may be a bare netlist (then ``oracle`` is required) or a
        :class:`LockedCircuit`, whose own key builds the oracle — the
        defender's netlist+key stand in for the physical unlocked chip.
        """
        if isinstance(locked, LockedCircuit):
            netlist = locked.netlist
            if oracle is None:
                oracle = oracle_from_key(netlist, locked.key)
            if true_key is None:
                true_key = locked.key
        else:
            netlist = locked
        if oracle is None:
            raise AttackError("SAT attack needs an oracle (or a LockedCircuit)")
        key_nets = netlist.key_inputs
        if not key_nets:
            raise AttackError("design has no keyinput* pins; nothing to recover")
        functional = netlist.functional_inputs

        started = time.perf_counter()
        cnf = Cnf()
        copy_a = tseitin_netlist(netlist, cnf)
        shared = {net: copy_a.inputs[net] for net in functional}
        copy_b = tseitin_netlist(netlist, cnf, input_vars=shared)

        # Activation literal gating the "outputs differ" miter constraint.
        activate = cnf.new_var()
        diffs = []
        for net in netlist.outputs:
            diff = cnf.new_var()
            add_xor_clauses(cnf, diff, copy_a.outputs[net], copy_b.outputs[net])
            diffs.append(diff)
        cnf.add_clause((-activate, *diffs))

        solver = CdclSolver(cnf)
        iterations = 0
        dips: list[dict[str, int]] = []
        while True:
            result = solver.solve([activate])
            if not result.satisfiable:
                if not result.assumption_failed and iterations == 0:
                    # Globally UNSAT before any constraint: broken encoding.
                    raise AttackError("miter unsatisfiable before any DIP")
                break
            if iterations >= self.config.max_iterations:
                raise AttackError(
                    f"DIP budget exhausted after {iterations} iterations"
                )
            iterations += 1
            assert result.model is not None
            pattern = np.array(
                [int(result.model[shared[net]]) for net in functional],
                dtype=np.uint8,
            )
            response = oracle(pattern.reshape(1, -1))[0]
            dips.append(
                {net: int(bit) for net, bit in zip(functional, pattern)}
            )
            self._pin_observation(solver, netlist, pattern, response, copy_a)
            self._pin_observation(solver, netlist, pattern, response, copy_b)

        final = solver.solve([-activate])
        if not final.satisfiable:
            raise AttackError(
                "no key survives the accumulated I/O constraints "
                "(inconsistent oracle?)"
            )
        assert final.model is not None
        predicted = tuple(
            int(final.model[copy_a.inputs[net]]) for net in key_nets
        )
        elapsed = time.perf_counter() - started
        return AttackResult(
            predicted_bits=predicted,
            true_key=true_key,
            confidence=tuple(1.0 for _ in predicted),
            attack_name=self.name,
            details={
                "iterations": iterations,
                "key_unique": True,
                "dips": dips,
                "elapsed_s": elapsed,
                "solver": final.stats,
            },
        )

    @staticmethod
    def _pin_observation(
        solver: CdclSolver,
        netlist: Netlist,
        pattern: np.ndarray,
        response: np.ndarray,
        key_copy,
    ) -> None:
        """Add a circuit copy constrained to one oracle observation.

        The fresh copy shares ``key_copy``'s key variables, its functional
        inputs are pinned to the DIP and its outputs to the oracle response,
        so every future model's key must reproduce this I/O pair.
        """
        functional = netlist.functional_inputs
        shared = {net: key_copy.inputs[net] for net in netlist.key_inputs}
        extra = Cnf(solver.num_vars)
        observed = tseitin_netlist(netlist, extra, input_vars=shared)
        solver.ensure_vars(extra.num_vars)
        for clause in extra.clauses:
            solver.add_clause(clause)
        for net, bit in zip(functional, pattern):
            var = observed.inputs[net]
            solver.add_clause((var if bit else -var,))
        for net, bit in zip(netlist.outputs, response):
            lit = observed.outputs[net]
            solver.add_clause((lit if bit else -lit,))
