"""Redundancy attack: key inference through testability analysis.

Li & Orailoglu (DATE 2019) observe that the original design is fully
testable, so the key hypothesis that leaves *fewer untestable stuck-at
faults* in the constant-propagated circuit is the likelier one.  This module
implements the required substrate — bit-parallel single-stuck-at fault
simulation — and the per-bit decision rule.

Fault universe: to keep the attack tractable in pure Python, faults are
enumerated on the nets inside the key input's locality cone (the region
whose testability a wrong key value actually disturbs); this approximation
is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import AttackResult
from repro.attacks.subgraph import LocalityExtractor
from repro.errors import AttackError
from repro.locking.key import Key
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.utils.rng import derive_seed


def undetected_fault_count(
    netlist: Netlist,
    fault_nets: Sequence[str],
    num_patterns: int = 256,
    seed: int = 0,
) -> int:
    """Stuck-at faults on ``fault_nets`` not detected by random patterns.

    A fault is detected when some pattern makes any primary output differ
    from the fault-free value.  Undetected faults under a healthy random
    budget approximate untestable (redundant) faults.  Backed by the
    :mod:`repro.testability` fault simulator.
    """
    from repro.testability import enumerate_faults, fault_simulate

    faults = enumerate_faults(netlist, fault_nets)
    result = fault_simulate(
        netlist, faults, num_patterns=num_patterns, seed=seed
    )
    return len(result.undetected)


@dataclass
class RedundancyAttack:
    """Per-bit testability comparison around each key input."""

    hops: int = 3
    max_fault_nets: int = 24
    num_patterns: int = 192
    seed: int = 0

    def attack(
        self,
        netlist: Netlist,
        true_key: Optional[Key] = None,
        key_nets: Optional[Sequence[str]] = None,
    ) -> AttackResult:
        key_nets = (
            list(key_nets) if key_nets is not None else netlist.key_inputs
        )
        if not key_nets:
            raise AttackError("netlist has no key inputs to attack")
        extractor = LocalityExtractor(
            netlist, hops=self.hops, max_nodes=self.max_fault_nets + 1
        )
        bits: list[int] = []
        confidence: list[float] = []
        for index, key_net in enumerate(key_nets):
            locality = extractor.extract(key_net, label=0)
            nets = [
                meta
                for meta in _locality_nets(locality)
                if meta != key_net and meta not in netlist.inputs
            ][: self.max_fault_nets]
            counts = []
            for value in (0, 1):
                tied = _tie_input(netlist, key_net, value)
                counts.append(
                    undetected_fault_count(
                        tied,
                        [n for n in nets if _net_exists(tied, n)],
                        num_patterns=self.num_patterns,
                        seed=derive_seed(self.seed, key_net, value),
                    )
                )
            if counts[0] < counts[1]:
                bits.append(0)
            elif counts[1] < counts[0]:
                bits.append(1)
            else:
                # Tie: guess deterministically from the key index parity —
                # the attack abstains, which the paper scores as a coin flip.
                bits.append(index % 2)
            total = counts[0] + counts[1]
            confidence.append(
                abs(counts[0] - counts[1]) / total if total else 0.0
            )
        return AttackResult(
            predicted_bits=tuple(bits),
            true_key=true_key,
            confidence=tuple(confidence),
            attack_name="Redundancy",
            details={"num_patterns": self.num_patterns},
        )


def _locality_nets(locality) -> list[str]:
    """Net names captured in a locality (stored in extraction order)."""
    # LocalityExtractor stores only features; recover nets via meta when
    # available, otherwise fall back to the key net alone.
    return locality.meta.get("nets", [])


def _tie_input(netlist: Netlist, net: str, value: int) -> Netlist:
    """Copy with primary input ``net`` replaced by a constant driver."""
    out = Netlist(name=netlist.name)
    for pi in netlist.inputs:
        if pi != net:
            out.add_input(pi)
    out.add_gate(net, GateType.CONST1 if value else GateType.CONST0, ())
    for gate in netlist.gates:
        out.add_gate(gate.output, gate.gate_type, gate.inputs)
    out.outputs = list(netlist.outputs)
    out.validate()
    return out


def _net_exists(netlist: Netlist, net: str) -> bool:
    return net in netlist.inputs or any(g.output == net for g in netlist.gates)
