"""SnapShot-style attack: MLP over flattened locality encodings.

SnapShot (Sisejkovic et al., ACM JETC 2021) predates OMLA and works on a
fixed-size vector encoding of the key-gate locality rather than a graph.
Here each locality is flattened into per-hop gate-type histograms, and a
small MLP classifies the key bit.  Included as the paper's Sec. II mentions
it among the tensor-based oracle-less attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import AttackResult
from repro.attacks.subgraph import _TYPE_SLOTS, LocalityExtractor, victim_key_inputs
from repro.errors import AttackError
from repro.locking.key import Key
from repro.ml.autograd import Tensor, cross_entropy
from repro.ml.data import GraphData
from repro.ml.layers import Mlp
from repro.ml.optim import Adam
from repro.netlist.netlist import Netlist
from repro.utils.rng import derive_seed, make_rng


def flatten_locality(graph: GraphData, hops: int) -> np.ndarray:
    """Per-hop gate-type histograms concatenated into one vector."""
    num_types = len(_TYPE_SLOTS)
    distance_col = num_types + 2
    vector = np.zeros((hops + 1) * num_types)
    for row in graph.features:
        hop = int(round(row[distance_col] * hops))
        hop = min(hop, hops)
        type_index = int(row[:num_types].argmax())
        vector[hop * num_types + type_index] += 1.0
    return vector


@dataclass
class SnapShotAttack:
    """MLP over flattened localities; trained like OMLA (self-referencing)."""

    hops: int = 3
    hidden: int = 48
    epochs: int = 80
    lr: float = 3e-3
    seed: int = 0

    def __post_init__(self) -> None:
        self._model: Optional[Mlp] = None

    def train(self, graphs: Sequence[GraphData]) -> None:
        if not graphs:
            raise AttackError("SnapShot training requires localities")
        features = np.vstack(
            [flatten_locality(g, self.hops) for g in graphs]
        )
        labels = np.array([g.label for g in graphs], dtype=np.int64)
        self._model = Mlp(
            features.shape[1], self.hidden, 2, seed=derive_seed(self.seed, "mlp")
        )
        optimizer = Adam(self._model.parameters(), lr=self.lr)
        rng = make_rng(derive_seed(self.seed, "shuffle"))
        for _epoch in range(self.epochs):
            order = rng.permutation(len(labels))
            for start in range(0, len(labels), 64):
                block = order[start: start + 64]
                optimizer.zero_grad()
                logits = self._model(Tensor(features[block]))
                loss = cross_entropy(logits, labels[block])
                loss.backward()
                optimizer.step()

    def attack(
        self,
        circuit,
        true_key: Optional[Key] = None,
        key_nets: Optional[Sequence[str]] = None,
    ) -> AttackResult:
        if self._model is None:
            raise AttackError("SnapShot model is not trained")
        key_nets = (
            list(key_nets) if key_nets is not None else victim_key_inputs(circuit)
        )
        if not key_nets:
            raise AttackError("circuit has no key inputs to attack")
        extractor = LocalityExtractor(circuit, hops=self.hops)
        features = np.vstack(
            [
                flatten_locality(extractor.extract(net, 0), self.hops)
                for net in key_nets
            ]
        )
        logits = self._model(Tensor(features)).data
        bits = tuple(int(b) for b in logits.argmax(axis=-1))
        shifted = logits - logits.max(axis=-1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=-1, keepdims=True)
        return AttackResult(
            predicted_bits=bits,
            true_key=true_key,
            confidence=tuple(float(p) for p in probs.max(axis=-1)),
            attack_name="SnapShot",
        )
