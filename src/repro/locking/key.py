"""Key handling: apply a key to a locked netlist, query the oracle."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import LockingError
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import simulate_patterns
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class Key:
    """An ordered tuple of key bits (index ``i`` drives ``keyinput<i>``)."""

    bits: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(bit not in (0, 1) for bit in self.bits):
            raise LockingError("key bits must be 0 or 1")

    @staticmethod
    def random(size: int, seed: int) -> "Key":
        rng = make_rng(seed)
        return Key(tuple(int(b) for b in rng.integers(0, 2, size=size)))

    def __len__(self) -> int:
        return len(self.bits)

    def __getitem__(self, index: int) -> int:
        return self.bits[index]

    def hamming(self, other: "Key") -> int:
        if len(self) != len(other):
            raise LockingError("keys have different sizes")
        return sum(a != b for a, b in zip(self.bits, other.bits))

    def __str__(self) -> str:
        return "".join(str(b) for b in self.bits)


def apply_key(netlist: Netlist, key: Key) -> Netlist:
    """Substitute constant key values for key inputs.

    Returns a netlist without key inputs whose functionality equals the
    locked design under ``key`` (constants are injected as CONST gates; a
    synthesis pass will propagate them).
    """
    key_nets = netlist.key_inputs
    if len(key) != len(key_nets):
        raise LockingError(
            f"key size {len(key)} != {len(key_nets)} key inputs"
        )
    out = Netlist(name=netlist.name)
    for net in netlist.inputs:
        if not net.startswith("keyinput"):
            out.add_input(net)
    for index, net in enumerate(key_nets):
        out.add_gate(
            net, GateType.CONST1 if key[index] else GateType.CONST0, ()
        )
    for gate in netlist.gates:
        out.add_gate(gate.output, gate.gate_type, gate.inputs)
    for net in netlist.outputs:
        out.add_output(net)
    out.validate()
    return out


def _fill_key_block(
    locked: Netlist,
    key: Key,
    patterns: np.ndarray,
    full: np.ndarray,
    column: dict[str, int],
) -> None:
    """Write one key's (patterns x inputs) stimulus block into ``full``."""
    for col, net in enumerate(locked.functional_inputs):
        full[:, column[net]] = patterns[:, col]
    for index, net in enumerate(locked.key_inputs):
        full[:, column[net]] = key[index]


def _check_shapes(locked: Netlist, key: Key, patterns: np.ndarray) -> None:
    if len(key) != len(locked.key_inputs):
        raise LockingError(
            f"key size {len(key)} != {len(locked.key_inputs)} key inputs"
        )
    if patterns.shape[1] != len(locked.functional_inputs):
        raise LockingError(
            f"patterns must have {len(locked.functional_inputs)} columns"
        )


def oracle_outputs(
    locked: Netlist, key: Key, patterns: np.ndarray
) -> np.ndarray:
    """Evaluate the locked netlist under ``key`` on functional-input patterns.

    ``patterns`` columns follow ``locked.functional_inputs`` order.  This is
    the black-box oracle that the *oracle-less* attacks do **not** have;
    the library uses it to validate locking correctness in tests.
    """
    _check_shapes(locked, key, patterns)
    order = list(locked.inputs)
    column = {net: index for index, net in enumerate(order)}
    full = np.zeros((patterns.shape[0], len(order)), dtype=np.uint8)
    _fill_key_block(locked, key, patterns, full, column)
    return simulate_patterns(locked, full, input_order=order)


def oracle_outputs_batch(
    locked: Netlist, keys: Sequence[Key], patterns: np.ndarray
) -> np.ndarray:
    """Evaluate several keys on the same patterns in one packed pass.

    Stacks one stimulus block per key and runs a single bit-parallel
    simulation, returning ``(len(keys), num_patterns, num_outputs)``.
    Packed simulation treats every pattern row independently, so the
    result is bit-identical to stacking separate :func:`oracle_outputs`
    calls — this is the batching the AppSAT error estimator leans on to
    evaluate the true key and a candidate in one pass.
    """
    if not keys:
        raise LockingError("oracle_outputs_batch needs at least one key")
    for key in keys:
        _check_shapes(locked, key, patterns)
    order = list(locked.inputs)
    column = {net: index for index, net in enumerate(order)}
    num = patterns.shape[0]
    full = np.zeros((len(keys) * num, len(order)), dtype=np.uint8)
    for block, key in enumerate(keys):
        _fill_key_block(
            locked, key, patterns, full[block * num : (block + 1) * num], column
        )
    out = simulate_patterns(locked, full, input_order=order)
    return out.reshape(len(keys), num, -1)


class KeyOracle:
    """Callable black-box oracle: a locked netlist under a fixed key.

    The attack-facing contract is just ``oracle(patterns) -> outputs``,
    but exposing the netlist and key lets trusted callers (the library's
    own attacks, which construct the oracle from a
    :class:`~repro.locking.rll.LockedCircuit`) fold candidate-key
    evaluation into the same packed simulation pass via
    :meth:`with_candidates`.
    """

    def __init__(self, locked: Netlist, key: Key):
        if len(key) != len(locked.key_inputs):
            raise LockingError(
                f"key size {len(key)} != {len(locked.key_inputs)} key inputs"
            )
        self.netlist = locked
        self.key = key

    def __call__(self, patterns: np.ndarray) -> np.ndarray:
        return oracle_outputs(self.netlist, self.key, patterns)

    def with_candidates(
        self, candidates: Sequence[Key], patterns: np.ndarray
    ) -> np.ndarray:
        """Oracle plus candidate outputs, one packed pass.

        Row 0 is the oracle (true key); row ``1+i`` is ``candidates[i]``.
        """
        return oracle_outputs_batch(
            self.netlist, [self.key, *candidates], patterns
        )
