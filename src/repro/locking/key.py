"""Key handling: apply a key to a locked netlist, query the oracle."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import LockingError
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import simulate_patterns
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class Key:
    """An ordered tuple of key bits (index ``i`` drives ``keyinput<i>``)."""

    bits: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(bit not in (0, 1) for bit in self.bits):
            raise LockingError("key bits must be 0 or 1")

    @staticmethod
    def random(size: int, seed: int) -> "Key":
        rng = make_rng(seed)
        return Key(tuple(int(b) for b in rng.integers(0, 2, size=size)))

    def __len__(self) -> int:
        return len(self.bits)

    def __getitem__(self, index: int) -> int:
        return self.bits[index]

    def hamming(self, other: "Key") -> int:
        if len(self) != len(other):
            raise LockingError("keys have different sizes")
        return sum(a != b for a, b in zip(self.bits, other.bits))

    def __str__(self) -> str:
        return "".join(str(b) for b in self.bits)


def apply_key(netlist: Netlist, key: Key) -> Netlist:
    """Substitute constant key values for key inputs.

    Returns a netlist without key inputs whose functionality equals the
    locked design under ``key`` (constants are injected as CONST gates; a
    synthesis pass will propagate them).
    """
    key_nets = netlist.key_inputs
    if len(key) != len(key_nets):
        raise LockingError(
            f"key size {len(key)} != {len(key_nets)} key inputs"
        )
    out = Netlist(name=netlist.name)
    for net in netlist.inputs:
        if not net.startswith("keyinput"):
            out.add_input(net)
    for index, net in enumerate(key_nets):
        out.add_gate(
            net, GateType.CONST1 if key[index] else GateType.CONST0, ()
        )
    for gate in netlist.gates:
        out.add_gate(gate.output, gate.gate_type, gate.inputs)
    for net in netlist.outputs:
        out.add_output(net)
    out.validate()
    return out


def oracle_outputs(
    locked: Netlist, key: Key, patterns: np.ndarray
) -> np.ndarray:
    """Evaluate the locked netlist under ``key`` on functional-input patterns.

    ``patterns`` columns follow ``locked.functional_inputs`` order.  This is
    the black-box oracle that the *oracle-less* attacks do **not** have;
    the library uses it to validate locking correctness in tests.
    """
    functional = locked.functional_inputs
    key_nets = locked.key_inputs
    if len(key) != len(key_nets):
        raise LockingError(
            f"key size {len(key)} != {len(key_nets)} key inputs"
        )
    if patterns.shape[1] != len(functional):
        raise LockingError(
            f"patterns must have {len(functional)} columns"
        )
    full = np.zeros((patterns.shape[0], len(locked.inputs)), dtype=np.uint8)
    order = list(locked.inputs)
    for col, net in enumerate(functional):
        full[:, order.index(net)] = patterns[:, col]
    for index, net in enumerate(key_nets):
        full[:, order.index(net)] = key[index]
    return simulate_patterns(locked, full, input_order=order)
