"""Logic locking: RLL insertion, key management, oracle, re-locking.

Random logic locking (RLL, the EPIC scheme) inserts XOR/XNOR key gates on
randomly chosen nets.  The locked netlist is correct only under the right
key; ALMOST deliberately uses this *fully vulnerable* scheme to show that
synthesis alone can confer ML-attack resilience.
"""

from repro.locking.key import Key, apply_key, oracle_outputs
from repro.locking.rll import lock_rll, LockedCircuit
from repro.locking.relock import relock

__all__ = [
    "Key",
    "apply_key",
    "oracle_outputs",
    "lock_rll",
    "LockedCircuit",
    "relock",
]
