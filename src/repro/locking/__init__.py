"""Logic locking: RLL insertion, key management, oracle, re-locking.

Random logic locking (RLL, the EPIC scheme) inserts XOR/XNOR key gates on
randomly chosen nets.  The locked netlist is correct only under the right
key; ALMOST deliberately uses this *fully vulnerable* scheme to show that
synthesis alone can confer ML-attack resilience.
"""

from repro.locking.key import (
    Key,
    KeyOracle,
    apply_key,
    oracle_outputs,
    oracle_outputs_batch,
)
from repro.locking.rll import lock_rll, LockedCircuit
from repro.locking.relock import relock

__all__ = [
    "Key",
    "KeyOracle",
    "apply_key",
    "oracle_outputs",
    "oracle_outputs_batch",
    "lock_rll",
    "LockedCircuit",
    "relock",
]
