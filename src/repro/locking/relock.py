"""Re-locking: the self-referencing trick used by oracle-less ML attacks.

The attacker takes the (already locked, already synthesized) netlist under
attack and inserts *additional* key gates whose key bits they chose
themselves, then re-synthesizes with the defender's recipe.  The localities
around those new key gates form a labeled training set that captures exactly
the structural transformations the recipe induces (paper Sec. II and
footnote 3).
"""

from __future__ import annotations

from typing import Optional

from repro.locking.key import Key
from repro.locking.rll import LockedCircuit, lock_rll
from repro.netlist.netlist import Netlist

RELOCK_PREFIX = "relockinput"


def relock(
    netlist: Netlist,
    key_size: int,
    seed: int,
    key: Optional[Key] = None,
) -> LockedCircuit:
    """Insert ``key_size`` additional key gates with fresh key inputs.

    The new inputs use the ``relockinput`` prefix so they never collide with
    (or shadow) the victim's ``keyinput`` pins, and attacks can tell the
    training localities apart from the ones under attack.
    """
    return lock_rll(
        netlist,
        key_size=key_size,
        seed=seed,
        key=key,
        prefix=RELOCK_PREFIX,
    )
