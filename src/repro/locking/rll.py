"""Random logic locking (RLL / EPIC-style XOR-XNOR key-gate insertion).

For each selected net ``w`` and key bit ``k``:

* ``k = 0`` — insert ``w' = XOR(w, keyinput)``: the gate is transparent when
  the key input is 0;
* ``k = 1`` — insert ``w' = XNOR(w, keyinput)``: transparent when the key
  input is 1.

All readers of ``w`` are rewired to ``w'``.  With the *wrong* key bit the
gate inverts the net, corrupting the function — the classic RLL contract.
The XNOR/XOR choice is exactly the correlation that bubble-pushing hides and
ML attacks (SAIL, OMLA) try to re-learn after synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import LockingError
from repro.netlist.gates import GateType
from repro.netlist.netlist import Gate, Netlist
from repro.locking.key import Key
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class KeyPartition:
    """One locking scheme's slice of a (possibly compound) key.

    ``scheme`` names the locker that introduced the bits (``rll``,
    ``antisat``, ...); ``key_inputs`` lists its key-input nets in key-bit
    order.  Compound locks (see :func:`repro.defenses.compound`) carry one
    partition per constituent scheme so attacks and reports can score the
    slices separately.
    """

    scheme: str
    key_inputs: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.key_inputs)


@dataclass
class LockedCircuit:
    """A locked netlist together with its secret key and lock metadata."""

    netlist: Netlist
    key: Key
    locked_nets: tuple[str, ...]
    key_input_names: tuple[str, ...]
    partitions: tuple[KeyPartition, ...] = ()

    @property
    def key_size(self) -> int:
        return len(self.key)

    def partition_bits(self, scheme: str) -> tuple[int, ...]:
        """The key bits belonging to ``scheme``'s partition."""
        by_name = dict(zip(self.key_input_names, self.key.bits))
        for partition in self.partitions:
            if partition.scheme == scheme:
                return tuple(by_name[net] for net in partition.key_inputs)
        raise LockingError(
            f"no partition {scheme!r}; have "
            f"{[p.scheme for p in self.partitions]}"
        )


def _output_cone(netlist: Netlist) -> set[str]:
    """Nets in the transitive fanin of the primary outputs."""
    drivers = netlist.driver_map()
    cone: set[str] = set()
    stack = list(netlist.outputs)
    while stack:
        net = stack.pop()
        if net in cone:
            continue
        cone.add(net)
        gate = drivers.get(net)
        if gate is not None:
            stack.extend(gate.inputs)
    return cone


def _lockable_nets(netlist: Netlist, rng, count: int) -> list[str]:
    """Choose ``count`` distinct gate-output nets to lock.

    Primary inputs are excluded (locking a PI wire is legal but trivially
    removable), and only nets in the output cone are eligible — a key gate
    on unobservable logic would be deleted by synthesis, silently shrinking
    the effective key.
    """
    cone = _output_cone(netlist)
    candidates = [
        g.output
        for g in netlist.gates
        if g.gate_type not in (GateType.CONST0, GateType.CONST1)
        and g.output in cone
    ]
    if len(candidates) < count:
        raise LockingError(
            f"netlist has only {len(candidates)} lockable nets, need {count}"
        )
    picked = rng.choice(len(candidates), size=count, replace=False)
    return [candidates[int(i)] for i in sorted(picked)]


def lock_rll(
    netlist: Netlist,
    key_size: int,
    seed: int = 0,
    key: Optional[Key] = None,
    prefix: str = "keyinput",
    nets: Optional[Sequence[str]] = None,
) -> LockedCircuit:
    """Lock ``netlist`` with RLL; returns the locked circuit and key.

    ``key`` defaults to a random key derived from ``seed``.  ``nets``
    overrides the random insertion-point selection (used by tests).
    """
    rng = make_rng(seed)
    if key is None:
        key = Key.random(key_size, seed)
    if len(key) != key_size:
        raise LockingError("explicit key length differs from key_size")
    if nets is None:
        chosen = _lockable_nets(netlist, rng, key_size)
    else:
        chosen = list(nets)
        if len(chosen) != key_size:
            raise LockingError("nets list length differs from key_size")
    out = netlist.copy()
    existing = {
        n for n in out.inputs if n.startswith(prefix)
    }
    start_index = len(existing)
    key_names = []
    for offset, (net, bit) in enumerate(zip(chosen, key.bits)):
        key_net = f"{prefix}{start_index + offset}"
        out.add_input(key_net)
        key_names.append(key_net)
        locked_net = f"{net}__lk_{key_net}"
        gate_type = GateType.XNOR if bit else GateType.XOR
        # Rewire all readers of `net` (gates and primary outputs) first,
        # then insert the key gate reading the original net.
        for gate in out.gates:
            if net in gate.inputs:
                gate.inputs = tuple(
                    locked_net if fanin == net else fanin for fanin in gate.inputs
                )
        out.outputs = [locked_net if po == net else po for po in out.outputs]
        out.gates.append(Gate(locked_net, gate_type, (net, key_net)))
    out.validate()
    return LockedCircuit(
        netlist=out,
        key=key,
        locked_nets=tuple(chosen),
        key_input_names=tuple(key_names),
        partitions=(KeyPartition("rll", tuple(key_names)),),
    )
