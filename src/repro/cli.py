"""Command-line interface: lock, synthesize, attack and defend from a shell.

Installed as ``python -m repro.cli`` (or via the console script).  Circuits
travel between commands as ``.bench`` files, so the CLI composes like the
classic EDA flow it reproduces::

    python -m repro.cli lock c1908.bench --key-size 32 --out locked.bench
    python -m repro.cli synth locked.bench --recipe "b;rw;rf;b" --out opt.bench
    python -m repro.cli attack opt.bench --key 0110... --recipe resyn2
    python -m repro.cli sat-attack locked.bench --key 0110...
    python -m repro.cli equiv locked.bench opt.bench
    python -m repro.cli defend locked.bench --key 0110... --iterations 20
    python -m repro.cli ppa opt.bench
    python -m repro.cli gen c1908 --out c1908.bench
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.aig.build import aig_from_netlist
from repro.circuits import available_benchmarks, load_iscas85
from repro.errors import LockingError, ReproError
from repro.locking import Key, apply_key, lock_rll
from repro.mapping import analyze_ppa, map_aig, optimize_mapping
from repro.netlist.bench_io import load_bench, save_bench
from repro.synth import RESYN2, Recipe
from repro.synth.engine import synthesize_and_map, synthesize_netlist


def _parse_recipe(text: str) -> Recipe:
    if text.strip().lower() == "resyn2":
        return RESYN2
    return Recipe.parse(text)


def _parse_key(text: str) -> Key:
    if not text or set(text) - {"0", "1"}:
        raise LockingError(
            f"key must be a non-empty string of 0/1 bits, got {text!r}"
        )
    return Key(tuple(int(c) for c in text))


def cmd_gen(args: argparse.Namespace) -> int:
    netlist = load_iscas85(args.benchmark, scale=args.scale, seed=args.seed)
    save_bench(netlist, args.out)
    print(f"wrote {args.out}: {len(netlist.inputs)} inputs, "
          f"{len(netlist.outputs)} outputs, {netlist.num_gates()} gates")
    return 0


def cmd_lock(args: argparse.Namespace) -> int:
    netlist = load_bench(args.design)
    locked = lock_rll(netlist, key_size=args.key_size, seed=args.seed)
    save_bench(locked.netlist, args.out)
    print(f"wrote {args.out}: key size {locked.key_size}")
    print(f"key (keep secret!): {locked.key}")
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    netlist = load_bench(args.design)
    recipe = _parse_recipe(args.recipe)
    before = aig_from_netlist(netlist)
    verify = None if args.verify == "none" else args.verify
    result = synthesize_netlist(netlist, recipe, verify=verify)
    after = aig_from_netlist(result)
    save_bench(result, args.out)
    print(f"recipe {recipe}: {before.num_ands()} -> {after.num_ands()} AND "
          f"nodes; wrote {args.out}")
    if verify:
        print(f"function preserved (verified: {verify})")
    return 0


def cmd_ppa(args: argparse.Namespace) -> int:
    netlist = load_bench(args.design)
    mapped = map_aig(aig_from_netlist(netlist))
    if args.opt:
        mapped = optimize_mapping(mapped)
    report = analyze_ppa(mapped)
    payload = {
        "cells": report.num_cells,
        "area_um2": round(report.area, 3),
        "delay_ps": round(report.delay, 2),
        "power_uW": round(report.power, 3),
        "leakage_uW": round(report.leakage_power, 3),
        "dynamic_uW": round(report.dynamic_power, 3),
    }
    print(json.dumps(payload, indent=2))
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    from repro.attacks import OmlaAttack, OmlaConfig

    netlist = load_bench(args.design)
    recipe = _parse_recipe(args.recipe)
    attack = OmlaAttack(
        recipe,
        OmlaConfig(
            epochs=args.epochs,
            relock_key_bits=args.relock_bits,
            seed=args.seed,
        ),
    )
    print("generating self-referencing training data...")
    data = attack.generate_training_data(netlist, num_samples=args.samples)
    attack.train(data)
    _synth, mapped = synthesize_and_map(netlist, recipe)
    true_key = _parse_key(args.key) if args.key else None
    result = attack.attack(mapped, true_key)
    print(f"predicted key: {''.join(map(str, result.predicted_bits))}")
    if true_key is not None:
        print(f"accuracy: {100 * result.accuracy:.2f}%")
    return 0


def cmd_sat_attack(args: argparse.Namespace) -> int:
    from repro.attacks import SatAttackConfig, get_attack, oracle_from_key
    from repro.reporting import SatAttackRecord, render_sat_attack_table

    netlist = load_bench(args.design)
    if not netlist.key_inputs:
        print("error: design has no keyinput* pins; lock it first",
              file=sys.stderr)
        return 2
    if not args.key:
        print("error: --key is required (it stands in for the unlocked "
              "oracle chip)", file=sys.stderr)
        return 2
    true_key = _parse_key(args.key)
    attack_cls = get_attack("sat")
    attack = attack_cls(SatAttackConfig(max_iterations=args.max_iterations))
    result = attack.attack(
        netlist, oracle=oracle_from_key(netlist, true_key), true_key=true_key
    )
    print(f"recovered key: {''.join(map(str, result.predicted_bits))}")
    print(f"bit accuracy vs oracle key: {100 * result.accuracy:.2f}%")
    record = SatAttackRecord.from_result(Path(args.design).stem, result)
    print(render_sat_attack_table([record], title="SAT attack summary"))
    return 0


def cmd_equiv(args: argparse.Namespace) -> int:
    from repro.sat import check_equivalence

    first = load_bench(args.first)
    second = load_bench(args.second)
    if args.key:
        # Close the key inputs of whichever side is locked, so a locked
        # design can be checked against its unlocked original.
        key = _parse_key(args.key)
        if first.key_inputs:
            first = apply_key(first, key)
        if second.key_inputs:
            second = apply_key(second, key)
    verdict = check_equivalence(first, second)
    if verdict.equivalent:
        print(f"EQUIVALENT ({args.first} == {args.second})")
        return 0
    print(f"NOT EQUIVALENT ({args.first} != {args.second})")
    print("counterexample:")
    print(json.dumps({
        "inputs": verdict.counterexample,
        "outputs_first": verdict.outputs_first,
        "outputs_second": verdict.outputs_second,
    }, indent=2))
    return 1


def cmd_defend(args: argparse.Namespace) -> int:
    from repro.core import AlmostConfig, AlmostDefense, ProxyConfig
    from repro.core.proxy import build_resyn2_proxy
    from repro.locking.rll import LockedCircuit

    netlist = load_bench(args.design)
    if not netlist.key_inputs:
        print("error: design has no keyinput* pins; lock it first",
              file=sys.stderr)
        return 2
    if not args.key:
        print("error: --key is required (the defender owns the key)",
              file=sys.stderr)
        return 2
    locked = LockedCircuit(
        netlist=netlist,
        key=_parse_key(args.key),
        locked_nets=(),
        key_input_names=tuple(netlist.key_inputs),
    )
    print("training proxy attack model...")
    proxy = build_resyn2_proxy(
        locked,
        ProxyConfig(
            num_samples=args.samples, epochs=args.epochs, seed=args.seed
        ),
    )
    defense = AlmostDefense(
        proxy, AlmostConfig(sa_iterations=args.iterations, seed=args.seed)
    )
    result = defense.generate_recipe()
    print(f"security-aware recipe: {result.recipe}")
    print(f"proxy-predicted attack accuracy: "
          f"{100 * result.predicted_accuracy:.2f}%")
    if args.out:
        optimized = synthesize_netlist(netlist, result.recipe)
        save_bench(optimized, args.out)
        print(f"wrote defended netlist to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ALMOST reproduction command-line flow"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate a benchmark circuit")
    gen.add_argument("benchmark", choices=available_benchmarks())
    gen.add_argument("--scale", default="quick", choices=["quick", "full"])
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=cmd_gen)

    lock = sub.add_parser("lock", help="lock a .bench design with RLL")
    lock.add_argument("design")
    lock.add_argument("--key-size", type=int, default=32)
    lock.add_argument("--seed", type=int, default=0)
    lock.add_argument("--out", required=True)
    lock.set_defaults(func=cmd_lock)

    synth = sub.add_parser("synth", help="apply a synthesis recipe")
    synth.add_argument("design")
    synth.add_argument("--recipe", default="resyn2",
                       help='"resyn2" or e.g. "b;rw;rfz;b"')
    synth.add_argument("--verify", default="none",
                       choices=["none", "sim", "sat"],
                       help="check the result against the input (sat = "
                            "exact equivalence proof)")
    synth.add_argument("--out", required=True)
    synth.set_defaults(func=cmd_synth)

    ppa = sub.add_parser("ppa", help="map and report PPA as JSON")
    ppa.add_argument("design")
    ppa.add_argument("--opt", action="store_true",
                     help="run the +opt sizing flow")
    ppa.set_defaults(func=cmd_ppa)

    attack = sub.add_parser("attack", help="run OMLA against a locked design")
    attack.add_argument("design")
    attack.add_argument("--recipe", default="resyn2")
    attack.add_argument("--key", default="",
                        help="true key bits for accuracy scoring")
    attack.add_argument("--epochs", type=int, default=20)
    attack.add_argument("--samples", type=int, default=64)
    attack.add_argument("--relock-bits", type=int, default=32)
    attack.add_argument("--seed", type=int, default=0)
    attack.set_defaults(func=cmd_attack)

    sat_attack = sub.add_parser(
        "sat-attack",
        help="run the oracle-guided SAT attack against a locked design",
    )
    sat_attack.add_argument("design")
    sat_attack.add_argument("--key", default="",
                            help="true key bits (builds the oracle)")
    sat_attack.add_argument("--max-iterations", type=int, default=512,
                            help="DIP-loop budget")
    sat_attack.set_defaults(func=cmd_sat_attack)

    equiv = sub.add_parser(
        "equiv",
        help="SAT-prove two .bench designs equivalent (exit 1 + "
             "counterexample if not)",
    )
    equiv.add_argument("first")
    equiv.add_argument("second")
    equiv.add_argument("--key", default="",
                       help="key bits applied to close any keyinput* pins "
                            "before comparing")
    equiv.set_defaults(func=cmd_equiv)

    defend = sub.add_parser("defend", help="run the ALMOST recipe search")
    defend.add_argument("design")
    defend.add_argument("--key", default="", help="the defender's key bits")
    defend.add_argument("--iterations", type=int, default=20)
    defend.add_argument("--epochs", type=int, default=15)
    defend.add_argument("--samples", type=int, default=48)
    defend.add_argument("--seed", type=int, default=0)
    defend.add_argument("--out", default="")
    defend.set_defaults(func=cmd_defend)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
