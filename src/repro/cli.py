"""Command-line interface: lock, synthesize, attack and defend from a shell.

Installed as ``python -m repro.cli`` (or via the console script).  Circuits
travel between commands as ``.bench`` files, so the CLI composes like the
classic EDA flow it reproduces::

    python -m repro.cli lock c1908.bench --key-size 32 --out locked.bench
    python -m repro.cli synth locked.bench --recipe "b;rw;rf;b" --out opt.bench
    python -m repro.cli attack opt.bench --attack scope --key 0110...
    python -m repro.cli sat-attack locked.bench --key 0110...
    python -m repro.cli equiv locked.bench opt.bench
    python -m repro.cli defend locked.bench --key 0110... --iterations 20
    python -m repro.cli almost locked.bench --key 0110... --strategy pt \
        --chains 4 --jobs 4
    python -m repro.cli ppa opt.bench
    python -m repro.cli gen c1908 --out c1908.bench

Experiment-scale work goes through the pipeline front door instead of
hand-wiring the stages: ``repro run spec.toml`` executes a declarative
:class:`~repro.pipeline.ExperimentSpec`, and ``repro grid`` builds one from
flags — both with content-hash artifact caching and ``--jobs`` process
fan-out.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.aig.build import aig_from_netlist
from repro.circuits import available_benchmarks, load_iscas85
from repro.core.search import available_strategies
from repro.errors import LockingError, ReproError, SpecError
from repro.obs import Tracer, configure_cli_logging, use_tracer
from repro.locking import Key, apply_key, lock_rll
from repro.mapping import analyze_ppa, map_aig, optimize_mapping
from repro.netlist.bench_io import load_bench, save_bench
from repro.pipeline import (
    ORACLE_GUIDED_ATTACKS,
    AttackSpec,
    BenchmarkSpec,
    DefenseSpec,
    ExperimentSpec,
    LockSpec,
    ReportSpec,
    Runner,
    SynthSpec,
    available,
)
from repro.synth import RESYN2, Recipe
from repro.synth.engine import synthesize_netlist


def oracle_less_attacks() -> list[str]:
    """The attack family ``repro attack`` dispatches over — everything in
    the registry except the oracle-guided names (those need ``sat-attack``).
    Derived at call time so registered plugin attacks are addressable."""
    return sorted(set(available("attack")) - ORACLE_GUIDED_ATTACKS)


def _parse_recipe(text: str) -> Recipe:
    if text.strip().lower() == "resyn2":
        return RESYN2
    return Recipe.parse(text)


def _parse_key(text: str) -> Key:
    if not text or set(text) - {"0", "1"}:
        raise LockingError(
            f"key must be a non-empty string of 0/1 bits, got {text!r}"
        )
    return Key(tuple(int(c) for c in text))


def _runner(args: argparse.Namespace, jobs: int = 1) -> Runner:
    return Runner(
        workdir=getattr(args, "workdir", "") or None,
        jobs=jobs,
        use_cache=not getattr(args, "no_cache", False),
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default="", metavar="OUT.jsonl",
        help="record hierarchical spans + metric deltas to this JSONL "
             "file (inspect with `repro trace OUT.jsonl`)",
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workdir", default="",
        help="artifact-cache root (default $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every stage instead of reading/writing the cache",
    )


def cmd_gen(args: argparse.Namespace) -> int:
    netlist = load_iscas85(args.benchmark, scale=args.scale, seed=args.seed)
    save_bench(netlist, args.out)
    print(f"wrote {args.out}: {len(netlist.inputs)} inputs, "
          f"{len(netlist.outputs)} outputs, {netlist.num_gates()} gates")
    return 0


def cmd_lock(args: argparse.Namespace) -> int:
    netlist = load_bench(args.design)
    locked = lock_rll(netlist, key_size=args.key_size, seed=args.seed)
    save_bench(locked.netlist, args.out)
    print(f"wrote {args.out}: key size {locked.key_size}")
    print(f"key (keep secret!): {locked.key}")
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    netlist = load_bench(args.design)
    recipe = _parse_recipe(args.recipe)
    before = aig_from_netlist(netlist)
    verify = None if args.verify == "none" else args.verify
    result = synthesize_netlist(netlist, recipe, verify=verify)
    after = aig_from_netlist(result)
    save_bench(result, args.out)
    print(f"recipe {recipe}: {before.num_ands()} -> {after.num_ands()} AND "
          f"nodes; wrote {args.out}")
    if verify:
        print(f"function preserved (verified: {verify})")
    return 0


def cmd_ppa(args: argparse.Namespace) -> int:
    netlist = load_bench(args.design)
    mapped = map_aig(aig_from_netlist(netlist))
    if args.opt:
        mapped = optimize_mapping(mapped)
    report = analyze_ppa(mapped)
    payload = {
        "cells": report.num_cells,
        "area_um2": round(report.area, 3),
        "delay_ps": round(report.delay, 2),
        "power_uW": round(report.power, 3),
        "leakage_uW": round(report.leakage_power, 3),
        "dynamic_uW": round(report.dynamic_power, 3),
    }
    print(json.dumps(payload, indent=2))
    return 0


def _attack_params(args: argparse.Namespace) -> dict:
    """CLI knobs -> per-attack registry parameters."""
    if args.attack in ("omla", "snapshot", "sail"):
        return {
            "epochs": args.epochs,
            "samples": args.samples,
            "relock_bits": args.relock_bits,
            "seed": args.seed,
        }
    if args.attack == "redundancy":
        return {"num_patterns": args.num_patterns, "seed": args.seed}
    return {}  # scope is parameterless


def cmd_attack(args: argparse.Namespace) -> int:
    if args.attack in ORACLE_GUIDED_ATTACKS:
        print(
            f"error: {args.attack!r} is oracle-guided, not oracle-less — "
            "use the sat-attack command (it builds the oracle from --key)",
            file=sys.stderr,
        )
        return 2
    spec = ExperimentSpec(
        name=f"attack-{args.attack}",
        benchmarks=(BenchmarkSpec(path=args.design),),
        lock=LockSpec(locker="given", key=args.key),
        synth=SynthSpec(recipe=args.recipe),
        attacks=(AttackSpec(args.attack, params=_attack_params(args)),),
    )
    run = _runner(args).run(spec)
    cell = run.cells[0]
    print(f"predicted key: {cell.predicted_key}")
    if cell.accuracy is not None:
        print(f"accuracy: {100 * cell.accuracy:.2f}%")
    return 0


def cmd_sat_attack(args: argparse.Namespace) -> int:
    from repro.reporting import (
        QueryComplexityRecord,
        SatAttackRecord,
        render_query_complexity_table,
        render_sat_attack_table,
    )

    if not args.key:
        print("error: --key is required (it stands in for the unlocked "
              "oracle chip)", file=sys.stderr)
        return 2
    _parse_key(args.key)  # reject malformed bits before the pipeline runs
    # An unlocked design is caught by the pipeline's 'given' locker with
    # the same exit-2 contract.
    if args.attack == "appsat":
        params = {
            "max_iterations": args.max_iterations,
            "query_period": args.query_period,
            "random_queries": args.random_queries,
            "error_threshold": args.error_threshold,
            "settle_rounds": args.settle_rounds,
            "seed": args.seed,
        }
    else:
        params = {"max_iterations": args.max_iterations}
    spec = ExperimentSpec(
        name="sat-attack",
        benchmarks=(BenchmarkSpec(path=args.design),),
        lock=LockSpec(locker="given", key=args.key),
        synth=SynthSpec(recipe=args.recipe),
        attacks=(AttackSpec(args.attack, params=params),),
    )
    run = _runner(args).run(spec)
    cell = run.cells[0]
    print(f"recovered key: {cell.predicted_key}")
    print(f"bit accuracy vs oracle key: {100 * cell.accuracy:.2f}%")
    details = cell.details.get("attack", {})
    if details.get("budget_exhausted"):
        print(f"DIP budget exhausted after {details.get('iterations', 0)} "
              "iterations — the key above is partial (consistent with the "
              "observations so far, not proven)")
    elif details.get("error_rate") is not None and not details.get("exact"):
        print(f"approximate key: measured error rate "
              f"{100 * details['error_rate']:.3f}%")
    solver = details.get("solver", {})
    record = SatAttackRecord(
        circuit=Path(args.design).stem,
        key_size=cell.key_size,
        iterations=details.get("iterations", 0),
        conflicts=solver.get("conflicts", 0),
        decisions=solver.get("decisions", 0),
        restarts=solver.get("restarts", 0),
        elapsed_s=details.get("elapsed_s", 0.0),
        key_accuracy=cell.accuracy,
    )
    print(render_sat_attack_table([record], title="SAT attack summary"))
    print(render_query_complexity_table(
        [QueryComplexityRecord.from_cell(Path(args.design).stem, cell)]
    ))
    return 0


def cmd_equiv(args: argparse.Namespace) -> int:
    from repro.sat import check_equivalence

    first = load_bench(args.first)
    second = load_bench(args.second)
    if args.key:
        # Close the key inputs of whichever side is locked, so a locked
        # design can be checked against its unlocked original.
        key = _parse_key(args.key)
        if first.key_inputs:
            first = apply_key(first, key)
        if second.key_inputs:
            second = apply_key(second, key)
    verdict = check_equivalence(first, second)
    if verdict.equivalent:
        print(f"EQUIVALENT ({args.first} == {args.second})")
        return 0
    print(f"NOT EQUIVALENT ({args.first} != {args.second})")
    print("counterexample:")
    print(json.dumps({
        "inputs": verdict.counterexample,
        "outputs_first": verdict.outputs_first,
        "outputs_second": verdict.outputs_second,
    }, indent=2))
    return 1


def _almost_artifacts(args: argparse.Namespace, netlist):
    """Validate + run the ALMOST recipe-search cell; returns its artifacts.

    Shared by ``repro defend --scheme almost`` (paper-default serial SA)
    and ``repro almost`` (full strategy/chains/jobs surface).  Returns
    ``None`` after printing an error when preconditions fail.
    """
    if not netlist.key_inputs:
        print("error: design has no keyinput* pins; lock it first",
              file=sys.stderr)
        return None
    if not args.key:
        print("error: --key is required (the defender owns the key)",
              file=sys.stderr)
        return None
    _parse_key(args.key)
    spec = ExperimentSpec(
        name="defend",
        benchmarks=(BenchmarkSpec(path=args.design),),
        lock=LockSpec(locker="given", key=args.key),
        defense=DefenseSpec(
            name="almost",
            iterations=args.iterations,
            samples=args.samples,
            epochs=args.epochs,
            seed=args.seed,
            strategy=getattr(args, "strategy", "sa"),
            chains=getattr(args, "chains", 1),
            jobs=getattr(args, "jobs", 1),
        ),
    )
    runner = _runner(args)
    runner.validate(spec)
    return runner.cell_artifacts(spec)


def _defend_almost(args: argparse.Namespace, netlist) -> int:
    """The ALMOST recipe search (scheme ``almost``, paper-default SA)."""
    artifacts = _almost_artifacts(args, netlist)
    if artifacts is None:
        return 2
    info = artifacts["defense"]
    print(f"security-aware recipe: {info['recipe']}")
    print(f"proxy-predicted attack accuracy: "
          f"{100 * info['predicted_accuracy']:.2f}%")
    if args.out:
        save_bench(artifacts["synth"].netlist, args.out)
        print(f"wrote defended netlist to {args.out}")
    return 0


def cmd_almost(args: argparse.Namespace) -> int:
    """The recipe-search front door: strategy/chains/jobs exposed."""
    netlist = load_bench(args.design)
    artifacts = _almost_artifacts(args, netlist)
    if artifacts is None:
        return 2
    info = artifacts["defense"]
    print(f"strategy: {info['strategy']} (chains={info['chains']}, "
          f"jobs={info['jobs']})")
    if info["strategy"] == "sa" and (args.chains > 1 or args.jobs > 1):
        print("note: sa is the paper's serial annealer — it proposes one "
              "candidate per round, so --chains/--jobs add no parallelism "
              "(use --strategy pt or beam for batched rounds)")
    print(f"security-aware recipe: {info['recipe']}")
    print(f"proxy-predicted attack accuracy: "
          f"{100 * info['predicted_accuracy']:.2f}%")
    print(f"search: {info['search_iterations']} iterations, "
          f"{info['energy_evaluations']} energy evaluations")
    from repro.reporting.search import hit_rate_if_traffic

    cache_stats = info.get("synth_cache") or {}
    hit_rate = hit_rate_if_traffic(cache_stats)
    # With --jobs > 1 these are the cross-worker totals from the shared
    # snapshot store; only report when the cache saw traffic at all.
    if hit_rate is not None:
        shared = " (shared across workers)" if cache_stats.get("shared") else ""
        print(f"prefix cache{shared}: {100 * hit_rate:.1f}% "
              f"of recipe steps served from snapshots "
              f"({cache_stats['steps_saved']} saved / "
              f"{cache_stats['steps_executed']} executed)")
    if args.out:
        save_bench(artifacts["synth"].netlist, args.out)
        print(f"wrote defended netlist to {args.out}")
    return 0


def _print_partitions(artifact) -> None:
    for scheme, nets in artifact.partitions:
        print(f"  partition {scheme}: {len(nets)} key bits "
              f"({nets[0]}..{nets[-1]})")


def _defend_structural(args: argparse.Namespace, netlist) -> int:
    """Point-function schemes: graft a SAT-resilient block (or lock anew)."""
    if netlist.key_inputs:
        if "+" in args.scheme:
            print(f"error: scheme {args.scheme!r} locks from scratch; "
                  f"the design already has keyinput* pins — use "
                  f"--scheme {args.scheme.split('+')[-1]} to graft the "
                  "block onto the existing lock", file=sys.stderr)
            return 2
        # Pre-locked design: run the block through the defense registry so
        # the CLI exercises the same path as DefenseSpec in spec files.
        if args.key:
            _parse_key(args.key)
        spec = ExperimentSpec(
            name="defend",
            benchmarks=(BenchmarkSpec(path=args.design),),
            lock=LockSpec(locker="given", key=args.key),
            defense=DefenseSpec(
                name=args.scheme, width=args.width, seed=args.seed
            ),
            synth=SynthSpec(recipe="none"),
        )
        runner = _runner(args)
        runner.validate(spec)
        artifacts = runner.cell_artifacts(spec)
        info = artifacts["defense"]
        artifact = info["lock"]
        block_key = info.get("key_added", "")
        print(f"defense {args.scheme}: added {info['added_key_bits']} key "
              f"bits (comparator width {info['width']})")
    else:
        from repro.defenses import lock_scheme
        from repro.pipeline.stages import artifact_from_locked

        locked = lock_scheme(
            netlist, args.scheme,
            key_size=args.key_size, width=args.width or None, seed=args.seed,
        )
        artifact = artifact_from_locked(locked, args.scheme)
        block_key = ""
        print(f"locked with {args.scheme}: {len(artifact.key_inputs)} "
              "key bits")
    _print_partitions(artifact)
    if artifact.key is not None:
        print(f"key (keep secret!): {artifact.key}")
    elif block_key:
        print(f"added key bits (keep secret!): {block_key}")
    if args.out:
        save_bench(artifact.netlist, args.out)
        print(f"wrote defended netlist to {args.out}")
    return 0


def cmd_defend(args: argparse.Namespace) -> int:
    netlist = load_bench(args.design)
    if args.scheme == "almost":
        return _defend_almost(args, netlist)
    return _defend_structural(args, netlist)


def _finish_run(runner: Runner, run, spec, out: str) -> int:
    """Shared run/grid epilogue: report, save, honour interruption.

    An interrupted run still reports and saves whatever completed (the
    cache holds the rest), but exits 130 like any interrupted process.
    """
    if run.cells or not run.interrupted:
        print(runner.report(run, spec))
    if run.interrupted:
        print(
            f"interrupted: {len(run.cells)} cell(s) completed; re-run the "
            "same spec to resume from the artifact cache",
            file=sys.stderr,
        )
    if out:
        run.save(out)
        print(f"wrote {out}")
    return 130 if run.interrupted else 0


def cmd_run(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.load(args.spec)
    runner = _runner(args, jobs=args.jobs)
    run = runner.run(spec)
    return _finish_run(runner, run, spec, args.out)


def _grid_benchmarks(args: argparse.Namespace) -> tuple[BenchmarkSpec, ...]:
    specs = []
    for token in args.benchmarks.split(","):
        token = token.strip()
        if not token:
            continue
        if token.endswith(".bench"):
            specs.append(BenchmarkSpec(path=token))
        else:
            specs.append(
                BenchmarkSpec(name=token, scale=args.scale, seed=args.seed)
            )
    return tuple(specs)


#: Grid-shaping flags that conflict with --spec — the spec file already
#: answers everything they would; runtime flags (--jobs/--workdir/
#: --no-cache/--out/--dump-spec) still compose with it.  Defaults are
#: read back from the parser (``args._grid_parser``) so this list cannot
#: drift when a flag's default changes.
_GRID_SHAPING_FLAGS = (
    "--benchmarks", "--attacks", "--defense", "--strategies", "--chains",
    "--defense-iterations", "--defense-samples", "--defense-epochs",
    "--report", "--locker", "--key-size", "--recipe", "--max-iterations",
    "--scale", "--seed", "--name",
)


def _grid_spec(args: argparse.Namespace) -> ExperimentSpec:
    """Build the grid's ExperimentSpec from flags (or load ``--spec``)."""
    if args.spec:
        parser = args._grid_parser
        overridden = []
        for flag in _GRID_SHAPING_FLAGS:
            dest = flag.lstrip("-").replace("-", "_")
            if getattr(args, dest) != parser.get_default(dest):
                overridden.append(flag)
        if overridden:
            # Silently dropping explicit flags would run a different grid
            # than the one asked for.
            raise SpecError(
                f"--spec runs the spec file as-is; it conflicts with "
                f"{', '.join(overridden)} — drop the flag(s) or edit "
                f"{args.spec}"
            )
        return ExperimentSpec.load(args.spec)
    if not args.benchmarks or not (args.attacks or args.defense):
        raise SpecError(
            "repro grid needs either --spec FILE or --benchmarks plus "
            "--attacks/--defense to build the grid from flags"
        )

    def params_for(attack: str) -> dict:
        # The DIP budget only parameterizes the oracle-guided family; the
        # oracle-less attacks keep their registry defaults.
        if attack in ORACLE_GUIDED_ATTACKS:
            return {"max_iterations": args.max_iterations}
        return {}

    strategies = [
        token.strip() for token in args.strategies.split(",") if token.strip()
    ]
    defense = None
    if args.defense:
        defense = DefenseSpec(
            name=args.defense,
            iterations=args.defense_iterations,
            samples=args.defense_samples,
            epochs=args.defense_epochs,
            seed=args.seed,
            strategy=strategies if len(strategies) != 1 else strategies[0],
            chains=args.chains,
        )
    else:
        # Without a defense stage these flags would be dropped silently —
        # almost always a forgotten `--defense almost`.
        parser = args._grid_parser
        dangling = [
            flag
            for flag in ("--strategies", "--chains", "--defense-iterations",
                         "--defense-samples", "--defense-epochs")
            if getattr(args, flag.lstrip("-").replace("-", "_"))
            != parser.get_default(flag.lstrip("-").replace("-", "_"))
        ]
        if dangling:
            raise SpecError(
                f"{', '.join(dangling)} only apply to a search defense; "
                "add --defense almost (or use a spec file)"
            )
    return ExperimentSpec(
        name=args.name,
        benchmarks=_grid_benchmarks(args),
        lock=LockSpec(
            locker=args.locker, key_size=args.key_size, seed=args.seed
        ),
        synth=SynthSpec(recipe=args.recipe),
        defense=defense,
        attacks=tuple(
            AttackSpec(name.strip(), params=params_for(name.strip()))
            for name in args.attacks.split(",")
            if name.strip()
        ),
        report=ReportSpec(format=args.report),
    )


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.reporting.trace import (
        load_trace,
        render_span_tree,
        render_trace_hotspots,
    )

    records = load_trace(args.trace_file)
    print(render_span_tree(records, max_depth=args.depth or None))
    print()
    print(render_trace_hotspots(records, top=args.top))
    return 0


def cmd_grid(args: argparse.Namespace) -> int:
    spec = _grid_spec(args)
    if args.dump_spec:
        spec.dump(args.dump_spec)
        print(f"wrote spec to {args.dump_spec}")
    runner = _runner(args, jobs=args.jobs)
    run = runner.run(spec)
    return _finish_run(runner, run, spec, args.out)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import Service, serve

    service = Service(
        state_dir=args.state_dir or None,
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_root=args.workdir or None,
        use_cache=not args.no_cache,
        watchdog_s=args.watchdog,
        max_attempts=args.max_attempts,
    )
    return serve(service)


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    spec = ExperimentSpec.load(args.spec)
    client = ServiceClient(host=args.host, port=args.port)
    options: dict = {}
    if args.jobs > 1:
        options["jobs"] = args.jobs
    job = client.submit(
        spec.to_dict(), name=args.name or spec.name, options=options
    )
    print(f"submitted job {job['id']} ({job['name'] or 'unnamed'})")
    if not args.wait:
        return 0
    job = client.wait(job["id"], timeout_s=args.timeout)
    print(f"job {job['id']} {job['state']} "
          f"(attempts: {job['attempts']})")
    if job["state"] != "done":
        if job.get("error"):
            print(f"error: {job['error']}", file=sys.stderr)
        return 1
    from repro.pipeline.runner import RunResult
    from repro.reporting import render_run_table

    print(render_run_table(RunResult.from_dict(job["result"])))
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    from repro.reporting import render_job_table
    from repro.service import ServiceClient

    summaries = ServiceClient(host=args.host, port=args.port).jobs()
    if not summaries:
        print("no jobs")
        return 0
    print(render_job_table(summaries))
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    job = ServiceClient(host=args.host, port=args.port).cancel(args.job_id)
    print(f"job {job['id']} cancelled")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.pipeline.cache import (
        ArtifactCache,
        parse_duration,
        parse_size,
    )

    cache = ArtifactCache(args.workdir or None)
    if args.cache_command == "stats":
        print(json.dumps(cache.disk_stats(), indent=2))
        return 0
    if not args.older_than and not args.max_bytes:
        print("error: prune needs --older-than and/or --max-bytes",
              file=sys.stderr)
        return 2
    outcome = cache.prune(
        older_than_s=(
            parse_duration(args.older_than) if args.older_than else None
        ),
        max_bytes=parse_size(args.max_bytes) if args.max_bytes else None,
    )
    print(json.dumps({"root": str(cache.root), **outcome}, indent=2))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro import analysis

    if args.list_rules:
        print(analysis.list_rules())
        return 0
    explicit = args.baseline is not None
    baseline_path = args.baseline or str(
        Path(args.root) / "tools" / "lint-baseline.txt"
    )
    baseline = None if args.no_baseline else baseline_path
    if baseline is not None and not Path(baseline).exists():
        # The default baseline is optional; an explicit one must exist.
        if explicit and not args.write_baseline:
            raise ReproError(f"baseline file not found: {baseline}")
        baseline = None
    def split(raw: list[str]) -> list[str]:
        # "--select RPR1,RPR203" and repeated flags both work.
        return [
            code.strip() for value in raw for code in value.split(",")
            if code.strip()
        ]

    report = analysis.run_lint(
        args.paths,
        select=split(args.select),
        ignore=split(args.ignore),
        baseline=baseline,
        docs_root=args.root if args.docs else None,
    )
    if args.write_baseline:
        count = analysis.write_baseline(report.all_findings, baseline_path)
        print(f"wrote {count} finding(s) to {baseline_path}")
        return 0
    print(analysis.RENDERERS[args.format](report))
    if args.report:
        Path(args.report).write_text(analysis.render_json(report) + "\n")
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ALMOST reproduction command-line flow"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="library log level: -v = INFO, -vv = DEBUG (repro.* loggers)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only log errors from the repro.* loggers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate a benchmark circuit")
    gen.add_argument("benchmark", choices=available_benchmarks())
    gen.add_argument("--scale", default="quick", choices=["quick", "full"])
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=cmd_gen)

    lock = sub.add_parser("lock", help="lock a .bench design with RLL")
    lock.add_argument("design")
    lock.add_argument("--key-size", type=int, default=32)
    lock.add_argument("--seed", type=int, default=0)
    lock.add_argument("--out", required=True)
    lock.set_defaults(func=cmd_lock)

    synth = sub.add_parser("synth", help="apply a synthesis recipe")
    synth.add_argument("design")
    synth.add_argument("--recipe", default="resyn2",
                       help='"resyn2" or e.g. "b;rw;rfz;b"')
    synth.add_argument("--verify", default="none",
                       choices=["none", "sim", "sat"],
                       help="check the result against the input (sat = "
                            "exact equivalence proof)")
    synth.add_argument("--out", required=True)
    synth.set_defaults(func=cmd_synth)

    ppa = sub.add_parser("ppa", help="map and report PPA as JSON")
    ppa.add_argument("design")
    ppa.add_argument("--opt", action="store_true",
                     help="run the +opt sizing flow")
    ppa.set_defaults(func=cmd_ppa)

    attack = sub.add_parser(
        "attack", help="run an oracle-less attack against a locked design"
    )
    attack.add_argument("design")
    attack.add_argument("--attack", default="omla",
                        choices=oracle_less_attacks()
                        + sorted(ORACLE_GUIDED_ATTACKS),
                        help="attack registry name (oracle-less family)")
    attack.add_argument("--recipe", default="resyn2")
    attack.add_argument("--key", default="",
                        help="true key bits for accuracy scoring")
    attack.add_argument("--epochs", type=int, default=20)
    attack.add_argument("--samples", type=int, default=64)
    attack.add_argument("--relock-bits", type=int, default=32)
    attack.add_argument("--num-patterns", type=int, default=128,
                        help="fault patterns for the redundancy attack")
    attack.add_argument("--seed", type=int, default=0)
    _add_cache_flags(attack)
    attack.set_defaults(func=cmd_attack)

    sat_attack = sub.add_parser(
        "sat-attack",
        help="run an oracle-guided DIP-loop attack against a locked design",
    )
    sat_attack.add_argument("design")
    sat_attack.add_argument("--attack", default="sat",
                            choices=sorted(ORACLE_GUIDED_ATTACKS),
                            help="exact DIP loop (sat) or the AppSAT "
                                 "approximate variant (appsat)")
    sat_attack.add_argument("--key", default="",
                            help="true key bits (builds the oracle)")
    sat_attack.add_argument("--recipe", default="none",
                            help="synthesis applied before the attack "
                                 "(default: none — attack the file as given)")
    sat_attack.add_argument("--max-iterations", type=int, default=512,
                            help="DIP-loop budget")
    sat_attack.add_argument("--query-period", type=int, default=8,
                            help="appsat: estimate the error every N DIPs")
    sat_attack.add_argument("--random-queries", type=int, default=64,
                            help="appsat: random patterns per estimate")
    sat_attack.add_argument("--error-threshold", type=float, default=0.0,
                            help="appsat: acceptable estimated error rate")
    sat_attack.add_argument("--settle-rounds", type=int, default=2,
                            help="appsat: passing estimates before exit")
    sat_attack.add_argument("--seed", type=int, default=0)
    _add_trace_flag(sat_attack)
    _add_cache_flags(sat_attack)
    sat_attack.set_defaults(func=cmd_sat_attack)

    equiv = sub.add_parser(
        "equiv",
        help="SAT-prove two .bench designs equivalent (exit 1 + "
             "counterexample if not)",
    )
    equiv.add_argument("first")
    equiv.add_argument("second")
    equiv.add_argument("--key", default="",
                       help="key bits applied to close any keyinput* pins "
                            "before comparing")
    equiv.set_defaults(func=cmd_equiv)

    defend = sub.add_parser(
        "defend",
        help="apply a defense: the ALMOST recipe search or a "
             "SAT-resilient point-function scheme",
    )
    defend.add_argument("design")
    defend.add_argument("--scheme", default="almost",
                        choices=["almost", "antisat", "sarlock",
                                 "rll+antisat", "rll+sarlock"],
                        help="almost = SA recipe search (needs a locked "
                             "design + --key); antisat/sarlock graft a "
                             "point-function block onto a locked design "
                             "(or lock an unlocked one); rll+* lock an "
                             "unlocked design with RLL first")
    defend.add_argument("--key", default="", help="the defender's key bits")
    defend.add_argument("--key-size", type=int, default=16,
                        help="RLL key bits for the rll+* schemes")
    defend.add_argument("--width", type=int, default=0,
                        help="point-function comparator width "
                             "(0 = every functional input)")
    defend.add_argument("--iterations", type=int, default=20)
    defend.add_argument("--epochs", type=int, default=15)
    defend.add_argument("--samples", type=int, default=48)
    defend.add_argument("--seed", type=int, default=0)
    defend.add_argument("--out", default="")
    _add_cache_flags(defend)
    defend.set_defaults(func=cmd_defend)

    almost = sub.add_parser(
        "almost",
        help="run the ALMOST recipe search with a selectable strategy "
             "(batched search engine: sa | pt | beam | random)",
    )
    almost.add_argument("design", help="a locked .bench design")
    almost.add_argument("--key", default="", help="the defender's key bits")
    almost.add_argument("--strategy", default="sa",
                        choices=available_strategies(),
                        help="search strategy (sa = the paper's serial "
                             "annealer; pt = parallel tempering; beam = "
                             "greedy beam; random = sampling baseline)")
    almost.add_argument("--chains", type=int, default=1,
                        help="candidate batch size: tempering chains / "
                             "beam width / samples per round")
    almost.add_argument("--jobs", type=int, default=1,
                        help="process-pool width for candidate scoring")
    almost.add_argument("--iterations", type=int, default=20,
                        help="search rounds (each scores one batch)")
    almost.add_argument("--epochs", type=int, default=15)
    almost.add_argument("--samples", type=int, default=48)
    almost.add_argument("--seed", type=int, default=0)
    almost.add_argument("--out", default="",
                        help="write the defended netlist here")
    _add_trace_flag(almost)
    _add_cache_flags(almost)
    almost.set_defaults(func=cmd_almost)

    run = sub.add_parser(
        "run", help="execute a declarative experiment spec (.toml/.json)"
    )
    run.add_argument("spec", help="spec file; see the README's "
                                  "'Experiment pipeline' section")
    run.add_argument("--jobs", type=int, default=1,
                     help="process-pool width for independent grid cells")
    run.add_argument("--out", default="",
                     help="write the structured RunResult JSON here")
    _add_trace_flag(run)
    _add_cache_flags(run)
    run.set_defaults(func=cmd_run)

    grid = sub.add_parser(
        "grid",
        help="run a benchmark × attack grid built from flags (or a spec "
             "file via --spec; supports DefenseSpec strategy sweeps)",
    )
    grid.add_argument("--spec", default="",
                      help="run this .toml/.json ExperimentSpec instead of "
                           "building one from flags (e.g. a strategy-sweep "
                           "spec with strategy = [\"sa\", \"pt\", \"beam\"])")
    grid.add_argument("--benchmarks", default="",
                      help="comma-separated ISCAS85 names and/or .bench paths")
    grid.add_argument("--attacks", default="",
                      help=f"comma-separated registry names "
                           f"(e.g. {','.join(available('attack'))})")
    grid.add_argument("--defense", default="",
                      choices=["", *available("defense")],
                      help="optional defense stage for every cell "
                           "(almost = recipe search)")
    grid.add_argument("--strategies", default="sa",
                      help="comma-separated search strategies for "
                           "--defense almost; more than one declares a "
                           "strategy sweep (one grid row per strategy)")
    grid.add_argument("--chains", type=int, default=1,
                      help="search candidate batch size per strategy")
    grid.add_argument("--defense-iterations", type=int, default=10,
                      help="search rounds for the defense stage")
    grid.add_argument("--defense-samples", type=int, default=48,
                      help="proxy training samples for the defense stage")
    grid.add_argument("--defense-epochs", type=int, default=15,
                      help="proxy training epochs for the defense stage")
    grid.add_argument("--report", default="table",
                      choices=available("reporter"),
                      help="reporter for the run (search = the strategy-"
                           "comparison table)")
    grid.add_argument("--locker", default="rll",
                      help=f"locker registry name "
                           f"(e.g. {','.join(available('locker'))})")
    grid.add_argument("--key-size", type=int, default=16)
    grid.add_argument("--max-iterations", type=int, default=512,
                      help="DIP budget for the oracle-guided attacks "
                           "(sat/appsat grid cells)")
    grid.add_argument("--recipe", default="resyn2")
    grid.add_argument("--scale", default="quick",
                      choices=["quick", "standard", "full"])
    grid.add_argument("--seed", type=int, default=0)
    grid.add_argument("--jobs", type=int, default=1)
    grid.add_argument("--name", default="grid")
    grid.add_argument("--out", default="",
                      help="write the structured RunResult JSON here")
    grid.add_argument("--dump-spec", default="",
                      help="also save the equivalent spec file "
                           "(.toml/.json) for `repro run`")
    _add_trace_flag(grid)
    _add_cache_flags(grid)
    # The subparser rides along so --spec conflict checks can read the
    # authoritative flag defaults instead of duplicating them.
    grid.set_defaults(func=cmd_grid, _grid_parser=grid)

    serve = sub.add_parser(
        "serve",
        help="run the async job daemon: accept specs over HTTP, execute "
             "them on a supervised worker pool, survive crashes",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8737,
                       help="HTTP port (0 = pick an ephemeral one)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes in the pool")
    serve.add_argument("--state-dir", default="",
                       help="event-log directory (default $REPRO_STATE_DIR "
                            "or ~/.local/state/repro); restarting over the "
                            "same dir resumes unfinished jobs")
    serve.add_argument("--watchdog", type=float, default=60.0,
                       help="seconds without a heartbeat before a busy "
                            "worker is presumed wedged and killed")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="dispatches per job before a crash loop is "
                            "declared FAILED")
    _add_cache_flags(serve)
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit an experiment spec to a running job daemon"
    )
    submit.add_argument("spec", help="spec file (.toml/.json)")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8737)
    submit.add_argument("--name", default="",
                        help="job label (default: the spec's name)")
    submit.add_argument("--jobs", type=int, default=1,
                        help="in-worker process fan-out for the job's "
                             "grid cells")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job settles and print its "
                             "result table")
    submit.add_argument("--timeout", type=float, default=3600.0,
                        help="--wait limit in seconds")
    submit.set_defaults(func=cmd_submit)

    jobs = sub.add_parser(
        "jobs", help="list the daemon's jobs as a table"
    )
    jobs.add_argument("--host", default="127.0.0.1")
    jobs.add_argument("--port", type=int, default=8737)
    jobs.set_defaults(func=cmd_jobs)

    cancel = sub.add_parser(
        "cancel", help="cancel a queued or running job by id"
    )
    cancel.add_argument("job_id")
    cancel.add_argument("--host", default="127.0.0.1")
    cancel.add_argument("--port", type=int, default=8737)
    cancel.set_defaults(func=cmd_cancel)

    cache = sub.add_parser(
        "cache", help="inspect or prune the on-disk artifact cache"
    )
    cache.add_argument("--workdir", default="",
                       help="cache root (default $REPRO_CACHE_DIR or "
                            "~/.cache/repro)")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="print entry count, bytes and schema as JSON"
    )
    # SUPPRESS keeps the parent's --workdir value unless the flag is
    # given after the subcommand too — both positions work.
    cache_stats.add_argument("--workdir", default=argparse.SUPPRESS)
    cache_stats.set_defaults(func=cmd_cache)
    cache_prune = cache_sub.add_parser(
        "prune", help="evict entries by age and/or total-size budget"
    )
    cache_prune.add_argument("--workdir", default=argparse.SUPPRESS)
    cache_prune.add_argument("--older-than", default="",
                             help="evict entries older than this "
                                  "(e.g. 90s, 15m, 6h, 30d, 2w)")
    cache_prune.add_argument("--max-bytes", default="",
                             help="evict oldest-first until the cache "
                                  "fits (e.g. 500M, 2G)")
    cache_prune.set_defaults(func=cmd_cache)

    trace = sub.add_parser(
        "trace",
        help="render the span tree and top-hotspots table from a trace "
             "JSONL file recorded with --trace",
    )
    trace.add_argument("trace_file", help="JSONL file written by --trace")
    trace.add_argument("--top", type=int, default=10,
                       help="hotspot rows to show")
    trace.add_argument("--depth", type=int, default=0,
                       help="limit the span tree to this depth (0 = all)")
    trace.set_defaults(func=cmd_trace)

    lint = sub.add_parser(
        "lint",
        help="run the repo's AST invariant checker (determinism, "
             "picklability, convention rules) over python sources",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=["text", "github", "json"], default="text",
        help="output format (github = workflow annotations)",
    )
    lint.add_argument(
        "--select", action="append", default=[], metavar="RULES",
        help="only run these rule codes/prefixes (e.g. RPR1, RPR203); "
             "repeatable, comma-separated values allowed",
    )
    lint.add_argument(
        "--ignore", action="append", default=[], metavar="RULES",
        help="skip these rule codes/prefixes; repeatable",
    )
    lint.add_argument(
        "--baseline", default=None,
        help="baseline file of grandfathered findings "
             "(default: tools/lint-baseline.txt if it exists)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, including baselined ones",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--docs", action="store_true",
        help="also run the documentation checks (RPR4xx: broken links, "
             "documented-but-missing subcommands)",
    )
    lint.add_argument(
        "--root", default=".",
        help="repo root for docs checks and the default baseline path",
    )
    lint.add_argument(
        "--report", default=None, metavar="FILE",
        help="additionally write the JSON report to FILE",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_cli_logging(verbose=args.verbose, quiet=args.quiet)
    trace_path = getattr(args, "trace", "")
    try:
        if trace_path:
            # The tracer is active (and global) for the whole command; on
            # exit it drains any worker queue, flushes the JSONL sink and
            # shuts the bridge down.
            with Tracer(trace_path) as tracer, use_tracer(tracer):
                code = args.func(args)
            # tracer.path, not trace_path: on a name collision the sink
            # moves to a suffixed sibling (see Tracer._open_sink).
            print(f"wrote trace to {tracer.path}")
            return code
        return args.func(args)
    except KeyboardInterrupt:
        # Commands that can salvage partial work catch this themselves
        # (repro run/grid return 130 with a partial result); anything
        # else just exits with the conventional interrupt code.
        print("interrupted", file=sys.stderr)
        return 130
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
