"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type to handle any library failure.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class NetlistError(ReproError):
    """Malformed netlist: dangling nets, duplicate names, bad gate arity."""


class BenchParseError(NetlistError):
    """A ``.bench`` file could not be parsed."""


class AigError(ReproError):
    """Invalid AIG operation (bad literal, missing node, cyclic graph)."""


class SynthesisError(ReproError):
    """A synthesis transformation failed or a recipe is malformed."""


class MappingError(ReproError):
    """Technology mapping failed (no cell matches a required function)."""


class LockingError(ReproError):
    """Logic locking failed (key size too large, no insertion points)."""


class AttackError(ReproError):
    """An attack could not run (no key inputs, empty training data)."""


class SatError(ReproError):
    """SAT machinery failure (bad CNF, DIMACS parse error, miter mismatch)."""


class MLError(ReproError):
    """Autograd / model construction or training error."""


class SearchError(ReproError):
    """Recipe-search engine failure (unknown strategy, bad batch shape)."""


class PipelineError(ReproError):
    """Experiment pipeline failure (bad stage graph, unknown registration)."""


class SpecError(PipelineError):
    """An experiment spec is malformed (bad field, type, or file format)."""


class CacheError(PipelineError):
    """The artifact cache is unusable (unwritable root, corrupt entry)."""


class AnalysisError(ReproError):
    """Static-analysis failure (duplicate rule code, bad baseline file)."""


class ServiceError(ReproError):
    """Job-service failure (daemon unreachable, bad request, HTTP error)."""


class JobStateError(ServiceError):
    """An invalid job-state transition was attempted (or an unknown job)."""
