"""repro — reproduction of ALMOST (DAC 2023).

*ALMOST: Adversarial Learning to Mitigate Oracle-less ML Attacks via
Synthesis Tuning* (Chowdhury et al.).  The package implements the full
stack from scratch: AIG logic synthesis (ABC-equivalent recipes), RLL logic
locking, a NanGate45-flavoured technology mapper with PPA analysis, the
oracle-less attacks (OMLA / SCOPE / Redundancy / SnapShot / SAIL),
adversarially trained proxy attack models, and the SA-based security-aware
recipe search — plus a SAT subsystem (:mod:`repro.sat`: CNF encoding, CDCL
solver, miter equivalence checking) powering the oracle-guided SAT attack
and exact function-preservation proofs for synthesis, the SAT-resilient
point-function defenses (:mod:`repro.defenses`: Anti-SAT, SARLock,
compound locks with partitioned keys) and the AppSAT approximate attack
that answers them.

Quickstart — the pipeline front door.  Declare the experiment, run the
grid; stages are content-hash cached and independent cells fan out over a
process pool::

    from repro.pipeline import (
        AttackSpec, BenchmarkSpec, ExperimentSpec, LockSpec, run_experiment,
    )

    spec = ExperimentSpec(
        benchmarks=(BenchmarkSpec(name="c1908"),),
        lock=LockSpec(locker="rll", key_size=32, seed=0),
        attacks=(AttackSpec("omla"), AttackSpec("scope")),
    )
    run = run_experiment(spec, jobs=2)
    print(run.cell("c1908", "omla").accuracy)

The same spec round-trips through TOML/JSON (``repro run spec.toml``,
``repro grid``).  The primitive layer stays public for surgical work::

    from repro import (
        load_iscas85, lock_rll, RESYN2, synthesize_and_map,
        build_resyn2_proxy, AlmostDefense,
    )

    design = load_iscas85("c1908")
    locked = lock_rll(design, key_size=32, seed=0)
    proxy = build_resyn2_proxy(locked)
    result = AlmostDefense(proxy).generate_recipe()
    netlist, mapped = synthesize_and_map(locked.netlist, result.recipe)
"""

import logging as _logging

# Library code logs under the "repro.*" hierarchy (repro.obs.logs) and
# never prints; the NullHandler silences "no handler" warnings until an
# application — e.g. the CLI via --verbose/--quiet — attaches one.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from repro.circuits import load_iscas85, available_benchmarks
from repro.locking import Key, LockedCircuit, lock_rll, relock, apply_key
from repro.synth import RESYN2, Recipe, random_recipe, apply_recipe
from repro.synth.engine import synthesize_and_map, synthesize_netlist
from repro.aig import Aig, aig_from_netlist, netlist_from_aig
from repro.mapping import map_aig, analyze_ppa, optimize_mapping, nangate45_library
from repro.attacks import (
    AppSatAttack,
    OmlaAttack,
    OmlaConfig,
    RedundancyAttack,
    SailAttack,
    SatAttack,
    ScopeAttack,
    SnapShotAttack,
)
from repro.defenses import compound, lock_antisat, lock_sarlock, lock_scheme
from repro.sat import CdclSolver, check_equivalence
from repro.core import (
    AlmostConfig,
    AlmostDefense,
    AlmostResult,
    ProxyConfig,
    train_adversarial_attack,
)
from repro.core.proxy import build_random_proxy, build_resyn2_proxy
from repro.core.almost import defend
from repro.pipeline import (
    AttackSpec,
    BenchmarkSpec,
    DefenseSpec,
    ExperimentSpec,
    LockSpec,
    ReportSpec,
    RunResult,
    Runner,
    SynthSpec,
    run_experiment,
)

__version__ = "1.3.0"

__all__ = [
    "load_iscas85",
    "available_benchmarks",
    "Key",
    "LockedCircuit",
    "lock_rll",
    "relock",
    "apply_key",
    "RESYN2",
    "Recipe",
    "random_recipe",
    "apply_recipe",
    "synthesize_and_map",
    "synthesize_netlist",
    "Aig",
    "aig_from_netlist",
    "netlist_from_aig",
    "map_aig",
    "analyze_ppa",
    "optimize_mapping",
    "nangate45_library",
    "AppSatAttack",
    "OmlaAttack",
    "OmlaConfig",
    "RedundancyAttack",
    "SailAttack",
    "SatAttack",
    "ScopeAttack",
    "SnapShotAttack",
    "compound",
    "lock_antisat",
    "lock_sarlock",
    "lock_scheme",
    "CdclSolver",
    "check_equivalence",
    "AlmostConfig",
    "AlmostDefense",
    "AlmostResult",
    "ProxyConfig",
    "train_adversarial_attack",
    "build_resyn2_proxy",
    "build_random_proxy",
    "defend",
    "AttackSpec",
    "BenchmarkSpec",
    "DefenseSpec",
    "ExperimentSpec",
    "LockSpec",
    "ReportSpec",
    "SynthSpec",
    "Runner",
    "RunResult",
    "run_experiment",
]
