"""repro — reproduction of ALMOST (DAC 2023).

*ALMOST: Adversarial Learning to Mitigate Oracle-less ML Attacks via
Synthesis Tuning* (Chowdhury et al.).  The package implements the full
stack from scratch: AIG logic synthesis (ABC-equivalent recipes), RLL logic
locking, a NanGate45-flavoured technology mapper with PPA analysis, the
oracle-less attacks (OMLA / SCOPE / Redundancy / SnapShot), adversarially
trained proxy attack models, and the SA-based security-aware recipe search —
plus a SAT subsystem (:mod:`repro.sat`: CNF encoding, CDCL solver, miter
equivalence checking) powering the oracle-guided SAT attack and exact
function-preservation proofs for synthesis.

Quickstart::

    from repro import (
        load_iscas85, lock_rll, RESYN2, synthesize_and_map,
        build_resyn2_proxy, AlmostDefense,
    )

    design = load_iscas85("c1908")
    locked = lock_rll(design, key_size=32, seed=0)
    proxy = build_resyn2_proxy(locked)
    result = AlmostDefense(proxy).generate_recipe()
    netlist, mapped = synthesize_and_map(locked.netlist, result.recipe)
"""

from repro.circuits import load_iscas85, available_benchmarks
from repro.locking import Key, LockedCircuit, lock_rll, relock, apply_key
from repro.synth import RESYN2, Recipe, random_recipe, apply_recipe
from repro.synth.engine import synthesize_and_map, synthesize_netlist
from repro.aig import Aig, aig_from_netlist, netlist_from_aig
from repro.mapping import map_aig, analyze_ppa, optimize_mapping, nangate45_library
from repro.attacks import (
    OmlaAttack,
    OmlaConfig,
    RedundancyAttack,
    SatAttack,
    ScopeAttack,
    SnapShotAttack,
)
from repro.sat import CdclSolver, check_equivalence
from repro.core import (
    AlmostConfig,
    AlmostDefense,
    AlmostResult,
    ProxyConfig,
    train_adversarial_attack,
)
from repro.core.proxy import build_random_proxy, build_resyn2_proxy
from repro.core.almost import defend

__version__ = "1.1.0"

__all__ = [
    "load_iscas85",
    "available_benchmarks",
    "Key",
    "LockedCircuit",
    "lock_rll",
    "relock",
    "apply_key",
    "RESYN2",
    "Recipe",
    "random_recipe",
    "apply_recipe",
    "synthesize_and_map",
    "synthesize_netlist",
    "Aig",
    "aig_from_netlist",
    "netlist_from_aig",
    "map_aig",
    "analyze_ppa",
    "optimize_mapping",
    "nangate45_library",
    "OmlaAttack",
    "OmlaConfig",
    "RedundancyAttack",
    "SatAttack",
    "ScopeAttack",
    "SnapShotAttack",
    "CdclSolver",
    "check_equivalence",
    "AlmostConfig",
    "AlmostDefense",
    "AlmostResult",
    "ProxyConfig",
    "train_adversarial_attack",
    "build_resyn2_proxy",
    "build_random_proxy",
    "defend",
]
