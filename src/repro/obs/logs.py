"""The ``repro.*`` logging hierarchy.

Library modules log through :func:`get_logger` (module loggers under the
``repro`` root, which carries a ``NullHandler`` — see
``repro/__init__.py``) and never write to stdout/stderr themselves; only
the CLI attaches a real handler, via :func:`configure_cli_logging` driven
by ``--verbose`` / ``--quiet``::

    >>> log = get_logger("repro.pipeline.runner")
    >>> log.name
    'repro.pipeline.runner'
    >>> get_logger("synth.engine").name   # bare names are rooted
    'repro.synth.engine'
"""

from __future__ import annotations

import logging
import sys

ROOT_LOGGER = "repro"


def get_logger(name: str) -> logging.Logger:
    """Module logger under the ``repro`` hierarchy.

    Pass ``__name__``; bare names (no ``repro.`` prefix) are rooted under
    the package so CLI verbosity controls them too.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def configure_cli_logging(verbose: int = 0, quiet: bool = False) -> int:
    """Attach the CLI's stderr handler to the ``repro`` root logger.

    ``quiet`` → ERROR, default → WARNING, ``-v`` → INFO, ``-vv`` → DEBUG.
    Replaces any handler a previous call attached (tests call this
    repeatedly), never touches the global root logger, and returns the
    level it configured.
    """
    if quiet:
        level = logging.ERROR
    elif verbose >= 2:
        level = logging.DEBUG
    elif verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING

    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_cli", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    handler._repro_cli = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    return level
