"""Hierarchical tracing: spans, a buffered JSONL sink, a worker bridge.

A *span* is one timed region of a run — ``run`` → ``cell`` → ``stage`` →
``search.round`` → ``sat.solve`` — opened as a context manager on the
process-local tracer.  Spans nest lexically (the tracer keeps the open
stack), carry free-form attributes, and on close record the **delta of
every metrics counter** (:mod:`repro.obs.metrics`) that moved while they
were open, which is what ties "this attack stage" to "these 9 DIPs, 412
conflicts, 18 oracle queries" without hand-threading numbers through
return values.

The default tracer is a :class:`NullTracer` whose ``span()`` returns one
shared no-op object — the disabled path allocates nothing and is pinned
near zero by ``benchmarks/test_bench_obs.py``.  Instrumentation points
therefore never guard themselves::

    >>> with get_tracer().span("demo"):   # NullTracer: no-op
    ...     pass
    >>> tracer = Tracer()
    >>> with use_tracer(tracer):
    ...     with tracer.span("run", label="demo"):
    ...         with tracer.span("stage", stage="lock"):
    ...             pass
    >>> [r["name"] for r in tracer.records]
    ['stage', 'run']
    >>> tracer.records[0]["parent_id"] == tracer.records[1]["span_id"]
    True

**Cross-process bridge.**  Pool workers (grid cells, ``ProcessPoolEvaluator``
scoring) report into the parent's stream through a ``multiprocessing``
manager queue: :meth:`Tracer.worker_handle` lazily creates the queue and
returns a picklable handle (``__getstate__`` drops the unpicklable manager,
mirroring :class:`~repro.synth.cache.SharedSynthCache`); unpickled handles
emit straight into the queue, and the parent folds the queue back into its
buffer with :meth:`Tracer.drain` when the pool is torn down.  Worker spans
parent to whatever span was open when the handle was created, so the tree
stays connected across process boundaries.
"""

from __future__ import annotations

import itertools
import json
import os
import queue as _queue_mod
import time
from contextlib import contextmanager
from typing import IO, Iterator, Optional, Union

from repro.obs.metrics import REGISTRY

#: Bumped when the JSONL record shape changes (see docs/observability.md).
TRACE_SCHEMA = 1

#: Process-wide span-id counter.  Module-level so handles unpickled for
#: different pool tasks in the same worker process never reuse an id.
_ID_COUNTER = itertools.count(1)


def _next_span_id() -> str:
    return f"{os.getpid():x}-{next(_ID_COUNTER):x}"


class Span:
    """One open trace region; created by :meth:`Tracer.span`."""

    __slots__ = (
        "tracer", "name", "span_id", "parent_id", "attrs",
        "_started", "_wall", "_counters",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.span_id = _next_span_id()
        self.parent_id: Optional[str] = None
        self.attrs = attrs
        self._started = 0.0
        self._wall = 0.0
        self._counters: dict[str, int] = {}

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (cache-hit flags, sizes)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.parent_id = self.tracer._push(self)
        self._wall = time.time()
        self._counters = REGISTRY.counters()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._started
        before = self._counters
        deltas = {
            name: value - before.get(name, 0)
            for name, value in REGISTRY.counters().items()
            if value != before.get(name, 0)
        }
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._pop(self)
        self.tracer._emit(
            {
                "kind": "span",
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "pid": os.getpid(),
                "t_wall": round(self._wall, 6),
                "elapsed_s": round(elapsed, 6),
                "attrs": self.attrs,
                "metrics": deltas,
            }
        )
        return False


class _NullSpan:
    """The shared no-op span the disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing: every call is a no-op, nothing is allocated."""

    enabled = False
    records: tuple = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def worker_handle(self) -> None:
        """No bridge when tracing is off — workers get ``None``."""
        return None

    def drain(self) -> int:
        return 0

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class Tracer:
    """Collects spans into a buffer and (optionally) a JSONL file.

    ``path`` names the sink; records are buffered and written out every
    ``buffer_limit`` records and on :meth:`flush`/:meth:`close`.  Without a
    path everything stays in :attr:`records` (what the tests read).  The
    tracer is also a context manager — ``with Tracer(path) as t`` closes
    (drains, flushes, shuts the bridge down) on exit.
    """

    enabled = True

    def __init__(
        self,
        path: Optional[Union[str, os.PathLike]] = None,
        buffer_limit: int = 256,
    ):
        self.path = str(path) if path else None
        self.buffer_limit = buffer_limit
        self.records: list[dict] = []
        self._stack: list[Span] = []
        self._sink: Optional[IO[str]] = None
        self._manager = None
        self._qsend = None
        self._worker = False
        self._remote_parent: Optional[str] = None
        self._closed = False

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """A point-in-time record under the currently open span."""
        self._emit(
            {
                "kind": "event",
                "name": name,
                "span_id": _next_span_id(),
                "parent_id": self.current_span_id(),
                "pid": os.getpid(),
                "t_wall": round(time.time(), 6),
                "elapsed_s": 0.0,
                "attrs": attrs,
                "metrics": {},
            }
        )

    def current_span_id(self) -> Optional[str]:
        if self._stack:
            return self._stack[-1].span_id
        return self._remote_parent

    def _push(self, span: Span) -> Optional[str]:
        parent = self.current_span_id()
        self._stack.append(span)
        return parent

    def _pop(self, span: Span) -> None:
        # Tolerate a mispaired exit instead of corrupting the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            self._stack.remove(span)

    # -- record flow -------------------------------------------------------

    def _emit(self, record: dict) -> None:
        if self._worker:
            self._qsend.put(record)
            return
        self.records.append(record)
        if self.path and len(self.records) >= self.buffer_limit:
            self.flush()

    @property
    def span_count(self) -> int:
        return sum(1 for r in self.records if r.get("kind") == "span")

    # -- the cross-process bridge -----------------------------------------

    def worker_handle(self) -> "Tracer":
        """A handle pool workers install (``set_tracer``) and emit through.

        Creates the manager-backed queue on first use (tracing without
        fan-out never pays the manager-process cost).  The handle is a
        *separate* tracer already in worker mode: pool initargs are
        inherited as-is under the ``fork`` start method (no pickling
        happens), so the mode flip cannot be left to ``__setstate__``.
        Under ``spawn`` the handle pickles fine too — ``__getstate__``
        keeps the queue proxy and drops everything else.
        """
        if self._worker:
            return self
        if self._qsend is None:
            import multiprocessing

            self._manager = multiprocessing.Manager()
            self._qsend = self._manager.Queue()
        handle = Tracer.__new__(Tracer)
        handle.__setstate__(
            {
                "path": None,
                "buffer_limit": self.buffer_limit,
                "_qsend": self._qsend,
                "_remote_parent": self.current_span_id(),
            }
        )
        return handle

    def __getstate__(self) -> dict:
        if self._qsend is None:
            raise TypeError(
                "Tracer is only picklable as a worker handle — call "
                "worker_handle() first"
            )
        return {
            "path": None,
            "buffer_limit": self.buffer_limit,
            "_qsend": self._qsend,
            # Worker spans hang off whatever span is open right now, so
            # the parent's tree stays connected across the pool boundary.
            "_remote_parent": self.current_span_id(),
        }

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self.buffer_limit = state["buffer_limit"]
        self.records = []
        self._stack = []
        self._sink = None
        self._manager = None
        self._qsend = state["_qsend"]
        self._worker = True
        self._remote_parent = state["_remote_parent"]
        self._closed = False

    def drain(self) -> int:
        """Fold queued worker records into the buffer; returns the count.

        Call after a pool's tasks complete (the evaluator/runner teardown
        hooks do).  Safe when no bridge was ever created.
        """
        if self._qsend is None or self._worker:
            return 0
        drained = 0
        while True:
            try:
                record = self._qsend.get_nowait()
            except (_queue_mod.Empty, OSError, EOFError):
                break
            self.records.append(record)
            drained += 1
        if self.path and len(self.records) >= self.buffer_limit:
            self.flush()
        return drained

    # -- sink --------------------------------------------------------------

    def _open_sink(self) -> IO[str]:
        """Exclusively create the sink file, never clobbering a sibling.

        Two tracers pointed at the same path (two grid runs launched with
        the same ``--trace`` argument, a daemon and a CLI sharing a
        scratch dir) used to silently truncate each other's output.
        ``O_EXCL`` makes creation atomic; on collision the name gets a
        ``-1``/``-2``/... suffix and :attr:`path` is updated to the file
        actually written, so callers report the real location.
        """
        base = self.path
        stem, dot, ext = base.rpartition(".")
        for attempt in range(1000):
            candidate = (
                base if attempt == 0
                else f"{stem}-{attempt}{dot}{ext}" if dot
                else f"{base}-{attempt}"
            )
            try:
                fd = os.open(
                    candidate, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                continue
            self.path = candidate
            return os.fdopen(fd, "w")
        raise OSError(
            f"could not create trace sink near {base!r}: 1000 suffixed "
            "names already exist"
        )

    def flush(self) -> None:
        """Append buffered records to the JSONL sink (no-op without one).

        Opens the sink (writing the header line) on first call even with an
        empty buffer, so a traced run always leaves a readable file behind.
        """
        if not self.path:
            return
        if self._sink is None:
            self._sink = self._open_sink()
            self._sink.write(
                json.dumps(
                    {"kind": "header", "schema": TRACE_SCHEMA,
                     "pid": os.getpid(), "t_wall": round(time.time(), 6)}
                )
                + "\n"
            )
        for record in self.records:
            self._sink.write(json.dumps(record) + "\n")
        self._sink.flush()
        self.records = []

    def close(self) -> None:
        """Drain the bridge, flush the sink, shut the bridge down."""
        if self._closed:
            return
        self._closed = True
        if not self._worker:
            self.drain()
            self.flush()
            if self._sink is not None:
                self._sink.close()
                self._sink = None
            if self._manager is not None:
                self._manager.shutdown()
                self._manager = None
                self._qsend = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: The process-local active tracer; NullTracer until someone enables one.
_TRACER: Union[Tracer, NullTracer] = NullTracer()


def get_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer — what every instrumentation point calls."""
    return _TRACER


def set_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> None:
    """Install ``tracer`` as the process's active tracer (None disables)."""
    global _TRACER
    _TRACER = tracer if tracer is not None else NullTracer()


@contextmanager
def use_tracer(
    tracer: Optional[Union[Tracer, NullTracer]],
) -> Iterator[Union[Tracer, NullTracer]]:
    """Scoped :func:`set_tracer`; restores the previous tracer on exit."""
    previous = _TRACER
    set_tracer(tracer)
    try:
        yield _TRACER
    finally:
        set_tracer(previous)
