"""Run-wide observability: spans + metrics + logging.

Three small, dependency-free layers (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — a process-local registry of named counters /
  gauges / histograms that instrumentation points increment.
* :mod:`repro.obs.trace` — hierarchical spans (run → cell → stage →
  search round → SAT solve) that snapshot the counters on entry and record
  the deltas on close, a buffered JSONL sink, and a manager-queue bridge
  that lets pool workers report into the parent's stream.
* :mod:`repro.obs.logs` — the ``repro.*`` logging hierarchy and the CLI's
  ``--verbose`` / ``--quiet`` configuration hook.
"""

from repro.obs.logs import configure_cli_logging, get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    get_registry,
    histogram,
    inc,
)
from repro.obs.trace import (
    NullTracer,
    Span,
    TRACE_SCHEMA,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "NullTracer",
    "REGISTRY",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "configure_cli_logging",
    "counter",
    "gauge",
    "get_logger",
    "get_registry",
    "get_tracer",
    "histogram",
    "inc",
    "set_tracer",
    "use_tracer",
]
