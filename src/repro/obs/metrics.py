"""Process-local metrics registry: counters, gauges and histograms.

One registry per process holds every named metric the library increments —
solver effort (``sat.conflicts`` / ``sat.decisions`` / ``sat.propagations``
/ ``sat.restarts``), DIP-loop progress (``dip.iterations`` /
``dip.oracle_queries``), search accounting (``search.rounds`` /
``search.energy_evaluations``), recipe-prefix synthesis-cache traffic
(``synth_cache.prefix_hits`` / ``prefix_misses`` / ``steps_saved`` /
``steps_executed``) and artifact-cache traffic (``artifact_cache.hits`` /
``misses`` / ``writes``).  The canonical name list lives in
``docs/observability.md``.

The registry is deliberately dumb and cheap: metrics are plain attribute
adds behind one dict lookup, instrumentation points sit *outside* hot
loops (the CDCL solver folds its private stats dict in once per ``solve``
call, never per propagation), and there is no locking because the registry
is process-local — cross-process aggregation happens at the span layer
(:mod:`repro.obs.trace`), where every span snapshots the counters on entry
and records the deltas on close::

    >>> registry = MetricsRegistry()
    >>> registry.counter("dip.iterations").inc()
    >>> registry.counter("dip.iterations").inc(2)
    >>> registry.counters()["dip.iterations"]
    3
    >>> registry.histogram("stage.elapsed_s").observe(0.5)
    >>> registry.snapshot()["stage.elapsed_s.count"]
    1
"""

from __future__ import annotations

from typing import Optional


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins numeric metric (pool sizes, cache entry counts)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values (count / sum / min / max)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Create-or-get registry of named metrics for one process.

    A name registered as one kind cannot be re-registered as another —
    that is always an instrumentation bug, surfaced immediately.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_unique(self, name: str, own: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_unique(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_unique(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_unique(name, self._histograms)
            metric = self._histograms[name] = Histogram(name)
        return metric

    def counters(self) -> dict[str, int]:
        """Current counter values (the snapshot spans diff on close)."""
        return {name: c.value for name, c in self._counters.items()}

    def snapshot(self) -> dict[str, float]:
        """Every metric flattened to ``name -> number`` (histograms expand
        to ``.count`` / ``.sum`` / ``.min`` / ``.max`` / ``.mean``)."""
        flat: dict[str, float] = {}
        for name, counter in self._counters.items():
            flat[name] = counter.value
        for name, gauge in self._gauges.items():
            flat[name] = gauge.value
        for name, histogram in self._histograms.items():
            flat[f"{name}.count"] = histogram.count
            flat[f"{name}.sum"] = histogram.total
            if histogram.count:
                flat[f"{name}.min"] = histogram.min
                flat[f"{name}.max"] = histogram.max
                flat[f"{name}.mean"] = histogram.mean
        return flat

    def reset(self) -> None:
        """Zero every metric (tests; a fresh run in a reused process)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The process-local default registry every instrumentation point uses.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)


def inc(name: str, amount: int = 1) -> None:
    """One-line counter increment — the common instrumentation call."""
    REGISTRY.counter(name).inc(amount)
