"""SAT-resilient defenses: point-function locking blocks.

The oracle-guided SAT attack (:mod:`repro.attacks.sat_attack`) dismantles
plain RLL in a handful of DIPs; the classic countermeasures insert a
*point function* whose wrong-key error rate is a single minterm, starving
the DIP loop:

* :func:`lock_antisat` — Anti-SAT (Xie & Srivastava, CHES'16): two
  complementary comparator trees; every ``B||B`` key is correct.
* :func:`lock_sarlock` — SARLock (Yasin et al., HOST'16): comparator vs.
  the key plus a hard-coded mask of the secret; unique correct key.
* :func:`compound` — chain lockers (e.g. RLL + Anti-SAT) into one
  :class:`~repro.locking.rll.LockedCircuit` with a partitioned key: RLL
  supplies output corruption across many minterms, the point function
  supplies SAT resilience.

:func:`lock_scheme` is the by-name front door (``rll``, ``antisat``,
``sarlock`` and the ``+``-joined compounds such as ``rll+antisat``) used by
the CLI and the pipeline locker registry.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

from repro.defenses.antisat import lock_antisat
from repro.defenses.sarlock import lock_sarlock
from repro.defenses.pointfunc import compound, next_key_index
from repro.errors import LockingError
from repro.locking.key import Key
from repro.locking.rll import KeyPartition, LockedCircuit, lock_rll
from repro.netlist.netlist import Netlist
from repro.utils.rng import derive_seed

#: Point-function schemes addressable by name (the ``rll`` base locker is
#: in :mod:`repro.locking`; compounds join names with ``+``).
POINT_FUNCTION_SCHEMES: tuple[str, ...] = ("antisat", "sarlock")


def _stage_locker(scheme: str, key_size: int, width: Optional[int], seed: int):
    if scheme == "rll":
        return partial(lock_rll, key_size=key_size, seed=seed)
    if scheme == "antisat":
        return partial(lock_antisat, width=width, seed=seed)
    if scheme == "sarlock":
        return partial(lock_sarlock, width=width, seed=seed)
    raise LockingError(
        f"unknown locking scheme {scheme!r}; have rll, "
        f"{', '.join(POINT_FUNCTION_SCHEMES)} and '+' compounds thereof"
    )


def lock_scheme(
    netlist: Netlist,
    scheme: str,
    key_size: int = 32,
    width: Optional[int] = None,
    seed: int = 0,
) -> LockedCircuit:
    """Lock ``netlist`` with a named scheme, compounds included.

    ``scheme`` is a single locker name or a ``+``-joined chain applied left
    to right (``rll+antisat``).  ``key_size`` parameterizes the RLL stages;
    ``width`` the point-function comparator width (None/0 = all functional
    inputs).  Each stage draws a distinct seed derived from ``seed`` so
    compound stages never share randomness.
    """
    names = [name.strip() for name in scheme.split("+") if name.strip()]
    if not names:
        raise LockingError(f"empty locking scheme {scheme!r}")
    lockers = [
        _stage_locker(name, key_size, width, derive_seed(seed, "lock", index))
        for index, name in enumerate(names)
    ]
    return compound(netlist, *lockers)


__all__ = [
    "POINT_FUNCTION_SCHEMES",
    "KeyPartition",
    "LockedCircuit",
    "compound",
    "lock_antisat",
    "lock_sarlock",
    "lock_scheme",
    "next_key_index",
]
