"""Anti-SAT point-function locking (Xie & Srivastava, CHES'16).

The Anti-SAT block pairs two complementary comparator trees over the same
input slice ``X`` but independent key halves::

    g    = AND_i (x_i XOR k1_i)          # 1 only on X = ~K1
    gbar = NOT AND_i (x_i XOR k2_i)      # 0 only on X = ~K2
    flip = g AND gbar                    # the masking gate

Whenever the two halves agree (``K1 == K2``) the single minterm where ``g``
fires is exactly where ``gbar`` is 0, so ``flip`` is constant 0 and the
design behaves as the original — every key of the form ``B||B`` is correct,
which is why the recovered key of a SAT attack on Anti-SAT is *never*
unique.  With ``K1 != K2`` the output is corrupted on exactly one minterm
of the selected inputs, so each DIP the attack finds eliminates only the
wrong keys sharing that minterm: the loop needs on the order of ``2^width``
iterations (see ``benchmarks/test_bench_antisat.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import LockingError
from repro.locking.key import Key
from repro.locking.rll import KeyPartition, LockedCircuit
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.defenses.pointfunc import (
    add_key_inputs,
    choose_target,
    inject_flip,
    reduce_tree,
    select_block_inputs,
)

SCHEME = "antisat"


def lock_antisat(
    netlist: Netlist,
    width: Optional[int] = None,
    seed: int = 0,
    key: Optional[Key] = None,
    target: Optional[str] = None,
) -> LockedCircuit:
    """Insert an Anti-SAT block; returns the locked circuit and its key.

    ``width`` selects how many functional inputs feed the comparator trees
    (default/0: all of them — the standard, maximally SAT-resilient form);
    the key has ``2 * width`` bits, halves ``K1 || K2``.  ``key`` overrides
    the generated key but must keep the halves equal (a mismatched pair is
    a *wrong* key by construction).  ``target`` picks the corrupted primary
    output (default: seeded random choice).
    """
    out = netlist.copy()
    block_inputs = select_block_inputs(out, width, seed)
    half = len(block_inputs)
    if key is None:
        base = Key.random(half, seed)
        key = Key(base.bits + base.bits)
    if len(key) != 2 * half:
        raise LockingError(
            f"Anti-SAT key needs {2 * half} bits (2x block width), "
            f"got {len(key)}"
        )
    if key.bits[:half] != key.bits[half:]:
        raise LockingError(
            "Anti-SAT halves K1/K2 must be equal for a correct key"
        )
    key_names = add_key_inputs(out, 2 * half)
    namer = out.fresh_net_namer(f"{SCHEME}_")
    num_original_gates = out.num_gates()

    g_terms = [
        out.add_gate(next(namer), GateType.XOR, (net, key_names[i]))
        for i, net in enumerate(block_inputs)
    ]
    h_terms = [
        out.add_gate(next(namer), GateType.XOR, (net, key_names[half + i]))
        for i, net in enumerate(block_inputs)
    ]
    g = reduce_tree(out, GateType.AND, g_terms, namer)
    h = reduce_tree(out, GateType.AND, h_terms, namer)
    gbar = out.add_gate(next(namer), GateType.NOT, (h,))
    flip = out.add_gate(next(namer), GateType.AND, (g, gbar))

    chosen = choose_target(out, target, seed)
    inject_flip(out, chosen, flip, SCHEME, num_original_gates)
    out.validate()
    return LockedCircuit(
        netlist=out,
        key=key,
        locked_nets=(chosen,),
        key_input_names=tuple(key_names),
        partitions=(KeyPartition(SCHEME, tuple(key_names)),),
    )
