"""SARLock point-function locking (Yasin et al., HOST'16).

SARLock compares the functional inputs against the key with one comparator
tree and masks the single matching minterm of the *correct* key with a
second, constant-folded comparator::

    cmp  = AND_i (x_i XNOR k_i)          # 1 only on X = K
    mask = AND_i (k_i  if ks_i else NOT k_i)   # 1 only on K = Ks
    flip = cmp AND NOT mask              # the masking gate

Under the secret key ``Ks`` the mask holds and the flip never fires; under
any wrong key ``K`` the output is corrupted on exactly the one input
minterm ``X = K`` — the provable "wrong key errs on exactly one pattern"
contract this repo's tests pin down, and the reason the DIP loop can only
eliminate one wrong key per iteration (``2^width - 1`` iterations on a
full-width block).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import LockingError
from repro.locking.key import Key
from repro.locking.rll import KeyPartition, LockedCircuit
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.defenses.pointfunc import (
    add_key_inputs,
    choose_target,
    inject_flip,
    reduce_tree,
    select_block_inputs,
)

SCHEME = "sarlock"


def lock_sarlock(
    netlist: Netlist,
    width: Optional[int] = None,
    seed: int = 0,
    key: Optional[Key] = None,
    target: Optional[str] = None,
) -> LockedCircuit:
    """Insert a SARLock block; returns the locked circuit and its key.

    ``width`` is the comparator width (default/0: every functional input);
    the key has ``width`` bits and — unlike Anti-SAT — is unique: ``key``
    (or a seeded random draw) is hard-coded into the mask comparator, so
    exactly one key value silences the block.
    """
    out = netlist.copy()
    block_inputs = select_block_inputs(out, width, seed)
    if key is None:
        key = Key.random(len(block_inputs), seed)
    if len(key) != len(block_inputs):
        raise LockingError(
            f"SARLock key needs {len(block_inputs)} bits (block width), "
            f"got {len(key)}"
        )
    key_names = add_key_inputs(out, len(block_inputs))
    namer = out.fresh_net_namer(f"{SCHEME}_")
    num_original_gates = out.num_gates()

    cmp_terms = [
        out.add_gate(next(namer), GateType.XNOR, (net, key_names[i]))
        for i, net in enumerate(block_inputs)
    ]
    mask_terms = [
        key_names[i]
        if key.bits[i]
        else out.add_gate(next(namer), GateType.NOT, (key_names[i],))
        for i in range(len(block_inputs))
    ]
    cmp = reduce_tree(out, GateType.AND, cmp_terms, namer)
    mask = reduce_tree(out, GateType.AND, mask_terms, namer)
    unmasked = out.add_gate(next(namer), GateType.NOT, (mask,))
    flip = out.add_gate(next(namer), GateType.AND, (cmp, unmasked))

    chosen = choose_target(out, target, seed)
    inject_flip(out, chosen, flip, SCHEME, num_original_gates)
    out.validate()
    return LockedCircuit(
        netlist=out,
        key=key,
        locked_nets=(chosen,),
        key_input_names=tuple(key_names),
        partitions=(KeyPartition(SCHEME, tuple(key_names)),),
    )
