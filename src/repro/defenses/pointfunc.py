"""Shared machinery for point-function (SAT-resilient) locking blocks.

Anti-SAT and SARLock share one structural idea: a *comparator tree* reduces
a slice of the functional inputs against key inputs to a single match
signal that is 1 on (at most) one input minterm, and a *masking gate* ANDs
in a key-dependent guard so the correct key silences the block entirely.
The resulting flip signal is XORed onto one primary output — with a wrong
key the circuit is wrong on exactly one minterm (of the selected input
slice), so every DIP the SAT attack finds eliminates only a vanishing
fraction of the wrong keys and the query count grows exponentially in the
block width.

This module owns the tree builders, key-input allocation that continues an
existing ``keyinput*`` numbering (so blocks stack on already-locked
designs), the flip-injection rewiring, and the :func:`compound` combinator
that chains independent lockers into one :class:`LockedCircuit` with a
partitioned key.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from repro.errors import LockingError
from repro.locking.key import Key
from repro.locking.rll import KeyPartition, LockedCircuit
from repro.netlist.gates import GateType
from repro.netlist.netlist import KEY_INPUT_PREFIX, Gate, Netlist
from repro.utils.rng import make_rng

Locker = Callable[[Netlist], LockedCircuit]


def next_key_index(netlist: Netlist, prefix: str = KEY_INPUT_PREFIX) -> int:
    """First free ``keyinput`` index, continuing any existing numbering."""
    taken = [
        int(net[len(prefix):])
        for net in netlist.inputs
        if net.startswith(prefix) and net[len(prefix):].isdigit()
    ]
    return max(taken) + 1 if taken else 0


def add_key_inputs(
    netlist: Netlist, count: int, prefix: str = KEY_INPUT_PREFIX
) -> list[str]:
    """Append ``count`` fresh key inputs; returns their names in bit order."""
    start = next_key_index(netlist, prefix)
    names = [f"{prefix}{start + offset}" for offset in range(count)]
    for name in names:
        netlist.add_input(name)
    return names


def reduce_tree(
    netlist: Netlist,
    gate_type,
    nets: Sequence[str],
    namer: Iterator[str],
) -> str:
    """Balanced binary reduction of ``nets`` under an associative gate.

    Returns the root net (the input itself for a single-net "tree"), giving
    the block logarithmic depth like the comparator trees in the Anti-SAT
    and SARLock papers.
    """
    if not nets:
        raise LockingError("cannot reduce an empty net list")
    level = list(nets)
    while len(level) > 1:
        reduced = []
        for index in range(0, len(level) - 1, 2):
            net = next(namer)
            netlist.gates.append(
                Gate(net, gate_type, (level[index], level[index + 1]))
            )
            reduced.append(net)
        if len(level) % 2:
            reduced.append(level[-1])
        level = reduced
    return level[0]


def select_block_inputs(
    netlist: Netlist, width: Optional[int], seed: int
) -> list[str]:
    """Choose the functional inputs the point-function block compares.

    ``width=None`` (or 0) selects every functional input — the standard
    construction, under which a wrong key corrupts exactly one input
    minterm.  Narrower blocks are allowed for experiments but corrupt
    ``2^(n-width)`` minterms and weaken the DIP lower bound accordingly.
    """
    functional = netlist.functional_inputs
    if not functional:
        raise LockingError("design has no functional inputs to compare")
    if width is None or width == 0 or width == len(functional):
        return list(functional)
    if not 0 < width <= len(functional):
        raise LockingError(
            f"block width {width} out of range: design has "
            f"{len(functional)} functional inputs (use 0 for full width)"
        )
    rng = make_rng(seed)
    picked = rng.choice(len(functional), size=width, replace=False)
    return [functional[int(i)] for i in sorted(picked)]


def choose_target(netlist: Netlist, target: Optional[str], seed: int) -> str:
    """The primary output the flip signal corrupts."""
    if target is not None:
        if target not in netlist.outputs:
            raise LockingError(
                f"flip target {target!r} is not a primary output of "
                f"{netlist.name!r}"
            )
        return target
    rng = make_rng(seed)
    return netlist.outputs[int(rng.integers(len(netlist.outputs)))]


def inject_flip(
    netlist: Netlist,
    target: str,
    flip: str,
    scheme: str,
    num_original_gates: Optional[int] = None,
) -> str:
    """XOR ``flip`` onto net ``target``, rewiring every original reader.

    Mirrors the RLL key-gate insertion: gates and primary outputs reading
    ``target`` move to the corrupted net, then the XOR is appended reading
    the original.  ``num_original_gates`` (the gate count before the block
    logic was built) limits the rewiring to the pre-existing gates — the
    block's own comparators must keep reading the *uncorrupted* net, both
    for correctness and because rewiring them would close a combinational
    cycle whenever the target output is also a block input (e.g. a primary
    output that is directly a primary input).  Returns the corrupted net.
    """
    corrupted = f"{target}__pf_{scheme}"
    taken = set(netlist.all_nets())
    suffix = 0
    while corrupted in taken:  # same scheme stacked twice on one target
        suffix += 1
        corrupted = f"{target}__pf_{scheme}{suffix}"
    rewire_until = (
        len(netlist.gates) if num_original_gates is None else num_original_gates
    )
    for gate in netlist.gates[:rewire_until]:
        if target in gate.inputs:
            gate.inputs = tuple(
                corrupted if fanin == target else fanin
                for fanin in gate.inputs
            )
    netlist.outputs = [
        corrupted if po == target else po for po in netlist.outputs
    ]
    netlist.gates.append(Gate(corrupted, GateType.XOR, (target, flip)))
    return corrupted


def compound(netlist: Netlist, *lockers: Locker) -> LockedCircuit:
    """Chain independent lockers into one partitioned :class:`LockedCircuit`.

    Each locker receives the previous stage's netlist; key-input numbering
    continues across stages, so the concatenated key bits line up with
    ``netlist.key_inputs`` order.  The result carries one
    :class:`KeyPartition` per constituent scheme — e.g.
    ``compound(n, rll_locker, antisat_locker)`` is the classic
    "RLL for output corruption + Anti-SAT for SAT resilience" stack.
    """
    if not lockers:
        raise LockingError("compound() needs at least one locker")
    current = netlist
    bits: list[int] = []
    names: list[str] = []
    locked_nets: list[str] = []
    partitions: list[KeyPartition] = []
    for locker in lockers:
        stage = locker(current)
        current = stage.netlist
        bits.extend(stage.key.bits)
        names.extend(stage.key_input_names)
        locked_nets.extend(stage.locked_nets)
        if stage.partitions:
            partitions.extend(stage.partitions)
        else:
            partitions.append(
                KeyPartition("locked", tuple(stage.key_input_names))
            )
    return LockedCircuit(
        netlist=current,
        key=Key(tuple(bits)),
        locked_nets=tuple(locked_nets),
        key_input_names=tuple(names),
        partitions=tuple(partitions),
    )
