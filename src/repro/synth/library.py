"""Candidate-structure library for cut rewriting.

ABC ships a precomputed database of optimal 4-input AIG structures per NPN
class.  Here the library is synthesized on demand and cached per NPN class:
for each canonical function we generate several candidate factored forms —
ISOP of the function, ISOP of its complement, XOR decompositions (crucial for
parity-heavy logic, where SOP covers explode) and single-variable Shannon
decompositions — and keep the few cheapest.  Rewriting then dry-runs each
candidate at the target site to pick the one with the best real gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.synth.factor import FNode, factor_sop
from repro.synth.isop import isop
from repro.utils.truth import NpnTransform, TruthTable

MAX_CANDIDATES = 4


@dataclass(frozen=True)
class Candidate:
    """A structure computing a canonical function (maybe complemented)."""

    tree: FNode
    output_negated: bool
    literal_cost: int


class RewriteLibrary:
    """Caches candidate structures per NPN-canonical truth table."""

    def __init__(self, max_candidates: int = MAX_CANDIDATES):
        self.max_candidates = max_candidates
        self._cache: dict[tuple[int, int], list[Candidate]] = {}

    def candidates_for(self, table: TruthTable) -> tuple[
        list[Candidate], NpnTransform
    ]:
        """Candidates for the NPN class of ``table`` plus the transform.

        The candidate trees compute the *canonical* function; callers must
        bind canonical variable ``i`` to the original leaf given by
        ``transform.leaf_order`` and complement the output when
        ``transform.output_negation ^ candidate.output_negated`` is set.
        """
        canonical, transform = table.npn_canon()
        key = (canonical.bits, canonical.nvars)
        cached = self._cache.get(key)
        if cached is None:
            cached = _generate_candidates(canonical, self.max_candidates)
            self._cache[key] = cached
        return cached, transform


def _generate_candidates(table: TruthTable, limit: int) -> list[Candidate]:
    trees: list[tuple[FNode, bool]] = []
    for tree, negated in _decompose(table, depth=0):
        trees.append((tree, negated))
    seen: set[tuple] = set()
    candidates = []
    for tree, negated in trees:
        key = (repr(tree), negated)
        if key in seen:
            continue
        seen.add(key)
        candidates.append(
            Candidate(tree=tree, output_negated=negated, literal_cost=tree.num_literals())
        )
    candidates.sort(key=lambda c: c.literal_cost)
    return candidates[:limit]


def _decompose(table: TruthTable, depth: int) -> list[tuple[FNode, bool]]:
    """Generate factored forms for ``table`` (possibly via its complement)."""
    if table.is_const0():
        return [(FNode.const(False), False)]
    if table.is_const1():
        return [(FNode.const(True), False)]
    results: list[tuple[FNode, bool]] = []
    results.append((factor_sop(isop(table)), False))
    results.append((factor_sop(isop(~table)), True))
    # XOR decomposition: f = x_i XOR g  <=>  flipping x_i complements f.
    for var in table.support():
        if table.flip(var).bits == (~table).bits:
            residual = table.cofactor(var, 0)
            for sub_tree, sub_neg in _decompose(residual, depth + 1)[:2]:
                tree = FNode.xor(
                    [FNode.lit(var, sub_neg), sub_tree]
                )
                results.append((tree, False))
            break
    # One level of Shannon decomposition on the most binate variable.
    if depth == 0 and len(table.support()) >= 3:
        var = _most_binate(table)
        if var is not None:
            f0 = table.cofactor(var, 0)
            f1 = table.cofactor(var, 1)
            t0 = factor_sop(isop(f0))
            t1 = factor_sop(isop(f1))
            # f = (~v & f0) | (v & f1)
            tree = FNode.or_(
                [
                    FNode.and_([FNode.lit(var, True), t0]),
                    FNode.and_([FNode.lit(var, False), t1]),
                ]
            )
            results.append((tree, False))
    return results


def _most_binate(table: TruthTable) -> int | None:
    """Variable whose cofactors are most balanced (best Shannon pivot)."""
    best_var = None
    best_score = None
    total = 1 << table.nvars
    for var in table.support():
        ones0 = table.cofactor(var, 0).count_ones()
        ones1 = table.cofactor(var, 1).count_ones()
        score = abs(ones0 - total // 2) + abs(ones1 - total // 2)
        if best_score is None or score < best_score:
            best_score = score
            best_var = var
    return best_var
