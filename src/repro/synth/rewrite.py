"""DAG-aware cut rewriting (ABC's ``rewrite`` / ``rewrite -z``).

For every AND node in topological order, enumerate its 4-feasible cuts,
compute each cut function, and test candidate implementations from the NPN
rewriting library.  A candidate is committed when it strictly reduces the
node count; with ``zero_cost=True`` (``rewrite -z``) equal-size replacements
are also committed, which reshapes localities and unlocks later passes —
the property ALMOST's recipe search exploits.

Pass-ordering safety: nodes are visited in a topological order snapshot;
replacements only rewire the *fanout* cone of the visited node (always later
in the order), so memoized cuts of earlier nodes can never go stale, and the
leaves of memoized cuts stay alive because live cones keep referencing them.
"""

from __future__ import annotations

from repro.aig.aig import Aig, lit_not, make_lit
from repro.aig.cuts import CutManager
from repro.aig.simulate import cut_truth_table
from repro.synth.library import RewriteLibrary
from repro.synth.opt_common import (
    constant_or_leaf_lit,
    evaluate_candidate,
    leaf_lits,
    realize_candidate,
    try_replace,
)

_SHARED_LIBRARY = RewriteLibrary()


def rewrite_pass(
    aig: Aig,
    zero_cost: bool = False,
    cut_size: int = 4,
    cut_limit: int = 8,
    library: RewriteLibrary | None = None,
) -> int:
    """Run one rewriting pass in place; returns the number of replacements."""
    library = library if library is not None else _SHARED_LIBRARY
    manager = CutManager(aig, k=cut_size, limit=cut_limit)
    changed = 0
    for var in aig.topological_ands():
        if aig.is_dead(var) or not aig.is_and(var):
            continue
        best = None  # (gain, -literal_cost, cut, tree, out_neg, cycle_check)
        for cut in manager.cuts(var):
            if len(cut) < 2 or var in cut:
                continue
            table = cut_truth_table(aig, make_lit(var), cut)
            handles = leaf_lits(cut)
            trivial = constant_or_leaf_lit(table.bits, table.nvars, handles)
            if trivial is not None:
                mffc_gain = len(aig.mffc(var, cut))
                candidate = (mffc_gain, 0, cut, None, trivial, False)
                if best is None or candidate[:2] > best[:2]:
                    best = candidate
                continue
            mffc_set = aig.mffc(var, cut)
            candidates, transform = library.candidates_for(table)
            for cand in candidates:
                ordered = transform.leaf_order(handles)
                bound = [
                    lit_not(handle) if neg else handle for handle, neg in ordered
                ]
                evaluation = evaluate_candidate(
                    aig, var, cut, mffc_set, cand.tree, bound
                )
                entry = (
                    evaluation.gain,
                    -cand.literal_cost,
                    cut,
                    (cand, bound),
                    transform.output_negation ^ cand.output_negated,
                    evaluation.needs_cycle_check,
                )
                if best is None or entry[:2] > best[:2]:
                    best = entry
        if best is None:
            continue
        gain, _, cut, payload, neg_or_lit, cycle_check = best
        if gain < 0 or (gain == 0 and not zero_cost):
            continue
        if payload is None:
            new_lit = neg_or_lit  # trivial constant / leaf literal
        else:
            cand, bound = payload
            new_lit = realize_candidate(aig, cand.tree, bound, neg_or_lit)
        if try_replace(aig, var, cut, new_lit, cycle_check):
            changed += 1
    return changed
