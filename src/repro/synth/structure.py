"""Build factored-form trees into an AIG — for real, or as a dry run.

The *dry run* builder mirrors :meth:`Aig.add_and` semantics (constant
folding + structural-hash lookups) without mutating the graph.  It reports
how many genuinely new nodes a candidate structure would create and which
existing nodes it would reuse, which is exactly what gain evaluation in
``rewrite``/``refactor`` needs.

Handles used by the builders are plain AIG literals for the real builder; the
dry-run builder additionally uses negative integers for *ghost* nodes (nodes
that would be created): ghost ``g`` with phase ``p`` is encoded as
``-(2*g + p) - 1``.
"""

from __future__ import annotations

from typing import Sequence

from repro.aig.aig import Aig, lit_not, lit_var
from repro.synth.factor import FNode


def handle_not(handle: int) -> int:
    """Complement a real-or-ghost handle."""
    if handle >= 0:
        return lit_not(handle)
    return -((-handle - 1) ^ 1) - 1


class RealBuilder:
    """Builds structure directly into the AIG."""

    def __init__(self, aig: Aig):
        self.aig = aig

    def make_and(self, a: int, b: int) -> int:
        return self.aig.add_and(a, b)

    def const(self, value: bool) -> int:
        return 1 if value else 0


class DryRunBuilder:
    """Counts the nodes a structure would add, honouring strashing.

    Attributes after building:

    * ``added`` — number of fresh nodes the structure needs;
    * ``hits`` — set of existing AND variables the structure would reuse
      (beyond the leaves themselves).
    """

    def __init__(self, aig: Aig):
        self.aig = aig
        self.added = 0
        self.hits: set[int] = set()
        self._ghosts: dict[tuple[int, int], int] = {}

    def const(self, value: bool) -> int:
        return 1 if value else 0

    def make_and(self, a: int, b: int) -> int:
        # Folding rules that do not require graph knowledge.
        if a == 0 or b == 0 or a == handle_not(b):
            return 0
        if a == 1:
            return b
        if b == 1:
            return a
        if a == b:
            return a
        if a >= 0 and b >= 0:
            existing = self.aig.lookup_and(a, b)
            if existing is not None:
                var = lit_var(existing)
                if self.aig.is_and(var):
                    self.hits.add(var)
                return existing
        key = (a, b) if a <= b else (b, a)
        ghost = self._ghosts.get(key)
        if ghost is None:
            ghost = self.added
            self.added += 1
            self._ghosts[key] = ghost
        return -(2 * ghost) - 1


def build_fnode(builder, node: FNode, leaves: Sequence[int]) -> int:
    """Build a factored tree; ``leaves[i]`` is the handle for variable ``i``.

    Works with either builder; returns the root handle.
    """
    if node.kind == "const":
        return builder.const(node.value)
    if node.kind == "lit":
        handle = leaves[node.var]
        return handle_not(handle) if node.negated else handle
    child_handles = [build_fnode(builder, child, leaves) for child in node.children]
    if node.kind == "and":
        return _balanced(builder, child_handles, invert_in=False, invert_out=False)
    if node.kind == "or":
        return _balanced(builder, child_handles, invert_in=True, invert_out=True)
    if node.kind == "xor":
        acc = child_handles[0]
        for handle in child_handles[1:]:
            left = builder.make_and(acc, handle_not(handle))
            right = builder.make_and(handle_not(acc), handle)
            acc = handle_not(
                builder.make_and(handle_not(left), handle_not(right))
            )
        return acc
    raise ValueError(f"unknown FNode kind {node.kind}")  # pragma: no cover


def _balanced(builder, handles: list[int], invert_in: bool, invert_out: bool) -> int:
    if invert_in:
        handles = [handle_not(h) for h in handles]
    while len(handles) > 1:
        nxt = [
            builder.make_and(handles[i], handles[i + 1])
            for i in range(0, len(handles) - 1, 2)
        ]
        if len(handles) % 2:
            nxt.append(handles[-1])
        handles = nxt
    return handle_not(handles[0]) if invert_out else handles[0]
