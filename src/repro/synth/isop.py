"""Irredundant sum-of-products computation (Minato–Morreale ISOP).

Cubes are pairs of variable bitmasks ``(pos, neg)``: variable ``v`` appears
as a positive literal when bit ``v`` of ``pos`` is set and as a negative
literal when bit ``v`` of ``neg`` is set.  The empty cube ``(0, 0)`` is the
constant-1 cube.

The recursion operates on raw truth-table integers (not
:class:`~repro.utils.truth.TruthTable` objects) because it sits on the
hottest path of ``refactor`` and the rewriting library; covers are memoized
per ``(bits, nvars)``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.utils.truth import TruthTable, _full_mask, _var_mask

Cube = tuple[int, int]


def cube_table(cube: Cube, nvars: int) -> TruthTable:
    """Truth table of a single cube."""
    pos, neg = cube
    table = TruthTable.const(True, nvars)
    for var in range(nvars):
        if (pos >> var) & 1:
            table = table & TruthTable.var(var, nvars)
        if (neg >> var) & 1:
            table = table & ~TruthTable.var(var, nvars)
    return table


def sop_table(cubes: list[Cube], nvars: int) -> TruthTable:
    """Truth table of a sum of cubes."""
    table = TruthTable.const(False, nvars)
    for cube in cubes:
        table = table | cube_table(cube, nvars)
    return table


def isop(table: TruthTable) -> list[Cube]:
    """Irredundant SOP cover of ``table`` (exact: onset == cover).

    Implements the Minato–Morreale procedure on interval ``[L, U]`` with
    ``L = U = table``; the result is an irredundant cover whose function
    equals ``table`` exactly.
    """
    return list(_isop_cached(table.bits, table.nvars))


@lru_cache(maxsize=1 << 18)
def _isop_cached(bits: int, nvars: int) -> tuple[Cube, ...]:
    cubes, _cover = _isop(bits, bits, nvars, _full_mask(nvars))
    return tuple(cubes)


def _cofactors(bits: int, var: int, nvars: int, mask: int) -> tuple[int, int]:
    """Raw-integer negative and positive Shannon cofactors."""
    vmask = _var_mask(var, nvars)
    shift = 1 << var
    hi = bits & vmask
    lo = bits & vmask ^ bits  # bits & ~vmask without building ~vmask
    c1 = hi | (hi >> shift)
    c0 = lo | ((lo << shift) & mask)
    return c0, c1


def _isop(lower: int, upper: int, nvars: int, mask: int) -> tuple[list[Cube], int]:
    """Cover any function in ``[lower, upper]``; returns (cubes, cover bits)."""
    if lower == 0:
        return [], 0
    if upper == mask:
        return [(0, 0)], mask
    # Pick the highest variable on which either bound depends.
    var = nvars - 1
    while var >= 0:
        l0, l1 = _cofactors(lower, var, nvars, mask)
        u0, u1 = _cofactors(upper, var, nvars, mask)
        if l0 != l1 or u0 != u1:
            break
        var -= 1
    if var < 0:  # constant interval handled above; defensive
        return [(0, 0)], mask

    cubes0, cover0 = _isop(l0 & ~u1 & mask, u0, nvars, mask)
    cubes1, cover1 = _isop(l1 & ~u0 & mask, u1, nvars, mask)
    new_lower = (l0 & ~cover0 & mask) | (l1 & ~cover1 & mask)
    cubes2, cover2 = _isop(new_lower, u0 & u1, nvars, mask)

    vpos = _var_mask(var, nvars)
    vneg = vpos ^ mask
    bit = 1 << var
    out_cubes = (
        [(pos, neg | bit) for pos, neg in cubes0]
        + [(pos | bit, neg) for pos, neg in cubes1]
        + cubes2
    )
    out_cover = (cover0 & vneg) | (cover1 & vpos) | cover2
    return out_cubes, out_cover


def cube_literal_count(cubes: list[Cube]) -> int:
    """Total literal count of a cover (a standard SOP cost measure)."""
    return sum(bin(pos).count("1") + bin(neg).count("1") for pos, neg in cubes)
