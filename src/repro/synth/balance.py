"""Tree balancing (ABC's ``balance``).

Collects maximal multi-input AND super-gates (chains of single-fanout,
non-complemented AND nodes) and rebuilds each as a minimum-depth tree,
combining the shallowest operands first (Huffman-style).  The pass is a
functional rebuild: it returns a fresh AIG and leaves the input untouched.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.aig.aig import Aig, lit_not, lit_var


def balance(aig: Aig) -> Aig:
    """Return a depth-balanced copy of ``aig``."""
    out = Aig(aig.name)
    mapping: dict[int, int] = {0: 0}
    for var, name in zip(aig.pi_vars(), aig.pi_names()):
        mapping[var] = out.add_pi(name)
    level: dict[int, int] = {}

    def out_level(lit: int) -> int:
        return level.get(lit_var(lit), 0)

    def super_gate(var: int) -> list[int]:
        """Leaf literals of the maximal AND tree rooted at ``var``."""
        leaves: list[int] = []
        stack = [lit for lit in aig.fanins(var)]
        while stack:
            lit = stack.pop()
            child = lit_var(lit)
            if (
                not (lit & 1)
                and aig.is_and(child)
                and aig.num_refs(child) == 1
            ):
                stack.extend(aig.fanins(child))
            else:
                leaves.append(lit)
        return leaves

    # Determine which original nodes need explicit mapped results: PO roots,
    # complemented-edge targets, and multi-reference nodes.  Absorbed
    # single-fanout chain nodes are rebuilt implicitly inside super-gates.
    needed: set[int] = set()
    for po in aig.po_lits():
        if aig.is_and(lit_var(po)):
            needed.add(lit_var(po))
    order = aig.topological_ands()
    super_cache: dict[int, list[int]] = {}
    for var in order:
        super_cache[var] = super_gate(var)
    for var in order:
        for lit in super_cache[var]:
            child = lit_var(lit)
            if aig.is_and(child):
                needed.add(child)

    for var in order:
        if var not in needed:
            continue
        heap: list[tuple[int, int, int]] = []
        for index, lit in enumerate(super_cache[var]):
            child = lit_var(lit)
            mapped = mapping[child] ^ (lit & 1) if child in mapping else None
            if mapped is None:
                # The child is an absorbed AND that itself was not needed —
                # flatten it recursively (possible when a complemented edge
                # hides inside a shared cone); map it now.
                mapped = _map_recursive(aig, out, child, mapping, level) ^ (lit & 1)
            heapq.heappush(heap, (out_level(mapped), index, mapped))
        while len(heap) > 1:
            l0, i0, lit0 = heapq.heappop(heap)
            l1, _i1, lit1 = heapq.heappop(heap)
            combined = out.add_and(lit0, lit1)
            lvl = max(l0, l1) + 1
            if lit_var(combined) not in level:
                level[lit_var(combined)] = lvl
            heapq.heappush(heap, (level[lit_var(combined)], i0, combined))
        mapping[var] = heap[0][2]
        level.setdefault(lit_var(mapping[var]), heap[0][0])

    for po, name in zip(aig.po_lits(), aig.po_names()):
        root = lit_var(po)
        if root in mapping:
            out.add_po(mapping[root] ^ (po & 1), name)
        else:
            # PO drives a node that was never needed (dangling in a weird
            # way); rebuild it directly.
            mapped = _map_recursive(aig, out, root, mapping, level)
            out.add_po(mapped ^ (po & 1), name)
    return out


def _map_recursive(
    aig: Aig,
    out: Aig,
    var: int,
    mapping: dict[int, int],
    level: dict[int, int],
) -> int:
    """Fallback plain rebuild of a cone (no super-gate collection)."""
    if var in mapping:
        return mapping[var]
    stack = [(var, 0)]
    while stack:
        v, phase = stack.pop()
        if v in mapping:
            continue
        f0, f1 = aig.fanins(v)
        children = [lit_var(f0), lit_var(f1)]
        if phase == 0:
            stack.append((v, 1))
            for child in children:
                if child not in mapping:
                    stack.append((child, 0))
        else:
            l0 = mapping[lit_var(f0)] ^ (f0 & 1)
            l1 = mapping[lit_var(f1)] ^ (f1 & 1)
            mapped = out.add_and(l0, l1)
            mapping[v] = mapped
            level.setdefault(
                lit_var(mapped),
                1 + max(level.get(lit_var(l0), 0), level.get(lit_var(l1), 0)),
            )
    return mapping[var]
