"""Shared gain evaluation and candidate realization for rewrite/refactor.

Gain accounting follows ABC's DAG-aware scheme: replacing node ``n`` saves the
nodes of its maximum fanout-free cone (bounded by the cut) and costs the
genuinely new nodes of the candidate structure.  Two corrections keep the
estimate honest:

* candidate strash hits *inside* the MFFC keep those nodes (and their in-MFFC
  cones) alive, so they are subtracted from the savings;
* a candidate whose reused nodes lie in the replaced node's fanout cone would
  create a cycle; such candidates are rejected with an explicit reachability
  check before the replacement is committed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.aig.aig import Aig, lit_not, lit_var, make_lit
from repro.synth.factor import FNode
from repro.synth.structure import DryRunBuilder, RealBuilder, build_fnode


@dataclass
class Evaluation:
    """Outcome of dry-running one candidate at one site."""

    gain: int
    added: int
    needs_cycle_check: bool


def evaluate_candidate(
    aig: Aig,
    var: int,
    cut: Sequence[int],
    mffc_set: set[int],
    tree: FNode,
    leaf_handles: Sequence[int],
) -> Evaluation:
    """Estimate the node gain of replacing ``var``'s cut cone with ``tree``."""
    dry = DryRunBuilder(aig)
    build_fnode(dry, tree, leaf_handles)
    hits_inside = dry.hits & mffc_set
    kept = _closure_within(aig, hits_inside, mffc_set, set(cut))
    saved = len(mffc_set) - len(kept)
    outside_hits = dry.hits - mffc_set
    return Evaluation(
        gain=saved - dry.added,
        added=dry.added,
        needs_cycle_check=bool(outside_hits),
    )


def _closure_within(
    aig: Aig, seeds: set[int], universe: set[int], leaves: set[int]
) -> set[int]:
    """Downward closure of ``seeds`` inside ``universe`` (stop at leaves)."""
    kept: set[int] = set()
    # Canonical seed order: the closure *membership* is order-independent,
    # but DFS visit order must not vary with set hashing (exact-replay).
    stack = sorted(seeds)
    while stack:
        node = stack.pop()
        if node in kept or node not in universe:
            continue
        kept.add(node)
        for lit in aig.fanins(node):
            child = lit_var(lit)
            if child not in leaves and child in universe:
                stack.append(child)
    return kept


def realize_candidate(
    aig: Aig,
    tree: FNode,
    leaf_handles: Sequence[int],
    output_negated: bool,
) -> int:
    """Build the candidate for real; returns the output literal."""
    real = RealBuilder(aig)
    out = build_fnode(real, tree, leaf_handles)
    return lit_not(out) if output_negated else out


def try_replace(
    aig: Aig,
    var: int,
    cut: Sequence[int],
    new_lit: int,
    needs_cycle_check: bool,
) -> bool:
    """Commit ``replace(var, new_lit)`` unless it is a no-op or makes a cycle."""
    if lit_var(new_lit) == var:
        aig.recycle(new_lit)
        return False
    if needs_cycle_check and aig.reaches(new_lit, var, stop_vars=set(cut)):
        aig.recycle(new_lit)
        return False
    aig.replace(var, new_lit)
    return True


def constant_or_leaf_lit(
    table_bits: int, nvars: int, leaf_handles: Sequence[int]
) -> Optional[int]:
    """Detect trivial cut functions: constants or a (complemented) leaf."""
    full = (1 << (1 << nvars)) - 1
    if table_bits == 0:
        return 0
    if table_bits == full:
        return 1
    from repro.utils.truth import TruthTable

    for index in range(nvars):
        var_bits = TruthTable.var(index, nvars).bits
        if table_bits == var_bits:
            return leaf_handles[index]
        if table_bits == var_bits ^ full:
            return lit_not(leaf_handles[index])
    return None


def leaf_lits(cut: Sequence[int]) -> list[int]:
    return [make_lit(leaf) for leaf in cut]
