"""Apply synthesis recipes to AIGs (the ``yosys-abc`` command loop)."""

from __future__ import annotations

from typing import Callable

from repro.aig.aig import Aig
from repro.errors import SynthesisError
from repro.synth.balance import balance
from repro.synth.recipe import Recipe
from repro.synth.refactor import refactor_pass
from repro.synth.resub import resub_pass
from repro.synth.rewrite import rewrite_pass


def _in_place(pass_fn: Callable[..., int], **kwargs) -> Callable[[Aig], Aig]:
    def run(aig: Aig) -> Aig:
        pass_fn(aig, **kwargs)
        return aig

    return run


_TRANSFORMS: dict[str, Callable[[Aig], Aig]] = {
    "rewrite": _in_place(rewrite_pass, zero_cost=False),
    "rewrite -z": _in_place(rewrite_pass, zero_cost=True),
    "refactor": _in_place(refactor_pass, zero_cost=False),
    "refactor -z": _in_place(refactor_pass, zero_cost=True),
    "resub": _in_place(resub_pass, zero_cost=False),
    "resub -z": _in_place(resub_pass, zero_cost=True),
    "balance": balance,
}


def apply_transform(aig: Aig, name: str) -> Aig:
    """Apply one named transformation; returns the (possibly new) AIG.

    In-place passes mutate and return the argument; ``balance`` returns a
    fresh AIG.  Callers should always use the return value.
    """
    transform = _TRANSFORMS.get(name)
    if transform is None:
        raise SynthesisError(f"unknown transformation {name!r}")
    return transform(aig)


def apply_recipe(
    aig: Aig, recipe: Recipe, copy: bool = True, cache=None
) -> Aig:
    """Apply a whole recipe; by default works on a compacted copy.

    ``cache`` optionally names a :class:`repro.synth.cache.SynthCache`:
    the longest already-seen prefix of ``recipe`` for this circuit is
    restored from an exact AIG snapshot and only the remaining suffix is
    applied (and snapshotted in turn).  Because snapshots are exact clones,
    the result is bit-identical to the uncached computation.
    """
    current = aig.compact() if copy else aig
    if cache is None:
        for step in recipe:
            current = apply_transform(current, step)
        return current.compact()
    steps = tuple(recipe)
    fingerprint = current.fingerprint()
    done, resumed = cache.lookup(fingerprint, steps)
    if resumed is not None:
        current = resumed
    for index in range(done, len(steps)):
        current = apply_transform(current, steps[index])
        cache.count_executed(1)
        cache.store(fingerprint, steps[: index + 1], current)
    return current.compact()


def verify_transformation(reference: Aig, optimized: Aig, mode: str) -> None:
    """Check that synthesis preserved the function; raises on mismatch.

    ``mode`` selects the check: ``"sim"`` uses randomized/exhaustive
    simulation (:func:`repro.aig.simulate.functionally_equal`, fast but
    probabilistic beyond ~14 inputs), ``"sat"`` runs the exact miter-based
    proof (:func:`repro.sat.check_equivalence`) and reports the
    distinguishing pattern when the recipe broke the circuit.
    """
    if mode == "sim":
        from repro.aig.simulate import functionally_equal

        if not functionally_equal(reference, optimized):
            raise SynthesisError(
                "synthesis changed the circuit function (simulation check)"
            )
        return
    if mode == "sat":
        from repro.sat import check_equivalence

        verdict = check_equivalence(reference, optimized)
        if not verdict.equivalent:
            raise SynthesisError(
                "synthesis changed the circuit function; counterexample "
                f"{verdict.counterexample}"
            )
        return
    raise SynthesisError(f"unknown verification mode {mode!r}; use 'sim' or 'sat'")


def synthesize_netlist(
    netlist, recipe: Recipe, verify: str | None = None, cache=None
):
    """Netlist-level convenience: netlist -> AIG -> recipe -> netlist.

    This is the "run yosys-abc with this script" operation that both the
    defender and the attacks perform.  ``verify`` optionally checks the
    result against the input — ``"sim"`` for sampled simulation, ``"sat"``
    for an exact equivalence proof (see :func:`verify_transformation`).
    ``cache`` is a recipe-prefix :class:`~repro.synth.cache.SynthCache`
    (see :func:`apply_recipe`).
    """
    from repro.aig.build import aig_from_netlist
    from repro.aig.export import netlist_from_aig

    aig = aig_from_netlist(netlist)
    optimized = apply_recipe(aig, recipe, copy=verify is not None, cache=cache)
    if verify is not None:
        verify_transformation(aig, optimized, verify)
    return netlist_from_aig(optimized)


def synthesize_and_map(
    netlist, recipe: Recipe, verify: str | None = None, cache=None
):
    """Synthesize then technology-map; returns ``(netlist, mapped)``.

    The mapped view is what structural ML attacks featurize (cell choices
    such as XOR2 vs XNOR2 expose polarity); the primitive netlist view is
    used by simulation-based analyses.  ``verify`` and ``cache`` work as in
    :func:`synthesize_netlist`.
    """
    from repro.aig.build import aig_from_netlist
    from repro.aig.export import netlist_from_aig
    from repro.mapping.mapper import map_aig

    aig = aig_from_netlist(netlist)
    optimized = apply_recipe(aig, recipe, copy=verify is not None, cache=cache)
    if verify is not None:
        verify_transformation(aig, optimized, verify)
    return netlist_from_aig(optimized), map_aig(optimized)
