"""Apply synthesis recipes to AIGs (the ``yosys-abc`` command loop)."""

from __future__ import annotations

from typing import Callable

from repro.aig.aig import Aig
from repro.errors import SynthesisError
from repro.synth.balance import balance
from repro.synth.recipe import Recipe
from repro.synth.refactor import refactor_pass
from repro.synth.resub import resub_pass
from repro.synth.rewrite import rewrite_pass


def _in_place(pass_fn: Callable[..., int], **kwargs) -> Callable[[Aig], Aig]:
    def run(aig: Aig) -> Aig:
        pass_fn(aig, **kwargs)
        return aig

    return run


_TRANSFORMS: dict[str, Callable[[Aig], Aig]] = {
    "rewrite": _in_place(rewrite_pass, zero_cost=False),
    "rewrite -z": _in_place(rewrite_pass, zero_cost=True),
    "refactor": _in_place(refactor_pass, zero_cost=False),
    "refactor -z": _in_place(refactor_pass, zero_cost=True),
    "resub": _in_place(resub_pass, zero_cost=False),
    "resub -z": _in_place(resub_pass, zero_cost=True),
    "balance": balance,
}


def apply_transform(aig: Aig, name: str) -> Aig:
    """Apply one named transformation; returns the (possibly new) AIG.

    In-place passes mutate and return the argument; ``balance`` returns a
    fresh AIG.  Callers should always use the return value.
    """
    transform = _TRANSFORMS.get(name)
    if transform is None:
        raise SynthesisError(f"unknown transformation {name!r}")
    return transform(aig)


def apply_recipe(aig: Aig, recipe: Recipe, copy: bool = True) -> Aig:
    """Apply a whole recipe; by default works on a compacted copy."""
    current = aig.compact() if copy else aig
    for step in recipe:
        current = apply_transform(current, step)
    return current.compact()


def synthesize_netlist(netlist, recipe: Recipe):
    """Netlist-level convenience: netlist -> AIG -> recipe -> netlist.

    This is the "run yosys-abc with this script" operation that both the
    defender and the attacks perform.
    """
    from repro.aig.build import aig_from_netlist
    from repro.aig.export import netlist_from_aig

    aig = aig_from_netlist(netlist)
    optimized = apply_recipe(aig, recipe, copy=False)
    return netlist_from_aig(optimized)


def synthesize_and_map(netlist, recipe: Recipe):
    """Synthesize then technology-map; returns ``(netlist, mapped)``.

    The mapped view is what structural ML attacks featurize (cell choices
    such as XOR2 vs XNOR2 expose polarity); the primitive netlist view is
    used by simulation-based analyses.
    """
    from repro.aig.build import aig_from_netlist
    from repro.aig.export import netlist_from_aig
    from repro.mapping.mapper import map_aig

    aig = aig_from_netlist(netlist)
    optimized = apply_recipe(aig, recipe, copy=False)
    return netlist_from_aig(optimized), map_aig(optimized)
