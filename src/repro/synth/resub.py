"""Resubstitution (ABC's ``resub`` / ``resub -z``).

For each node, build a reconvergence-driven window and try to re-express the
node's function using *divisors* — other nodes of the window cone that are
not in the node's MFFC.  Zero-resub replaces the node by a single divisor
(possibly complemented); one-resub by an AND/OR of two divisors.  Candidate
functions are compared exactly on window truth tables.
"""

from __future__ import annotations

from repro.aig.aig import Aig, lit_not, lit_var, make_lit
from repro.aig.cuts import reconvergence_cut
from repro.aig.simulate import cut_truth_table
from repro.synth.opt_common import try_replace
from repro.utils.truth import TruthTable


def _window_tables(
    aig: Aig, root: int, leaves: tuple[int, ...]
) -> tuple[dict[int, int], int]:
    """Truth-table bits for every cone node over the window leaves."""
    nvars = len(leaves)
    mask = (1 << (1 << nvars)) - 1
    words: dict[int, int] = {0: 0}
    for index, leaf in enumerate(leaves):
        words[leaf] = TruthTable.var(index, nvars).bits
    for var in aig.cone_vars(make_lit(root), leaves):
        f0, f1 = aig.fanins(var)
        w0 = words[lit_var(f0)] ^ (mask if f0 & 1 else 0)
        w1 = words[lit_var(f1)] ^ (mask if f1 & 1 else 0)
        words[var] = w0 & w1
    return words, mask


def resub_pass(
    aig: Aig,
    zero_cost: bool = False,
    max_leaves: int = 8,
    max_divisors: int = 24,
) -> int:
    """Run one resubstitution pass in place; returns replacements."""
    changed = 0
    for root in aig.topological_ands():
        if aig.is_dead(root) or not aig.is_and(root):
            continue
        leaves = reconvergence_cut(aig, root, max_leaves=max_leaves)
        if len(leaves) < 2 or root in leaves:
            continue
        words, mask = _window_tables(aig, root, leaves)
        target = words[root]
        mffc_set = aig.mffc(root, leaves)
        divisors = [
            v
            for v in words
            if v != root and v != 0 and v not in mffc_set
        ][:max_divisors]
        min_gain = 0 if zero_cost else 1

        committed = False
        # 0-resub: a divisor equals the target function (either phase).
        for div in divisors:
            saved = len(mffc_set)
            if saved < max(1, min_gain):
                break
            if words[div] == target:
                committed = try_replace(
                    aig, root, leaves, make_lit(div), needs_cycle_check=False
                )
            elif words[div] == target ^ mask:
                committed = try_replace(
                    aig, root, leaves, make_lit(div, True), needs_cycle_check=False
                )
            if committed:
                changed += 1
                break
        if committed:
            continue
        # 1-resub: target = AND/OR of two (possibly complemented) divisors.
        saved = len(mffc_set)
        if saved - 1 < min_gain:
            continue
        found = None
        for i, d1 in enumerate(divisors):
            if found:
                break
            w1 = words[d1]
            for d2 in divisors[i + 1:]:
                w2 = words[d2]
                for p1 in (0, 1):
                    a = w1 ^ (mask if p1 else 0)
                    for p2 in (0, 1):
                        b = w2 ^ (mask if p2 else 0)
                        if (a & b) == target:
                            found = (d1, p1, d2, p2, False)
                            break
                        if (a & b) == target ^ mask:
                            found = (d1, p1, d2, p2, True)
                            break
                    if found:
                        break
                if found:
                    break
        if found is None:
            continue
        d1, p1, d2, p2, out_neg = found
        new_lit = aig.add_and(make_lit(d1, bool(p1)), make_lit(d2, bool(p2)))
        if out_neg:
            new_lit = lit_not(new_lit)
        if try_replace(aig, root, leaves, new_lit, needs_cycle_check=True):
            changed += 1
    return changed
