"""Algebraic factoring of SOP covers into factored-form trees.

The factored form is the bridge between two-level covers (from ISOP) and
multi-level AIG structure: ``refactor`` and the rewriting library both
collapse a cone to SOP and re-express it through :func:`factor_sop`.

Factored forms are trees of :class:`FNode`:

* ``('lit', var, negated)`` — a literal leaf,
* ``('and', children)`` / ``('or', children)`` — n-ary connectives,
* ``('xor', children)`` — used by the XOR-decomposition shortcut,
* ``('const', value)`` — constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.synth.isop import Cube


@dataclass(frozen=True)
class FNode:
    """One factored-form tree node."""

    kind: str  # 'lit' | 'and' | 'or' | 'xor' | 'const'
    var: int = -1
    negated: bool = False
    value: bool = False
    children: tuple["FNode", ...] = ()

    @staticmethod
    def lit(var: int, negated: bool = False) -> "FNode":
        return FNode(kind="lit", var=var, negated=negated)

    @staticmethod
    def const(value: bool) -> "FNode":
        return FNode(kind="const", value=value)

    @staticmethod
    def and_(children: Sequence["FNode"]) -> "FNode":
        children = tuple(children)
        if len(children) == 1:
            return children[0]
        return FNode(kind="and", children=children)

    @staticmethod
    def or_(children: Sequence["FNode"]) -> "FNode":
        children = tuple(children)
        if len(children) == 1:
            return children[0]
        return FNode(kind="or", children=children)

    @staticmethod
    def xor(children: Sequence["FNode"]) -> "FNode":
        children = tuple(children)
        if len(children) == 1:
            return children[0]
        return FNode(kind="xor", children=children)

    def num_literals(self) -> int:
        if self.kind == "lit":
            return 1
        return sum(child.num_literals() for child in self.children)

    def rename(self, mapping: dict[int, int]) -> "FNode":
        """Relabel leaf variables through ``mapping``."""
        if self.kind == "lit":
            return FNode.lit(mapping[self.var], self.negated)
        if self.kind == "const":
            return self
        return FNode(
            kind=self.kind,
            children=tuple(child.rename(mapping) for child in self.children),
        )


def _cube_to_fnode(cube: Cube) -> FNode:
    pos, neg = cube
    literals: list[FNode] = []
    var = 0
    rest_pos, rest_neg = pos, neg
    while rest_pos or rest_neg:
        if (rest_pos >> var) & 1 or (rest_neg >> var) & 1:
            if (rest_pos >> var) & 1:
                literals.append(FNode.lit(var, False))
                rest_pos &= ~(1 << var)
            if (rest_neg >> var) & 1:
                literals.append(FNode.lit(var, True))
                rest_neg &= ~(1 << var)
        var += 1
    if not literals:
        return FNode.const(True)
    return FNode.and_(literals)


def _most_frequent_literal(cubes: list[Cube]) -> Optional[tuple[int, bool]]:
    """The literal occurring in the most cubes, if any occurs at least twice."""
    counts: dict[tuple[int, bool], int] = {}
    for pos, neg in cubes:
        rest = pos
        var = 0
        while rest:
            if rest & 1:
                counts[(var, False)] = counts.get((var, False), 0) + 1
            rest >>= 1
            var += 1
        rest = neg
        var = 0
        while rest:
            if rest & 1:
                counts[(var, True)] = counts.get((var, True), 0) + 1
            rest >>= 1
            var += 1
    if not counts:
        return None
    literal, count = max(counts.items(), key=lambda item: (item[1], -item[0][0]))
    return literal if count >= 2 else None


def factor_sop(cubes: list[Cube]) -> FNode:
    """Factor a cube cover into a multi-level form (quick-factor flavour).

    Repeatedly divides by the most frequent literal:
    ``F = l * factor(F / l) + factor(remainder)``.
    """
    if not cubes:
        return FNode.const(False)
    if any(cube == (0, 0) for cube in cubes):
        return FNode.const(True)
    if len(cubes) == 1:
        return _cube_to_fnode(cubes[0])
    best = _most_frequent_literal(cubes)
    if best is None:
        return FNode.or_([_cube_to_fnode(cube) for cube in cubes])
    var, negated = best
    bit = 1 << var
    quotient: list[Cube] = []
    remainder: list[Cube] = []
    for pos, neg in cubes:
        if not negated and (pos & bit):
            quotient.append((pos & ~bit, neg))
        elif negated and (neg & bit):
            quotient.append((pos, neg & ~bit))
        else:
            remainder.append((pos, neg))
    divided = FNode.and_([FNode.lit(var, negated), factor_sop(quotient)])
    if not remainder:
        return divided
    return FNode.or_([divided, factor_sop(remainder)])
