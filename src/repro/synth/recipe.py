"""Synthesis recipes: ordered lists of transformation names.

The alphabet is the paper's seven transformations::

    rewrite   rewrite -z   refactor   refactor -z   resub   resub -z   balance

and the baseline recipe is ABC's ``resyn2`` which is exactly ten steps —
the paper's fixed recipe length L = 10::

    balance; rewrite; refactor; balance; rewrite; rewrite -z;
    balance; refactor -z; rewrite -z; balance
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import SynthesisError
from repro.utils.rng import make_rng

TRANSFORM_NAMES: tuple[str, ...] = (
    "rewrite",
    "rewrite -z",
    "refactor",
    "refactor -z",
    "resub",
    "resub -z",
    "balance",
)

_SHORT_NAMES = {
    "rewrite": "rw",
    "rewrite -z": "rwz",
    "refactor": "rf",
    "refactor -z": "rfz",
    "resub": "rs",
    "resub -z": "rsz",
    "balance": "b",
}
_LONG_NAMES = {short: long for long, short in _SHORT_NAMES.items()}


@dataclass(frozen=True)
class Recipe:
    """An immutable synthesis recipe (sequence of transformation names)."""

    steps: tuple[str, ...]

    def __post_init__(self) -> None:
        for step in self.steps:
            if step not in TRANSFORM_NAMES:
                raise SynthesisError(
                    f"unknown transformation {step!r}; "
                    f"allowed: {TRANSFORM_NAMES}"
                )

    @staticmethod
    def parse(text: str) -> "Recipe":
        """Parse a semicolon- or comma-separated recipe string.

        Accepts both long names (``rewrite -z``) and ABC-style short names
        (``rwz``).

        >>> Recipe.parse("b; rw; rwz").steps
        ('balance', 'rewrite', 'rewrite -z')
        """
        steps = []
        for raw in text.replace(",", ";").split(";"):
            token = " ".join(raw.split())
            if not token:
                continue
            if token in TRANSFORM_NAMES:
                steps.append(token)
            elif token in _LONG_NAMES:
                steps.append(_LONG_NAMES[token])
            else:
                raise SynthesisError(f"cannot parse recipe step {token!r}")
        return Recipe(tuple(steps))

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[str]:
        return iter(self.steps)

    def short(self) -> str:
        """Compact ABC-style rendering, e.g. ``b;rw;rf;b;rw;rwz``."""
        return ";".join(_SHORT_NAMES[s] for s in self.steps)

    def with_step(self, index: int, step: str) -> "Recipe":
        """A copy with one step substituted (the SA neighbourhood move)."""
        if not 0 <= index < len(self.steps):
            raise SynthesisError(f"step index {index} out of range")
        steps = list(self.steps)
        steps[index] = step
        return Recipe(tuple(steps))

    def __str__(self) -> str:
        return self.short()


#: ABC's ``resyn2`` script — ten steps, the paper's baseline recipe.
RESYN2 = Recipe(
    (
        "balance",
        "rewrite",
        "refactor",
        "balance",
        "rewrite",
        "rewrite -z",
        "balance",
        "refactor -z",
        "rewrite -z",
        "balance",
    )
)


def random_recipe(
    length: int = 10,
    seed: int | None = 0,
    rng: np.random.Generator | None = None,
    alphabet: Sequence[str] = TRANSFORM_NAMES,
) -> Recipe:
    """A uniformly random recipe of ``length`` steps."""
    generator = rng if rng is not None else make_rng(seed)
    indices = generator.integers(0, len(alphabet), size=length)
    return Recipe(tuple(alphabet[int(i)] for i in indices))
