"""Logic-synthesis transformations on AIGs (the ABC-equivalent substrate).

Implements the seven recipe steps used by the paper — ``rewrite``,
``rewrite -z``, ``refactor``, ``refactor -z``, ``resub``, ``resub -z`` and
``balance`` — plus the :class:`~repro.synth.recipe.Recipe` abstraction and the
``resyn2`` baseline recipe (which is exactly ten steps long, matching the
paper's fixed recipe length L = 10).
"""

from repro.synth.recipe import (
    RESYN2,
    TRANSFORM_NAMES,
    Recipe,
    random_recipe,
)
from repro.synth.engine import apply_recipe, apply_transform, verify_transformation
from repro.synth.cache import SharedSynthCache, SynthCache

__all__ = [
    "Recipe",
    "RESYN2",
    "TRANSFORM_NAMES",
    "random_recipe",
    "apply_recipe",
    "apply_transform",
    "verify_transformation",
    "SharedSynthCache",
    "SynthCache",
]
