"""Recipe-prefix caching of intermediate AIG snapshots.

The recipe-search engine evaluates thousands of candidate recipes that are
one-step mutations of each other: a candidate mutated at position ``p``
shares its first ``p`` transforms with the state it was derived from.  The
seed engine re-applied all ``L`` transforms from scratch for every
candidate; :class:`SynthCache` snapshots the AIG after every applied step,
keyed by ``(circuit fingerprint, recipe prefix)``, so the next evaluation
resumes from the longest cached prefix and re-applies only the suffix.

**The exact-resume contract.**  Snapshots are **exact clones**
(:meth:`repro.aig.aig.Aig.clone`), not compacted copies, so resuming from a
snapshot is bit-identical to having run the whole recipe in one go — cached
and uncached synthesis produce the same AIG, which keeps search traces
deterministic no matter the cache state (and SAT-equivalent by
construction; ``tests/test_search.py`` proves both properties).  Every
consumer of a cache — :func:`repro.synth.engine.apply_recipe`, the proxy
scorer, the adversarial trainer — relies on this contract, so any new cache
implementation must preserve it: a lookup returns either ``(0, None)`` or a
*private* AIG whose subsequent transforms behave exactly as they would have
on the uncached original.

Two implementations share the protocol (``lookup`` / ``store`` /
``count_executed`` / ``stats``):

* :class:`SynthCache` — in-process bounded LRU of clones; the default on
  every :class:`~repro.core.proxy.ProxyModel`.
* :class:`SharedSynthCache` — a ``multiprocessing.Manager``-backed snapshot
  store shared by every worker of a ``--jobs`` process pool, so fan-out
  keeps the serial path's hit rate instead of warming one cold cache per
  worker.  Counters live in the shared store too, which is what makes the
  hit/miss totals parent-visible after the pool is torn down.

A cold cache misses and counts it::

    >>> cache = SynthCache(max_entries=8)
    >>> cache.lookup("fp", ("balance", "rewrite"))
    (0, None)
    >>> cache.stats()["prefix_misses"]
    1
    >>> cache.count_executed(2)
    >>> cache.steps_executed
    2
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from typing import Optional, Sequence

from repro.aig.aig import Aig
from repro.errors import SynthesisError
from repro.obs import metrics as _metrics


class SynthCache:
    """Bounded LRU of intermediate AIG snapshots keyed by recipe prefix.

    ``max_entries`` bounds memory: one entry is one mid-recipe AIG clone,
    and the least recently used prefix is evicted first.  ``steps_saved`` /
    ``steps_executed`` account transform applications skipped vs. run, so
    benches can report the prefix-cache hit rate directly.
    """

    def __init__(self, max_entries: int = 512):
        if max_entries < 1:
            raise SynthesisError(
                f"SynthCache needs max_entries >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple[str, tuple[str, ...]], Aig]" = (
            OrderedDict()
        )
        self.prefix_hits = 0
        self.prefix_misses = 0
        self.steps_saved = 0
        self.steps_executed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, fingerprint: str, steps: Sequence[str]
    ) -> tuple[int, Optional[Aig]]:
        """Longest cached prefix of ``steps`` for this circuit.

        Returns ``(k, clone)`` where the clone is the snapshot after the
        first ``k`` steps — the caller applies only ``steps[k:]`` — or
        ``(0, None)`` when nothing is cached.
        """
        for length in range(len(steps), 0, -1):
            key = (fingerprint, tuple(steps[:length]))
            snapshot = self._entries.get(key)
            if snapshot is not None:
                self._entries.move_to_end(key)
                self.prefix_hits += 1
                self.steps_saved += length
                _metrics.inc("synth_cache.prefix_hits")
                _metrics.inc("synth_cache.steps_saved", length)
                return length, snapshot.clone()
        self.prefix_misses += 1
        _metrics.inc("synth_cache.prefix_misses")
        return 0, None

    def store(self, fingerprint: str, steps: Sequence[str], aig: Aig) -> None:
        """Snapshot ``aig`` as the state after applying ``steps``."""
        key = (fingerprint, tuple(steps))
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = aig.clone()
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def count_executed(self, steps: int = 1) -> None:
        """Account ``steps`` transform applications actually run."""
        self.steps_executed += steps
        _metrics.inc("synth_cache.steps_executed", steps)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of recipe steps served from snapshots instead of run."""
        total = self.steps_saved + self.steps_executed
        return self.steps_saved / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "prefix_hits": self.prefix_hits,
            "prefix_misses": self.prefix_misses,
            "steps_saved": self.steps_saved,
            "steps_executed": self.steps_executed,
            "hit_rate": round(self.hit_rate, 4),
        }


class SharedSynthCache:
    """A recipe-prefix snapshot store shared across ``--jobs`` workers.

    The private :class:`SynthCache` defeats process fan-out: the scorer is
    pickled once per worker, so every worker warms its own cold cache and
    the hits that make parallel search pay are forfeited.  This class keeps
    one store — snapshots, recency and counters — in a
    ``multiprocessing.Manager`` server process; the handle pickles into
    pool workers (the unpicklable manager itself stays behind), so parent
    and workers all read and extend the same cache, and the aggregated
    hit/miss totals remain visible in the parent after pool teardown.

    Snapshots cross the process boundary as pickled AIGs; a looked-up
    snapshot is re-:meth:`~repro.aig.aig.Aig.clone`'d on arrival, which
    rebuilds the fanout sets in canonical sorted order — the same
    normalization :class:`SynthCache` applies — so the exact-resume
    contract (cached == uncached, bit for bit) holds across processes
    exactly as it does within one.

    Eviction is LRU via a shared recency tick; all store mutations happen
    under one shared lock, so concurrent workers never corrupt the index
    (at worst two workers race to synthesize the same prefix once each).

    ``close()`` freezes the final stats in the parent and shuts the manager
    server down; call it only after the pool's workers have exited.
    """

    def __init__(self, max_entries: int = 512, manager=None):
        if max_entries < 1:
            raise SynthesisError(
                f"SharedSynthCache needs max_entries >= 1, got {max_entries}"
            )
        import multiprocessing

        self.max_entries = max_entries
        self._owns_manager = manager is None
        self._manager = (
            multiprocessing.Manager() if manager is None else manager
        )
        self._lock = self._manager.Lock()
        self._snapshots = self._manager.dict()  # key -> pickled Aig bytes
        self._ticks = self._manager.dict()      # key -> last-use tick
        self._counters = self._manager.dict(
            {
                "tick": 0,
                "prefix_hits": 0,
                "prefix_misses": 0,
                "steps_saved": 0,
                "steps_executed": 0,
            }
        )
        self._closed = False
        self._final_stats: Optional[dict] = None

    # The SyncManager itself cannot be pickled (and workers never need it);
    # the proxies it handed out reconnect to the server from any process.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_manager"] = None
        state["_owns_manager"] = False
        return state

    def __len__(self) -> int:
        return len(self._snapshots)

    def _touch(self, key) -> None:
        tick = self._counters["tick"] + 1
        self._counters["tick"] = tick
        self._ticks[key] = tick

    def lookup(
        self, fingerprint: str, steps: Sequence[str]
    ) -> tuple[int, Optional[Aig]]:
        """Longest prefix of ``steps`` any worker has snapshotted."""
        payload = None
        length = 0
        with self._lock:
            for candidate in range(len(steps), 0, -1):
                key = (fingerprint, tuple(steps[:candidate]))
                payload = self._snapshots.get(key)
                if payload is not None:
                    length = candidate
                    self._touch(key)
                    self._counters["prefix_hits"] += 1
                    self._counters["steps_saved"] += candidate
                    break
            else:
                self._counters["prefix_misses"] += 1
        # Mirror into the *calling process's* metrics registry so each
        # worker's span carries the traffic it generated (the shared
        # counters above stay the cross-process source of truth).
        if payload is None:
            _metrics.inc("synth_cache.prefix_misses")
            return 0, None
        _metrics.inc("synth_cache.prefix_hits")
        _metrics.inc("synth_cache.steps_saved", length)
        # clone() after unpickling canonicalizes fanout-set order, keeping
        # resumed passes deterministic regardless of pickling history.
        return length, pickle.loads(payload).clone()

    def store(self, fingerprint: str, steps: Sequence[str], aig: Aig) -> None:
        """Snapshot ``aig`` into the shared store (worker- or parent-side)."""
        key = (fingerprint, tuple(steps))
        payload = pickle.dumps(aig, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            if key in self._snapshots:
                self._touch(key)
                return
            self._snapshots[key] = payload
            self._touch(key)
            while len(self._snapshots) > self.max_entries:
                oldest = min(self._ticks.items(), key=lambda item: item[1])[0]
                del self._snapshots[oldest]
                del self._ticks[oldest]

    def count_executed(self, steps: int = 1) -> None:
        with self._lock:
            self._counters["steps_executed"] += steps
        _metrics.inc("synth_cache.steps_executed", steps)

    def clear(self) -> None:
        with self._lock:
            self._snapshots.clear()
            self._ticks.clear()

    @property
    def prefix_hits(self) -> int:
        return self.stats()["prefix_hits"]

    @property
    def prefix_misses(self) -> int:
        return self.stats()["prefix_misses"]

    @property
    def steps_saved(self) -> int:
        return self.stats()["steps_saved"]

    @property
    def steps_executed(self) -> int:
        return self.stats()["steps_executed"]

    @property
    def hit_rate(self) -> float:
        stats = self.stats()
        total = stats["steps_saved"] + stats["steps_executed"]
        return stats["steps_saved"] / total if total else 0.0

    def stats(self) -> dict:
        """Aggregated counters across every process that used the store."""
        if self._final_stats is not None:
            return dict(self._final_stats)
        counters = dict(self._counters)
        saved = counters["steps_saved"]
        executed = counters["steps_executed"]
        total = saved + executed
        return {
            "entries": len(self._snapshots),
            "max_entries": self.max_entries,
            "prefix_hits": counters["prefix_hits"],
            "prefix_misses": counters["prefix_misses"],
            "steps_saved": saved,
            "steps_executed": executed,
            "hit_rate": round(saved / total, 4) if total else 0.0,
            "shared": True,
        }

    def close(self) -> None:
        """Freeze final stats and shut the manager server down; idempotent.

        Only the parent-side handle that created the manager actually shuts
        it down — handles that arrived by pickling (pool workers) own
        nothing and close() is a stats freeze for them.
        """
        if self._closed:
            return
        try:
            self._final_stats = self.stats()
        except Exception:  # manager already gone (interpreter teardown)
            self._final_stats = {}
        self._closed = True
        if self._owns_manager and self._manager is not None:
            self._manager.shutdown()
            self._manager = None
