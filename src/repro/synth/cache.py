"""Recipe-prefix caching of intermediate AIG snapshots.

The recipe-search engine evaluates thousands of candidate recipes that are
one-step mutations of each other: a candidate mutated at position ``p``
shares its first ``p`` transforms with the state it was derived from.  The
seed engine re-applied all ``L`` transforms from scratch for every
candidate; :class:`SynthCache` snapshots the AIG after every applied step,
keyed by ``(circuit fingerprint, recipe prefix)``, so the next evaluation
resumes from the longest cached prefix and re-applies only the suffix.

Snapshots are **exact clones** (:meth:`repro.aig.aig.Aig.clone`), not
compacted copies, so resuming from a snapshot is bit-identical to having
run the whole recipe in one go — cached and uncached synthesis produce the
same AIG, which keeps search traces deterministic no matter the cache
state (and SAT-equivalent by construction; ``tests/test_search.py`` proves
both properties).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Sequence

from repro.aig.aig import Aig
from repro.errors import SynthesisError


class SynthCache:
    """Bounded LRU of intermediate AIG snapshots keyed by recipe prefix.

    ``max_entries`` bounds memory: one entry is one mid-recipe AIG clone,
    and the least recently used prefix is evicted first.  ``steps_saved`` /
    ``steps_executed`` account transform applications skipped vs. run, so
    benches can report the prefix-cache hit rate directly.
    """

    def __init__(self, max_entries: int = 512):
        if max_entries < 1:
            raise SynthesisError(
                f"SynthCache needs max_entries >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple[str, tuple[str, ...]], Aig]" = (
            OrderedDict()
        )
        self.prefix_hits = 0
        self.prefix_misses = 0
        self.steps_saved = 0
        self.steps_executed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, fingerprint: str, steps: Sequence[str]
    ) -> tuple[int, Optional[Aig]]:
        """Longest cached prefix of ``steps`` for this circuit.

        Returns ``(k, clone)`` where the clone is the snapshot after the
        first ``k`` steps — the caller applies only ``steps[k:]`` — or
        ``(0, None)`` when nothing is cached.
        """
        for length in range(len(steps), 0, -1):
            key = (fingerprint, tuple(steps[:length]))
            snapshot = self._entries.get(key)
            if snapshot is not None:
                self._entries.move_to_end(key)
                self.prefix_hits += 1
                self.steps_saved += length
                return length, snapshot.clone()
        self.prefix_misses += 1
        return 0, None

    def store(self, fingerprint: str, steps: Sequence[str], aig: Aig) -> None:
        """Snapshot ``aig`` as the state after applying ``steps``."""
        key = (fingerprint, tuple(steps))
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = aig.clone()
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of recipe steps served from snapshots instead of run."""
        total = self.steps_saved + self.steps_executed
        return self.steps_saved / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "prefix_hits": self.prefix_hits,
            "prefix_misses": self.prefix_misses,
            "steps_saved": self.steps_saved,
            "steps_executed": self.steps_executed,
            "hit_rate": round(self.hit_rate, 4),
        }
