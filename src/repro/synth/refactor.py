"""Reconvergence-driven refactoring (ABC's ``refactor`` / ``refactor -z``).

For each node, grow a reconvergence-driven cut of up to ``max_leaves``
inputs, collapse the cone to its truth table, re-express it as an
ISOP-factored (or XOR-decomposed) multi-level form and accept the new
structure when it reduces the node count (or matches it, with ``-z``).
"""

from __future__ import annotations

from repro.aig.aig import Aig, lit_not, make_lit
from repro.aig.cuts import reconvergence_cut
from repro.aig.simulate import cut_truth_table
from repro.synth.factor import FNode, factor_sop
from repro.synth.isop import isop
from repro.synth.opt_common import (
    constant_or_leaf_lit,
    evaluate_candidate,
    leaf_lits,
    realize_candidate,
    try_replace,
)
from repro.utils.truth import TruthTable


def _candidate_trees(table: TruthTable) -> list[tuple[FNode, bool]]:
    """Factored forms for a (possibly wide) cone function."""
    trees = [
        (factor_sop(isop(table)), False),
        (factor_sop(isop(~table)), True),
    ]
    # XOR decomposition on any xor-separable variable (parity cones).
    for var in table.support():
        if table.flip(var).bits == (~table).bits:
            residual = table.cofactor(var, 0)
            sub = factor_sop(isop(residual))
            trees.append((FNode.xor([FNode.lit(var, False), sub]), False))
            break
    return trees


def refactor_pass(
    aig: Aig,
    zero_cost: bool = False,
    max_leaves: int = 10,
    min_leaves: int = 3,
) -> int:
    """Run one refactoring pass in place; returns replacements committed."""
    changed = 0
    for var in aig.topological_ands():
        if aig.is_dead(var) or not aig.is_and(var):
            continue
        cut = reconvergence_cut(aig, var, max_leaves=max_leaves)
        if len(cut) < min_leaves or var in cut:
            continue
        table = cut_truth_table(aig, make_lit(var), cut)
        handles = leaf_lits(cut)
        trivial = constant_or_leaf_lit(table.bits, table.nvars, handles)
        mffc_set = aig.mffc(var, cut)
        if trivial is not None:
            if try_replace(aig, var, cut, trivial, needs_cycle_check=False):
                changed += 1
            continue
        best = None
        for tree, negated in _candidate_trees(table):
            evaluation = evaluate_candidate(aig, var, cut, mffc_set, tree, handles)
            entry = (evaluation.gain, tree, negated, evaluation.needs_cycle_check)
            if best is None or entry[0] > best[0]:
                best = entry
        if best is None:
            continue
        gain, tree, negated, cycle_check = best
        if gain < 0 or (gain == 0 and not zero_cost):
            continue
        new_lit = realize_candidate(aig, tree, handles, negated)
        if try_replace(aig, var, cut, new_lit, cycle_check):
            changed += 1
    return changed
