"""Built-in stage implementations behind the pipeline registry.

Each function here adapts one of the repo's primitive operations —
:func:`repro.locking.lock_rll`, :func:`repro.synth.engine.apply_recipe`,
the classes in :data:`repro.attacks.ATTACK_REGISTRY`, the ALMOST defense —
to the registry calling conventions:

* ``locker(netlist, spec: LockSpec) -> LockArtifact``
* ``synth(spec: SynthSpec) -> Recipe`` (a recipe *provider*)
* ``defense(lock: LockArtifact, spec: DefenseSpec) -> dict``
* ``attack(ctx: AttackContext, params: dict) -> AttackResult``
* ``reporter(run: RunResult, spec: ReportSpec) -> str``

The primitives stay public and unchanged; the pipeline composes them.
Importing this module populates the registry, which
``repro.pipeline.__init__`` does eagerly so spec validation always sees the
built-ins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.attacks import get_attack
from repro.attacks.base import AttackResult
from repro.errors import PipelineError, SpecError
from repro.locking import Key, lock_rll, relock
from repro.locking.rll import LockedCircuit
from repro.netlist.netlist import Netlist
from repro.pipeline.registry import register, registered
from repro.pipeline.spec import DefenseSpec, LockSpec, ReportSpec, SynthSpec
from repro.synth.recipe import RESYN2, Recipe, random_recipe


# -- shared artifact containers ------------------------------------------

@dataclass
class LockArtifact:
    """Output of the lock stage: the (possibly) locked netlist plus key.

    ``partitions`` carries the per-scheme key slices of compound locks
    (``(scheme, key_input_names)`` pairs) so reports can score an RLL
    portion separately from a point-function portion.
    """

    netlist: Netlist
    key: Optional[Key]
    key_inputs: tuple[str, ...]
    locker: str
    partitions: tuple = ()

    def as_locked_circuit(self) -> LockedCircuit:
        if self.key is None:
            raise PipelineError(
                f"stage requires the true key but locker {self.locker!r} "
                "did not produce one (pass LockSpec.key for pre-locked "
                "designs)"
            )
        return LockedCircuit(
            netlist=self.netlist,
            key=self.key,
            locked_nets=(),
            key_input_names=self.key_inputs,
            partitions=tuple(self.partitions),
        )


@dataclass
class SynthArtifact:
    """Output of the synth stage: optimized netlist plus its mapped view."""

    netlist: Netlist
    mapped: Any
    recipe: str


@dataclass
class AttackContext:
    """Everything an attack adapter may featurize."""

    lock: LockArtifact
    synth: SynthArtifact
    recipe: Recipe


def _parse_key(text: str) -> Key:
    return Key(tuple(int(c) for c in text))


def _params(
    attack: str, given: Mapping[str, Any], defaults: Mapping[str, Any]
) -> dict:
    unknown = set(given) - set(defaults)
    if unknown:
        raise SpecError(
            f"unknown parameter(s) for attack {attack!r}: {sorted(unknown)}; "
            f"allowed: {sorted(defaults)}"
        )
    merged = dict(defaults)
    merged.update(given)
    return merged


# -- lockers --------------------------------------------------------------

def artifact_from_locked(locked, locker: str) -> LockArtifact:
    """Reduce a :class:`LockedCircuit` to the pipeline's lock artifact."""
    return LockArtifact(
        netlist=locked.netlist,
        key=locked.key,
        key_inputs=tuple(locked.key_input_names),
        locker=locker,
        partitions=tuple(
            (p.scheme, tuple(p.key_inputs)) for p in locked.partitions
        ),
    )


@register("locker", "rll")
def _lock_with_rll(netlist: Netlist, spec: LockSpec) -> LockArtifact:
    if netlist.key_inputs:
        raise PipelineError(
            "locker 'rll' expects an unlocked design, but the netlist "
            "already has keyinput* pins — use locker 'given' for "
            "pre-locked designs (with LockSpec.key for scoring) or "
            "'relock' to stack additional key gates"
        )
    key = _parse_key(spec.key) if spec.key else None
    locked = lock_rll(
        netlist,
        key_size=len(key) if key is not None else spec.key_size,
        seed=spec.seed,
        key=key,
    )
    return artifact_from_locked(locked, "rll")


def _point_function_locker(scheme: str):
    """Adapter factory for the SAT-resilient lockers (and compounds).

    ``LockSpec.key_size`` sizes the RLL stage of compounds; point-function
    stages always compare the full functional input width — the standard
    construction, under which a wrong key errs on exactly one minterm.
    Narrower experimental blocks go through ``DefenseSpec.width`` instead.
    """

    def _lock(netlist: Netlist, spec: LockSpec) -> LockArtifact:
        from repro.defenses import lock_scheme

        if spec.key:
            # Point-function keys are structural (Anti-SAT's B||B halves,
            # SARLock's hard-coded mask) — honoring arbitrary bits would
            # silently lock a different configuration than the spec says.
            raise PipelineError(
                f"locker {scheme!r} derives its key from LockSpec.seed; "
                "LockSpec.key is not supported here"
            )
        if netlist.key_inputs:
            raise PipelineError(
                f"locker {scheme!r} expects an unlocked design — apply "
                "the point-function block to a pre-locked design through "
                f"a DefenseSpec (defense {scheme.split('+')[-1]!r}) instead"
            )
        locked = lock_scheme(
            netlist, scheme,
            key_size=spec.key_size, width=0, seed=spec.seed,
        )
        return artifact_from_locked(locked, scheme)

    return _lock


for _scheme in ("antisat", "sarlock", "rll+antisat", "rll+sarlock"):
    register("locker", _scheme)(_point_function_locker(_scheme))


@register("locker", "relock")
def _lock_with_relock(netlist: Netlist, spec: LockSpec) -> LockArtifact:
    locked = relock(netlist, key_size=spec.key_size, seed=spec.seed)
    return artifact_from_locked(locked, "relock")


@register("locker", "given")
def _lock_given(netlist: Netlist, spec: LockSpec) -> LockArtifact:
    """The design is already locked; ``spec.key`` optionally scores it."""
    key_inputs = tuple(netlist.key_inputs)
    if not key_inputs:
        raise PipelineError(
            "locker 'given' expects a pre-locked design, but the netlist "
            "has no keyinput* pins"
        )
    key = _parse_key(spec.key) if spec.key else None
    if key is not None and len(key) != len(key_inputs):
        raise PipelineError(
            f"LockSpec.key has {len(key)} bits but the design has "
            f"{len(key_inputs)} key inputs"
        )
    return LockArtifact(
        netlist=netlist, key=key, key_inputs=key_inputs, locker="given",
        # One opaque partition for the pre-existing bits, so structural
        # defenses stacked on top report the full key breakdown.
        partitions=(("given", key_inputs),),
    )


@register("locker", "none")
def _lock_none(netlist: Netlist, spec: LockSpec) -> LockArtifact:
    return LockArtifact(netlist=netlist, key=None, key_inputs=(), locker="none")


# -- synthesis recipe providers ------------------------------------------

@register("synth", "resyn2")
def _recipe_resyn2(spec: SynthSpec) -> Recipe:
    return RESYN2


@register("synth", "random")
def _recipe_random(spec: SynthSpec) -> Recipe:
    return random_recipe(spec.length, seed=spec.seed)


@register("synth", "none")
def _recipe_none(spec: SynthSpec) -> None:
    """No synthesis: the locked netlist is attacked exactly as given."""
    return None


def resolve_recipe(spec: SynthSpec) -> Optional[Recipe]:
    """Resolve ``spec.recipe``: registry name first, literal string second.

    Returns ``None`` for the ``none`` provider — the synth stage then
    passes the locked netlist through untouched.
    """
    if registered("synth", spec.recipe):
        from repro.pipeline.registry import get

        return get("synth", spec.recipe)(spec)
    return Recipe.parse(spec.recipe)


# -- defenses -------------------------------------------------------------
#
# Two families behind one registry kind.  Recipe searches (``almost``)
# return ``{"recipe": ...}`` and the synth stage follows it; *structural*
# defenses (``antisat``, ``sarlock``) return ``{"lock": LockArtifact}`` —
# a replacement lock artifact with the point-function block grafted on and
# the key extended — and the synth stage falls back to the spec's recipe.

def _structural_defense(scheme: str):
    """Graft a point-function block onto the already-locked artifact."""

    def _defend(lock: LockArtifact, spec: DefenseSpec) -> dict:
        from repro.defenses import lock_antisat, lock_sarlock

        lock_fn = lock_antisat if scheme == "antisat" else lock_sarlock
        block = lock_fn(
            lock.netlist, width=spec.width or None, seed=spec.seed
        )
        if lock.key is not None:
            combined = Key(lock.key.bits + block.key.bits)
        elif not lock.key_inputs:
            combined = block.key  # base design was unlocked
        else:
            combined = None  # pre-locked with unknown key: stay unscored
        partitions = tuple(lock.partitions) + tuple(
            (p.scheme, tuple(p.key_inputs)) for p in block.partitions
        )
        defended = LockArtifact(
            netlist=block.netlist,
            key=combined,
            key_inputs=tuple(lock.key_inputs) + tuple(block.key_input_names),
            locker=f"{lock.locker}+{scheme}" if lock.key_inputs else scheme,
            partitions=partitions,
        )
        return {
            "defense": scheme,
            "structural": True,
            "key_added": str(block.key),
            "width": len(block.key_input_names)
            if scheme == "sarlock"
            else len(block.key_input_names) // 2,
            "added_key_bits": len(block.key_input_names),
            "key_inputs_added": list(block.key_input_names),
            "partitions": {s: list(nets) for s, nets in partitions},
            "lock": defended,
        }

    return _defend


for _scheme in ("antisat", "sarlock"):
    register("defense", _scheme)(_structural_defense(_scheme))


def effective_lock(artifacts: Mapping[str, Any]) -> LockArtifact:
    """The lock artifact downstream stages should see.

    Structural defenses replace the lock artifact; recipe-search defenses
    (and no defense at all) leave it untouched.
    """
    defense = artifacts.get("defense")
    if isinstance(defense, Mapping) and "lock" in defense:
        return defense["lock"]
    return artifacts["lock"]


@register("defense", "almost")
def _defend_almost(lock: LockArtifact, spec: DefenseSpec) -> dict:
    """ALMOST's recipe search driven by the M_resyn2 proxy.

    ``spec.strategy``/``chains``/``jobs`` select and size the search engine
    (:mod:`repro.core.search`); the defaults reproduce the paper's serial
    SA.  The returned dict carries the search accounting — evaluation
    counts and the recipe-prefix synthesis-cache stats (for ``jobs`` > 1
    the cross-worker aggregate from the shared snapshot store, which used
    to be lost on pool teardown) — so grid reports can compare strategies.
    """
    from repro.core import AlmostConfig, AlmostDefense, ProxyConfig
    from repro.core.proxy import build_resyn2_proxy

    locked = lock.as_locked_circuit()
    proxy = build_resyn2_proxy(
        locked,
        ProxyConfig(
            num_samples=spec.samples, epochs=spec.epochs, seed=spec.seed
        ),
    )
    defense = AlmostDefense(
        proxy,
        AlmostConfig(
            sa_iterations=spec.iterations,
            seed=spec.seed,
            strategy=spec.single_strategy,
            chains=spec.chains,
            jobs=spec.jobs,
        ),
    )
    result = defense.generate_recipe()
    return {
        "defense": "almost",
        "recipe": result.recipe.short(),
        "predicted_accuracy": float(result.predicted_accuracy),
        "strategy": result.strategy,
        "chains": spec.chains,
        "jobs": spec.jobs,
        "search_iterations": result.iterations,
        "energy_evaluations": result.energy_evaluations,
        "synth_cache": dict(result.synth_cache),
    }


# -- attacks --------------------------------------------------------------
#
# Adapters close the gap between the heterogeneous attack constructors
# (OMLA wants a recipe + config, SCOPE is parameterless, SAT wants an
# oracle) and the uniform "run this attack on this cell" the grid needs.

def _omla_training(ctx: AttackContext, params: Mapping[str, Any]):
    from repro.attacks import OmlaAttack, OmlaConfig

    attack = OmlaAttack(
        ctx.recipe,
        OmlaConfig(
            hops=params["hops"],
            epochs=params["epochs"],
            relock_key_bits=params["relock_bits"],
            num_relocks=params["num_relocks"],
            seed=params["seed"],
        ),
    )
    data = attack.generate_training_data(
        ctx.lock.netlist, num_samples=params["samples"]
    )
    return attack, data


@register("attack", "omla")
def _attack_omla(ctx: AttackContext, params: Mapping[str, Any]) -> AttackResult:
    params = _params(
        "omla", params,
        {"epochs": 20, "samples": 64, "relock_bits": 16, "num_relocks": 4,
         "hops": 3, "seed": 0},
    )
    attack, data = _omla_training(ctx, params)
    attack.train(data)
    return attack.attack(ctx.synth.mapped, ctx.lock.key)


@register("attack", "snapshot")
def _attack_snapshot(
    ctx: AttackContext, params: Mapping[str, Any]
) -> AttackResult:
    from repro.attacks import SnapShotAttack

    params = _params(
        "snapshot", params,
        {"epochs": 60, "samples": 64, "relock_bits": 16, "num_relocks": 4,
         "hops": 3, "seed": 0},
    )
    _omla, data = _omla_training(ctx, params)
    snapshot = SnapShotAttack(
        hops=params["hops"], epochs=params["epochs"], seed=params["seed"]
    )
    snapshot.train(data)
    return snapshot.attack(
        ctx.synth.mapped, ctx.lock.key, key_nets=ctx.lock.key_inputs or None
    )


@register("attack", "sail")
def _attack_sail(ctx: AttackContext, params: Mapping[str, Any]) -> AttackResult:
    from repro.attacks import SailAttack

    params = _params(
        "sail", params,
        {"epochs": 80, "samples": 64, "relock_bits": 16, "num_relocks": 4,
         "hops": 3, "seed": 0},
    )
    _omla, data = _omla_training(ctx, params)
    sail = SailAttack(
        hops=params["hops"], epochs=params["epochs"], seed=params["seed"]
    )
    sail.train(data)
    return sail.attack(
        ctx.synth.mapped, ctx.lock.key, key_nets=ctx.lock.key_inputs or None
    )


@register("attack", "scope")
def _attack_scope(ctx: AttackContext, params: Mapping[str, Any]) -> AttackResult:
    from repro.attacks import ScopeAttack

    params = _params("scope", params, {"recipe": ""})
    recipe = Recipe.parse(params["recipe"]) if params["recipe"] else None
    return ScopeAttack(recipe=recipe).attack(
        ctx.synth.netlist, ctx.lock.key, key_nets=ctx.lock.key_inputs or None
    )


@register("attack", "redundancy")
def _attack_redundancy(
    ctx: AttackContext, params: Mapping[str, Any]
) -> AttackResult:
    from repro.attacks import RedundancyAttack

    params = _params(
        "redundancy", params, {"num_patterns": 128, "hops": 3, "seed": 0}
    )
    attack = RedundancyAttack(
        hops=params["hops"],
        num_patterns=params["num_patterns"],
        seed=params["seed"],
    )
    return attack.attack(
        ctx.synth.netlist, ctx.lock.key, key_nets=ctx.lock.key_inputs or None
    )


def _oracle_guided_setup(ctx: AttackContext, attack_name: str):
    from repro.attacks import oracle_from_key

    if ctx.lock.key is None:
        raise PipelineError(
            f"the {attack_name} attack is oracle-guided: the spec must "
            "provide the true key (LockSpec.key) or use a locker that "
            "generates one"
        )
    netlist = ctx.synth.netlist
    return netlist, oracle_from_key(netlist, ctx.lock.key), ctx.lock.key


@register("attack", "sat")
def _attack_sat(ctx: AttackContext, params: Mapping[str, Any]) -> AttackResult:
    from repro.attacks import SatAttackConfig

    params = _params("sat", params, {"max_iterations": 512})
    netlist, oracle, true_key = _oracle_guided_setup(ctx, "sat")
    attack_cls = get_attack("sat")
    attack = attack_cls(
        SatAttackConfig(max_iterations=params["max_iterations"])
    )
    return attack.attack(netlist, oracle=oracle, true_key=true_key)


@register("attack", "appsat")
def _attack_appsat(
    ctx: AttackContext, params: Mapping[str, Any]
) -> AttackResult:
    from repro.attacks import AppSatConfig

    params = _params(
        "appsat", params,
        {"max_iterations": 512, "query_period": 8, "random_queries": 64,
         "error_threshold": 0.0, "settle_rounds": 2, "seed": 0},
    )
    netlist, oracle, true_key = _oracle_guided_setup(ctx, "appsat")
    attack_cls = get_attack("appsat")
    attack = attack_cls(
        AppSatConfig(
            max_iterations=params["max_iterations"],
            query_period=params["query_period"],
            random_queries=params["random_queries"],
            error_threshold=params["error_threshold"],
            settle_rounds=params["settle_rounds"],
            seed=params["seed"],
        )
    )
    return attack.attack(netlist, oracle=oracle, true_key=true_key)


#: Attacks that need a functional oracle; everything else is oracle-less.
ORACLE_GUIDED_ATTACKS: frozenset[str] = frozenset({"sat", "appsat"})

#: Defenses whose adapters consume ``DefenseSpec.strategy`` (recipe
#: searches).  Strategy sweeps are only meaningful for these — a sweep on
#: a structural defense would fan out byte-identical cells — so
#: ``Runner.validate`` rejects sweeps on anything else.  Plugins that
#: register a search defense should add their name here.
SEARCH_DEFENSES: frozenset[str] = frozenset({"almost"})


# -- reporters ------------------------------------------------------------

@register("reporter", "table")
def _report_table(run, spec: ReportSpec) -> str:
    from repro.reporting import render_run_table

    return render_run_table(run)


@register("reporter", "json")
def _report_json(run, spec: ReportSpec) -> str:
    return run.to_json()


@register("reporter", "search")
def _report_search(run, spec: ReportSpec) -> str:
    """Strategy-comparison table over the run's recipe-search cells.

    The natural reporter for a ``DefenseSpec`` strategy sweep: one row per
    (benchmark, strategy), rendered from a single :class:`RunResult`.
    """
    from repro.reporting import records_from_run, render_search_comparison_table

    records = records_from_run(run)
    if not records:
        return (
            "no recipe-search cells in this run (the 'search' reporter "
            "needs a DefenseSpec with a search defense such as 'almost')"
        )
    return render_search_comparison_table(records)
