"""Content-addressed artifact cache for pipeline stages.

Every stage execution is identified by a fingerprint: the SHA-256 of the
stage name, its spec (as canonical JSON) and the fingerprints of its
dependencies.  Identical work — the same benchmark locked with the same
seed, the same recipe applied to the same netlist — therefore hashes to the
same key whoever asks, so a warm grid run (or a second attack sharing a
benchmark's lock/synth prefix, even from another worker process) loads the
pickled artifact from disk instead of recomputing it.

The cache root defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``;
``Runner(workdir=...)`` points it anywhere else (CI, tmpdirs, scratch
volumes).  Entries are written atomically (temp file + rename) so parallel
workers never observe torn pickles.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
import time
from pathlib import Path
from typing import Any, Optional, Union

from repro.errors import CacheError
from repro.obs import metrics as _metrics

_ENV_ROOT = "REPRO_CACHE_DIR"
_SENTINEL = object()

#: Salted into every stage fingerprint (see ``execute_stages``).  Bump this
#: whenever a built-in stage's *semantics* change, so artifacts produced by
#: older code can never be served against newer specs.
CACHE_SCHEMA = 5  # v5: cross-worker shared synth-cache stats in almost artifacts


def canonical_json(obj: Any) -> str:
    """Deterministic JSON used for fingerprinting (sorted keys, no spaces)."""
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CacheError(f"cannot fingerprint non-JSON value: {exc}") from None


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest over the canonical JSON of ``parts``."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(canonical_json(part).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def file_digest(path: Union[str, Path]) -> str:
    """SHA-256 of a file's bytes (ties path-based specs to file content)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(65536), b""):
            digest.update(block)
    return digest.hexdigest()


_DURATION_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}
_SIZE_UNITS = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}


def parse_duration(text: str) -> float:
    """``"90s"``/``"15m"``/``"6h"``/``"30d"``/``"2w"`` -> seconds.

    A bare number means seconds.  Used by ``repro cache prune
    --older-than``.
    """
    match = re.fullmatch(
        r"\s*(\d+(?:\.\d+)?)\s*([smhdw]?)\s*", str(text).lower()
    )
    if not match:
        raise CacheError(
            f"cannot parse duration {text!r}; expected e.g. 90s, 15m, "
            "6h, 30d, 2w"
        )
    return float(match.group(1)) * _DURATION_UNITS.get(match.group(2), 1)


def parse_size(text: str) -> int:
    """``"500M"``/``"2G"``/``"1024"`` -> bytes (1024-based, optional B).

    Used by ``repro cache prune --max-bytes``.
    """
    match = re.fullmatch(
        r"\s*(\d+(?:\.\d+)?)\s*([kmgt]?)b?\s*", str(text).lower()
    )
    if not match:
        raise CacheError(
            f"cannot parse size {text!r}; expected e.g. 1024, 500M, 2G"
        )
    return int(float(match.group(1)) * _SIZE_UNITS[match.group(2)])


def default_cache_root() -> Path:
    env = os.environ.get(_ENV_ROOT)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


class ArtifactCache:
    """Pickle-backed store mapping fingerprints to stage artifacts."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root).expanduser() if root else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str, default: Any = _SENTINEL) -> Any:
        """Load an artifact; counts a hit/miss.  Raises on a true miss
        unless ``default`` is supplied (mirrors ``dict.get`` vs ``[]``).
        A corrupt entry is treated as a miss and deleted."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except OSError:
            # Missing or unreadable entry: a plain miss.  Never delete here —
            # on a shared cache an EACCES may hide someone else's valid
            # artifact.
            pass
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Corrupt or stale content: evict so the slot heals itself.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        else:
            self.hits += 1
            _metrics.inc("artifact_cache.hits")
            return value
        self.misses += 1
        _metrics.inc("artifact_cache.misses")
        if default is _SENTINEL:
            raise CacheError(f"cache miss for {key}")
        return default

    def put(self, key: str, value: Any) -> bool:
        """Store an artifact atomically; returns False if it can't pickle."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable artifacts (e.g. closures) just skip the cache.
            return False
        handle = tempfile.NamedTemporaryFile(
            dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(payload)
            os.replace(handle.name, path)
        except OSError as exc:
            Path(handle.name).unlink(missing_ok=True)
            raise CacheError(f"cannot write cache entry {key}: {exc}") from None
        self.writes += 1
        _metrics.inc("artifact_cache.writes")
        return True

    def clear(self) -> int:
        """Delete every entry under the root; returns the count removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.pkl"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict:
        return {
            "root": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    def _entries(self) -> list[tuple[Path, os.stat_result]]:
        """Every on-disk entry with its stat, skipping vanished files
        (parallel workers may be pruning/writing concurrently)."""
        entries = []
        if not self.root.exists():
            return entries
        for path in self.root.glob("*/*.pkl"):
            try:
                entries.append((path, path.stat()))
            except OSError:
                continue
        return entries

    def disk_stats(self) -> dict:
        """What ``repro cache stats`` prints: the on-disk footprint."""
        entries = self._entries()
        return {
            "root": str(self.root),
            "schema": CACHE_SCHEMA,
            "entries": len(entries),
            "bytes": sum(stat.st_size for _path, stat in entries),
        }

    def prune(
        self,
        older_than_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> dict:
        """Evict entries by age and/or total-size budget.

        ``older_than_s`` removes entries whose mtime is further back than
        that many seconds; ``max_bytes`` then evicts oldest-first until
        the survivors fit the budget.  Safe on a live cache: eviction is
        only ever a future miss.  Returns ``{"removed", "freed_bytes",
        "remaining", "remaining_bytes"}``.
        """
        entries = sorted(
            self._entries(), key=lambda item: item[1].st_mtime
        )
        removed = 0
        freed = 0
        keep: list[tuple[Path, os.stat_result]] = []
        cutoff = (
            time.time() - older_than_s if older_than_s is not None else None
        )
        for path, stat in entries:
            if cutoff is not None and stat.st_mtime < cutoff:
                path.unlink(missing_ok=True)
                removed += 1
                freed += stat.st_size
            else:
                keep.append((path, stat))
        if max_bytes is not None:
            total = sum(stat.st_size for _path, stat in keep)
            survivors = []
            for index, (path, stat) in enumerate(keep):
                if total > max_bytes:
                    path.unlink(missing_ok=True)
                    removed += 1
                    freed += stat.st_size
                    total -= stat.st_size
                else:
                    survivors.extend(keep[index:])
                    break
            keep = survivors
        for shard in self.root.glob("*"):
            # Drop shard dirs the pruning emptied (ignore non-empty/races).
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return {
            "removed": removed,
            "freed_bytes": freed,
            "remaining": len(keep),
            "remaining_bytes": sum(stat.st_size for _path, stat in keep),
        }
