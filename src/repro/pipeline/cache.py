"""Content-addressed artifact cache for pipeline stages.

Every stage execution is identified by a fingerprint: the SHA-256 of the
stage name, its spec (as canonical JSON) and the fingerprints of its
dependencies.  Identical work — the same benchmark locked with the same
seed, the same recipe applied to the same netlist — therefore hashes to the
same key whoever asks, so a warm grid run (or a second attack sharing a
benchmark's lock/synth prefix, even from another worker process) loads the
pickled artifact from disk instead of recomputing it.

The cache root defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``;
``Runner(workdir=...)`` points it anywhere else (CI, tmpdirs, scratch
volumes).  Entries are written atomically (temp file + rename) so parallel
workers never observe torn pickles.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Union

from repro.errors import CacheError
from repro.obs import metrics as _metrics

_ENV_ROOT = "REPRO_CACHE_DIR"
_SENTINEL = object()

#: Salted into every stage fingerprint (see ``execute_stages``).  Bump this
#: whenever a built-in stage's *semantics* change, so artifacts produced by
#: older code can never be served against newer specs.
CACHE_SCHEMA = 5  # v5: cross-worker shared synth-cache stats in almost artifacts


def canonical_json(obj: Any) -> str:
    """Deterministic JSON used for fingerprinting (sorted keys, no spaces)."""
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CacheError(f"cannot fingerprint non-JSON value: {exc}") from None


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest over the canonical JSON of ``parts``."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(canonical_json(part).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def file_digest(path: Union[str, Path]) -> str:
    """SHA-256 of a file's bytes (ties path-based specs to file content)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(65536), b""):
            digest.update(block)
    return digest.hexdigest()


def default_cache_root() -> Path:
    env = os.environ.get(_ENV_ROOT)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


class ArtifactCache:
    """Pickle-backed store mapping fingerprints to stage artifacts."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root).expanduser() if root else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str, default: Any = _SENTINEL) -> Any:
        """Load an artifact; counts a hit/miss.  Raises on a true miss
        unless ``default`` is supplied (mirrors ``dict.get`` vs ``[]``).
        A corrupt entry is treated as a miss and deleted."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except OSError:
            # Missing or unreadable entry: a plain miss.  Never delete here —
            # on a shared cache an EACCES may hide someone else's valid
            # artifact.
            pass
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Corrupt or stale content: evict so the slot heals itself.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        else:
            self.hits += 1
            _metrics.inc("artifact_cache.hits")
            return value
        self.misses += 1
        _metrics.inc("artifact_cache.misses")
        if default is _SENTINEL:
            raise CacheError(f"cache miss for {key}")
        return default

    def put(self, key: str, value: Any) -> bool:
        """Store an artifact atomically; returns False if it can't pickle."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable artifacts (e.g. closures) just skip the cache.
            return False
        handle = tempfile.NamedTemporaryFile(
            dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(payload)
            os.replace(handle.name, path)
        except OSError as exc:
            Path(handle.name).unlink(missing_ok=True)
            raise CacheError(f"cannot write cache entry {key}: {exc}") from None
        self.writes += 1
        _metrics.inc("artifact_cache.writes")
        return True

    def clear(self) -> int:
        """Delete every entry under the root; returns the count removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.pkl"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict:
        return {
            "root": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }
