"""One registry for every pluggable stage kind.

Generalizes the ``ATTACK_REGISTRY`` pattern from :mod:`repro.attacks` into a
single table covering all pipeline extension points::

    from repro.pipeline.registry import register

    @register("locker", "rll")
    def _lock_rll(netlist, spec):
        ...

A new scenario — another locker, a new attack family, an exotic reporter —
is one decorated function away from being addressable from a spec file.
Duplicate registration and unknown lookups raise
:class:`repro.errors.PipelineError` so typos fail loudly at spec-validation
time, not mid-grid.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import PipelineError

#: The stage kinds a spec can reference.
KINDS: tuple[str, ...] = ("locker", "synth", "defense", "attack", "reporter")

_REGISTRY: dict[str, dict[str, Any]] = {kind: {} for kind in KINDS}


def _kind_table(kind: str) -> dict[str, Any]:
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise PipelineError(
            f"unknown registry kind {kind!r}; kinds: {list(KINDS)}"
        ) from None


def register(kind: str, name: str) -> Callable:
    """Decorator registering ``obj`` under ``(kind, name)``.

    >>> @register("reporter", "null")          # doctest: +SKIP
    ... def null_reporter(run, spec): return ""
    """
    table = _kind_table(kind)

    def decorator(obj: Any) -> Any:
        if name in table:
            raise PipelineError(
                f"duplicate registration: {kind} {name!r} is already "
                f"{table[name]!r}"
            )
        table[name] = obj
        return obj

    return decorator


def get(kind: str, name: str) -> Any:
    """Look up a registered object; raises with the available names."""
    table = _kind_table(kind)
    try:
        return table[name]
    except KeyError:
        raise PipelineError(
            f"unknown {kind} {name!r}; available: {sorted(table)}"
        ) from None


def registered(kind: str, name: str) -> bool:
    """True if ``(kind, name)`` is registered."""
    return name in _kind_table(kind)


def available(kind: str) -> list[str]:
    """Sorted names registered under ``kind``."""
    return sorted(_kind_table(kind))


def unregister(kind: str, name: str) -> None:
    """Remove a registration (plugin teardown / test isolation)."""
    table = _kind_table(kind)
    if name not in table:
        raise PipelineError(f"{kind} {name!r} is not registered")
    del table[name]


def items(kind: str) -> Iterator[tuple[str, Any]]:
    """(name, object) pairs registered under ``kind``, sorted by name."""
    table = _kind_table(kind)
    return iter(sorted(table.items()))
