"""Unified experiment pipeline: declarative specs, registries, cached runs.

The documented front door for running experiments.  A grid of
benchmark × defense × attack evaluations — the shape of every table in the
ALMOST paper — is one :class:`ExperimentSpec` away::

    from repro.pipeline import (
        AttackSpec, BenchmarkSpec, ExperimentSpec, LockSpec, run_experiment,
    )

    spec = ExperimentSpec(
        name="demo",
        benchmarks=(BenchmarkSpec(name="c432"), BenchmarkSpec(name="c880")),
        lock=LockSpec(locker="rll", key_size=16, seed=7),
        attacks=(AttackSpec("scope"), AttackSpec("redundancy")),
    )
    run = run_experiment(spec, jobs=2)
    print(run.cell("c432", "scope").accuracy)

The same spec round-trips through TOML/JSON (``repro run spec.toml``),
stage outputs are content-hash cached under ``~/.cache/repro`` (or a
``--workdir``), and independent cells fan out over a process pool.  New
lockers / recipes / defenses / attacks / reporters plug in through
:func:`repro.pipeline.registry.register` — one decorator, no call-site
changes.
"""

from repro.pipeline.spec import (
    AttackSpec,
    BenchmarkSpec,
    DefenseSpec,
    ExperimentSpec,
    LockSpec,
    ReportSpec,
    SynthSpec,
)
from repro.pipeline.registry import available, get, register, registered, unregister
from repro.pipeline.cache import ArtifactCache, canonical_json, fingerprint
from repro.pipeline import stages  # noqa: F401 — registers the built-ins
from repro.pipeline.stages import (
    AttackContext,
    LockArtifact,
    ORACLE_GUIDED_ATTACKS,
    SynthArtifact,
    effective_lock,
    resolve_recipe,
)
from repro.pipeline.runner import (
    CellResult,
    RunResult,
    Runner,
    Stage,
    execute_stages,
    run_experiment,
    topological_order,
)

__all__ = [
    "AttackSpec",
    "BenchmarkSpec",
    "DefenseSpec",
    "ExperimentSpec",
    "LockSpec",
    "ReportSpec",
    "SynthSpec",
    "register",
    "registered",
    "unregister",
    "get",
    "available",
    "ArtifactCache",
    "canonical_json",
    "fingerprint",
    "AttackContext",
    "LockArtifact",
    "SynthArtifact",
    "ORACLE_GUIDED_ATTACKS",
    "effective_lock",
    "resolve_recipe",
    "CellResult",
    "RunResult",
    "Runner",
    "Stage",
    "execute_stages",
    "topological_order",
    "run_experiment",
]
