"""Declarative experiment specs: the typed description of one grid run.

An :class:`ExperimentSpec` is the whole experiment — which benchmarks to
load, how to lock them, which synthesis recipe (or defense search) to apply
and which attacks to evaluate — as plain data.  It round-trips through JSON
and TOML, so a spec file *is* the experiment and ``repro run spec.toml``
reproduces it bit-for-bit.  Validation failures raise
:class:`repro.errors.SpecError` with the offending field spelled out.

The grid semantics: every ``benchmarks`` entry is crossed with every
``attacks`` entry, and the lock/defense/synth stages in between are shared
per benchmark (and cached by content hash, see
:mod:`repro.pipeline.cache`).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.errors import SpecError

_MISSING = object()


def _typecheck(cls_name: str, fieldname: str, value: Any, types, hint: str):
    if not isinstance(value, types):
        raise SpecError(
            f"{cls_name}.{fieldname} must be {hint}, "
            f"got {type(value).__name__} ({value!r})"
        )
    return value


def _dataclass_from_dict(cls, data: Mapping[str, Any]):
    """Build a flat spec dataclass from a mapping, rejecting unknown keys."""
    if not isinstance(data, Mapping):
        raise SpecError(
            f"{cls.__name__} section must be a table/object, got "
            f"{type(data).__name__}"
        )
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise SpecError(
            f"unknown {cls.__name__} field(s): {sorted(unknown)}; "
            f"allowed: {sorted(names)}"
        )
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        if f.type in ("int", int):
            # bool is an int subclass; reject it explicitly.
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(
                    f"{cls.__name__}.{f.name} must be an integer, "
                    f"got {value!r}"
                )
        elif f.type in ("str", str) and not isinstance(value, str):
            raise SpecError(
                f"{cls.__name__}.{f.name} must be a string, got {value!r}"
            )
        kwargs[f.name] = value
    return cls(**kwargs)


@dataclass(frozen=True)
class BenchmarkSpec:
    """One circuit to run the grid on: an ISCAS85 name or a ``.bench`` file."""

    name: str = ""
    path: str = ""
    scale: str = "quick"
    seed: int = 0

    def __post_init__(self) -> None:
        if bool(self.name) == bool(self.path):
            raise SpecError(
                "BenchmarkSpec needs exactly one of 'name' (generated "
                f"ISCAS85) or 'path' (.bench file); got name={self.name!r}, "
                f"path={self.path!r}"
            )
        if self.scale not in ("quick", "standard", "full"):
            raise SpecError(
                f"BenchmarkSpec.scale must be quick|standard|full, "
                f"got {self.scale!r}"
            )

    @property
    def label(self) -> str:
        """Cell-row identity: decorated with scale/seed when non-default so
        replicas of one circuit stay distinguishable in tables and
        :meth:`RunResult.cell` lookups."""
        if self.path:
            return Path(self.path).stem
        label = self.name
        if self.scale != "quick":
            label += f":{self.scale}"
        if self.seed:
            label += f"#s{self.seed}"
        return label

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "BenchmarkSpec":
        return _dataclass_from_dict(BenchmarkSpec, data)


@dataclass(frozen=True)
class LockSpec:
    """How the benchmark gets its key gates.

    ``locker`` names a registry entry (``rll``, ``relock``) or the two
    pseudo-lockers: ``given`` (the design is already locked; ``key``
    optionally supplies the true bits for scoring) and ``none`` (run
    unlocked — only meaningful for PPA-style experiments).
    """

    locker: str = "rll"
    key_size: int = 32
    seed: int = 0
    key: str = ""

    def __post_init__(self) -> None:
        if not self.locker:
            raise SpecError("LockSpec.locker must not be empty")
        if self.key and set(self.key) - {"0", "1"}:
            raise SpecError(
                f"LockSpec.key must be 0/1 bits, got {self.key!r}"
            )
        if self.key_size <= 0:
            raise SpecError(
                f"LockSpec.key_size must be positive, got {self.key_size}"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "LockSpec":
        return _dataclass_from_dict(LockSpec, data)


@dataclass(frozen=True)
class SynthSpec:
    """The synthesis recipe applied before the attacks see the netlist.

    ``recipe`` is a registry name (``resyn2``, ``random``) or a literal
    recipe string such as ``"b;rw;rfz;b"``.  ``length``/``seed`` parameterize
    the ``random`` provider; ``verify`` optionally proves function
    preservation (``sim`` or ``sat``).
    """

    recipe: str = "resyn2"
    length: int = 10
    seed: int = 0
    verify: str = ""

    def __post_init__(self) -> None:
        if not self.recipe:
            raise SpecError("SynthSpec.recipe must not be empty")
        if self.verify not in ("", "sim", "sat"):
            raise SpecError(
                f"SynthSpec.verify must be ''|sim|sat, got {self.verify!r}"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "SynthSpec":
        return _dataclass_from_dict(SynthSpec, data)


@dataclass(frozen=True)
class DefenseSpec:
    """One defense stage applied between locking and synthesis.

    Two families share this spec: *recipe searches* (``almost``) that
    replace the fixed synthesis recipe, parameterized by
    ``iterations``/``samples``/``epochs`` plus the search-engine knobs —
    ``strategy`` (``sa`` | ``pt`` | ``beam`` | ``random``), ``chains``
    (candidate batch size) and ``jobs`` (process fan-out of candidate
    scoring) — and *structural* point-function defenses (``antisat``,
    ``sarlock``) that graft a SAT-resilient block onto the locked netlist,
    parameterized by ``width`` (comparator width; 0 = every functional
    input).

    ``strategy`` also accepts an array — ``strategy = ["sa", "pt",
    "beam"]`` — declaring a *strategy sweep*: the runner expands the spec
    into one grid row per strategy (same benchmarks, lock, budget and
    seed), so a single ``repro grid``/``repro run`` invocation produces
    the strategy-comparison table.  :meth:`variants` yields the expanded
    single-strategy specs; stage adapters only ever see those.
    """

    name: str = "almost"
    iterations: int = 10
    samples: int = 48
    epochs: int = 15
    seed: int = 0
    width: int = 0
    strategy: Any = "sa"           # one name, or a sweep: ["sa", "pt"]
    chains: int = 1
    jobs: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("DefenseSpec.name must not be empty")
        if self.width < 0:
            raise SpecError(
                f"DefenseSpec.width must be >= 0, got {self.width}"
            )
        strategy = self.strategy
        if isinstance(strategy, str):
            if not strategy:
                raise SpecError("DefenseSpec.strategy must not be empty")
        elif isinstance(strategy, (list, tuple)):
            entries = tuple(strategy)
            if not entries:
                raise SpecError(
                    "DefenseSpec.strategy sweep must name at least one "
                    "strategy"
                )
            for entry in entries:
                if not isinstance(entry, str) or not entry:
                    raise SpecError(
                        "DefenseSpec.strategy sweep entries must be "
                        f"non-empty strings, got {entry!r}"
                    )
            duplicates = sorted(
                {s for s in entries if entries.count(s) > 1}
            )
            if duplicates:
                raise SpecError(
                    f"DefenseSpec.strategy sweep has duplicate(s) "
                    f"{duplicates}"
                )
            # Canonical form: single-entry sweeps collapse to the plain
            # string so spec round-trips and cache fingerprints agree.
            object.__setattr__(
                self,
                "strategy",
                entries[0] if len(entries) == 1 else entries,
            )
        else:
            raise SpecError(
                "DefenseSpec.strategy must be a string or an array of "
                f"strings, got {strategy!r}"
            )
        if self.chains < 1:
            raise SpecError(
                f"DefenseSpec.chains must be >= 1, got {self.chains}"
            )
        if self.jobs < 1:
            raise SpecError(
                f"DefenseSpec.jobs must be >= 1, got {self.jobs}"
            )

    @property
    def strategies(self) -> tuple[str, ...]:
        """The declared strategies, singular or sweep, as a tuple."""
        if isinstance(self.strategy, str):
            return (self.strategy,)
        return tuple(self.strategy)

    @property
    def is_sweep(self) -> bool:
        return len(self.strategies) > 1

    @property
    def single_strategy(self) -> str:
        """The one strategy of an expanded spec; rejects unexpanded sweeps.

        Stage adapters call this: a sweep reaching a stage means the
        runner failed to expand it, which would silently run only one
        strategy of the sweep.
        """
        strategies = self.strategies
        if len(strategies) != 1:
            raise SpecError(
                f"DefenseSpec declares a strategy sweep {list(strategies)}; "
                "expand it with variants() before running the stage"
            )
        return strategies[0]

    def variants(self) -> tuple["DefenseSpec", ...]:
        """One single-strategy DefenseSpec per swept strategy."""
        return tuple(
            dataclasses.replace(self, strategy=strategy)
            for strategy in self.strategies
        )

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        if not isinstance(data["strategy"], str):
            data["strategy"] = list(data["strategy"])
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "DefenseSpec":
        return _dataclass_from_dict(DefenseSpec, data)


@dataclass(frozen=True)
class AttackSpec:
    """One attack cell: a registry name plus free-form parameters.

    ``label`` names the cell in results and tables (default: the attack
    name) — set it when sweeping one attack with different ``params`` so
    the grid cells stay distinguishable.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("AttackSpec.name must not be empty")
        if not isinstance(self.params, Mapping):
            raise SpecError(
                f"AttackSpec.params must be a table/object, "
                f"got {type(self.params).__name__}"
            )
        # Freeze to a plain dict so asdict/json round-trips are stable.
        object.__setattr__(self, "params", dict(self.params))

    @property
    def cell_label(self) -> str:
        return self.label or self.name

    def to_dict(self) -> dict:
        data = {"name": self.name, "params": dict(self.params)}
        if self.label:
            data["label"] = self.label
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "AttackSpec":
        return _dataclass_from_dict(AttackSpec, data)


@dataclass(frozen=True)
class ReportSpec:
    """How the run's results are rendered: registry name plus output path."""

    format: str = "table"
    out: str = ""

    def __post_init__(self) -> None:
        if not self.format:
            raise SpecError("ReportSpec.format must not be empty")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ReportSpec":
        return _dataclass_from_dict(ReportSpec, data)


@dataclass(frozen=True)
class ExperimentSpec:
    """The full declarative experiment: benchmarks × attacks plus plumbing."""

    benchmarks: tuple[BenchmarkSpec, ...]
    attacks: tuple[AttackSpec, ...] = ()
    lock: LockSpec = field(default_factory=LockSpec)
    synth: SynthSpec = field(default_factory=SynthSpec)
    defense: Optional[DefenseSpec] = None
    report: ReportSpec = field(default_factory=ReportSpec)
    name: str = "experiment"

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise SpecError("ExperimentSpec needs at least one benchmark")
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        object.__setattr__(self, "attacks", tuple(self.attacks))
        labels = [b.label for b in self.benchmarks]
        duplicates = sorted({l for l in labels if labels.count(l) > 1})
        if duplicates:
            raise SpecError(
                f"benchmark labels must be unique, got duplicate(s) "
                f"{duplicates} — vary seed/scale for replicas, or give "
                "path-based benchmarks distinct basenames"
            )
        cell_labels = [a.cell_label for a in self.attacks]
        duplicates = sorted(
            {l for l in cell_labels if cell_labels.count(l) > 1}
        )
        if duplicates:
            raise SpecError(
                f"attack labels must be unique, got duplicate(s) "
                f"{duplicates} — set AttackSpec.label to distinguish "
                "param-sweep variants of one attack"
            )

    @property
    def cells(self) -> list[tuple[BenchmarkSpec, Optional[AttackSpec]]]:
        """The grid: every benchmark crossed with every attack.

        With no attacks the grid degenerates to one defense/synth-only cell
        per benchmark (used by ``repro defend``).
        """
        attacks: tuple = self.attacks or (None,)
        return [(b, a) for b in self.benchmarks for a in attacks]

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        data: dict[str, Any] = {
            "name": self.name,
            "benchmarks": [b.to_dict() for b in self.benchmarks],
            "attacks": [a.to_dict() for a in self.attacks],
            "lock": self.lock.to_dict(),
            "synth": self.synth.to_dict(),
            "report": self.report.to_dict(),
        }
        if self.defense is not None:
            data["defense"] = self.defense.to_dict()
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ExperimentSpec":
        if not isinstance(data, Mapping):
            raise SpecError(
                f"experiment spec must be a table/object, "
                f"got {type(data).__name__}"
            )
        known = {
            "name", "benchmarks", "attacks", "lock", "synth",
            "defense", "report",
        }
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                f"unknown ExperimentSpec field(s): {sorted(unknown)}; "
                f"allowed: {sorted(known)}"
            )
        benchmarks = data.get("benchmarks", _MISSING)
        if benchmarks is _MISSING:
            raise SpecError("experiment spec is missing 'benchmarks'")
        if not isinstance(benchmarks, (list, tuple)):
            raise SpecError("'benchmarks' must be an array of tables")
        attacks = data.get("attacks", ())
        if not isinstance(attacks, (list, tuple)):
            raise SpecError("'attacks' must be an array of tables")
        defense = data.get("defense")
        return ExperimentSpec(
            name=_typecheck(
                "ExperimentSpec", "name", data.get("name", "experiment"),
                str, "a string",
            ),
            benchmarks=tuple(
                BenchmarkSpec.from_dict(b) for b in benchmarks
            ),
            attacks=tuple(AttackSpec.from_dict(a) for a in attacks),
            lock=LockSpec.from_dict(data.get("lock", {})),
            synth=SynthSpec.from_dict(data.get("synth", {})),
            defense=(
                DefenseSpec.from_dict(defense) if defense is not None else None
            ),
            report=ReportSpec.from_dict(data.get("report", {})),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON spec: {exc}") from None
        return ExperimentSpec.from_dict(data)

    def to_toml(self) -> str:
        return _toml_dumps(self.to_dict())

    @staticmethod
    def from_toml(text: str) -> "ExperimentSpec":
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"invalid TOML spec: {exc}") from None
        return ExperimentSpec.from_dict(data)

    @staticmethod
    def load(path: Union[str, Path]) -> "ExperimentSpec":
        """Load a spec file; the suffix picks the format (.toml / .json)."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            return ExperimentSpec.from_toml(text)
        if path.suffix.lower() == ".json":
            return ExperimentSpec.from_json(text)
        raise SpecError(
            f"cannot infer spec format from {path.name!r}; "
            "use a .toml or .json suffix"
        )

    def dump(self, path: Union[str, Path]) -> None:
        """Write the spec to ``path`` in the format its suffix names."""
        path = Path(path)
        if path.suffix.lower() == ".toml":
            path.write_text(self.to_toml())
        elif path.suffix.lower() == ".json":
            path.write_text(self.to_json() + "\n")
        else:
            raise SpecError(
                f"cannot infer spec format from {path.name!r}; "
                "use a .toml or .json suffix"
            )


# -- minimal TOML emitter -------------------------------------------------
#
# The stdlib ships a TOML *reader* (tomllib) but no writer; specs only need
# the subset below (scalars, tables, arrays of tables), so a dependency-free
# emitter keeps the no-new-packages constraint.

def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # TOML basic strings are JSON-compatible
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(v) for v in value) + "]"
    raise SpecError(f"cannot emit {type(value).__name__} as TOML scalar")


def _toml_table(data: Mapping[str, Any], prefix: str, lines: list[str]) -> None:
    scalars = {
        k: v for k, v in data.items() if not isinstance(v, (dict, list))
    }
    plain_lists = {
        k: v for k, v in data.items()
        if isinstance(v, list) and not any(isinstance(i, dict) for i in v)
    }
    tables = {k: v for k, v in data.items() if isinstance(v, dict)}
    table_arrays = {
        k: v for k, v in data.items()
        if isinstance(v, list) and any(isinstance(i, dict) for i in v)
    }
    for key, value in {**scalars, **plain_lists}.items():
        lines.append(f"{key} = {_toml_scalar(value)}")
    for key, value in tables.items():
        name = f"{prefix}{key}"
        lines.append("")
        lines.append(f"[{name}]")
        _toml_table(value, f"{name}.", lines)
    for key, items in table_arrays.items():
        name = f"{prefix}{key}"
        for item in items:
            lines.append("")
            lines.append(f"[[{name}]]")
            _toml_table(item, f"{name}.", lines)


def _toml_dumps(data: Mapping[str, Any]) -> str:
    lines: list[str] = []
    _toml_table(data, "", lines)
    return "\n".join(lines).lstrip("\n") + "\n"
