"""Stage-DAG execution: topological order, artifact cache, process pool.

A grid cell (one benchmark × one attack) is a small DAG::

    benchmark --> lock --> [defense] --> synth --> attack

Each stage's fingerprint chains the SHA-256 of its spec with its
dependencies' fingerprints, so any upstream change (different seed, bigger
key, new recipe) transparently invalidates everything downstream while
untouched prefixes keep hitting the :class:`~repro.pipeline.cache.\
ArtifactCache`.  Cells are independent, so :class:`Runner` fans them out
over a ``multiprocessing`` pool — the Table 1/2-style sweeps become
embarrassingly parallel, and because workers share the on-disk cache, the
lock/synth prefix of a benchmark is computed once no matter how many
attacks cross it.
"""

from __future__ import annotations

import dataclasses
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from repro.errors import PipelineError
from repro.obs.logs import get_logger
from repro.obs.trace import get_tracer, set_tracer
from repro.pipeline import stages as _stages  # populate the registry
from repro.pipeline import registry
from repro.pipeline.cache import (
    CACHE_SCHEMA,
    ArtifactCache,
    file_digest,
    fingerprint,
)
from repro.pipeline.spec import AttackSpec, BenchmarkSpec, ExperimentSpec
from repro.pipeline.stages import AttackContext, resolve_recipe

_MISS = object()

_log = get_logger(__name__)


# -- generic DAG machinery ------------------------------------------------

@dataclass
class Stage:
    """One node of the cell DAG.

    ``payload`` is the JSON-able content that, together with the
    dependencies' fingerprints, identifies the work; ``fn`` receives the
    dependency artifacts keyed by stage name.
    """

    name: str
    payload: Any
    deps: tuple[str, ...]
    fn: Callable[[dict[str, Any]], Any]
    cacheable: bool = True


def topological_order(stages: Sequence[Stage]) -> list[Stage]:
    """Kahn's algorithm over the stage graph; rejects cycles/unknown deps."""
    by_name = {stage.name: stage for stage in stages}
    if len(by_name) != len(stages):
        raise PipelineError("duplicate stage names in the pipeline graph")
    for stage in stages:
        for dep in stage.deps:
            if dep not in by_name:
                raise PipelineError(
                    f"stage {stage.name!r} depends on unknown stage {dep!r}"
                )
    pending = {stage.name: set(stage.deps) for stage in stages}
    order: list[Stage] = []
    ready = sorted(name for name, deps in pending.items() if not deps)
    while ready:
        name = ready.pop(0)
        del pending[name]
        order.append(by_name[name])
        newly_ready = sorted(
            other
            for other, deps in pending.items()
            if name in deps and not (deps.discard(name) or deps)
        )
        ready = sorted(set(ready) | set(newly_ready))
    if pending:
        raise PipelineError(
            f"stage graph has a cycle through {sorted(pending)}"
        )
    return order


def execute_stages(
    stage_list: Sequence[Stage],
    cache: Optional[ArtifactCache],
    progress: Optional[Callable[[dict], None]] = None,
) -> tuple[dict[str, Any], list[dict]]:
    """Run a stage DAG; returns (artifacts by stage, execution log).

    ``progress`` (if given) receives each execution-log entry as soon as
    its stage settles — the job daemon streams these to the client.
    """
    artifacts: dict[str, Any] = {}
    fingerprints: dict[str, str] = {}
    log: list[dict] = []
    tracer = get_tracer()
    for stage in topological_order(stage_list):
        chain = [fingerprints[dep] for dep in stage.deps]
        digest = fingerprint(CACHE_SCHEMA, stage.name, stage.payload, chain)
        fingerprints[stage.name] = digest
        started = time.perf_counter()
        with tracer.span(
            "stage", stage=stage.name, fingerprint=digest
        ) as span:
            value = _MISS
            cached = False
            if cache is not None and stage.cacheable:
                value = cache.get(digest, default=_MISS)
                cached = value is not _MISS
            if value is _MISS:
                value = stage.fn(
                    {dep: artifacts[dep] for dep in stage.deps}
                )
                if cache is not None and stage.cacheable:
                    cache.put(digest, value)
            span.set(cached=cached)
        elapsed = round(time.perf_counter() - started, 6)
        _log.debug(
            "stage %s %s (%.3fs, fingerprint %s)",
            stage.name, "cached" if cached else "executed", elapsed,
            digest[:12],
        )
        artifacts[stage.name] = value
        entry = {
            "stage": stage.name,
            "fingerprint": digest,
            "cached": cached,
            "elapsed_s": elapsed,
        }
        log.append(entry)
        if progress is not None:
            progress(entry)
    return artifacts, log


# -- results --------------------------------------------------------------

@dataclass
class CellResult:
    """One grid cell reduced to JSON-able numbers.

    ``strategy`` names the search-strategy variant the cell belongs to
    when the spec declared a :class:`~repro.pipeline.spec.DefenseSpec`
    strategy sweep; empty for ordinary (non-sweep) runs.
    """

    benchmark: str
    attack: str
    key_size: int
    predicted_key: str
    accuracy: Optional[float]
    recipe: str
    elapsed_s: float
    stages: list[dict] = field(default_factory=list)
    details: dict = field(default_factory=dict)
    strategy: str = ""

    @property
    def cached_stages(self) -> int:
        return sum(1 for entry in self.stages if entry["cached"])

    @property
    def executed_stages(self) -> int:
        return sum(1 for entry in self.stages if not entry["cached"])

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "CellResult":
        return CellResult(**dict(data))


@dataclass
class RunResult:
    """A whole grid run: cells plus cache accounting, JSON round-trip.

    ``warmup`` records stage executions performed by the parallel
    prefix-warming pass (shared benchmark→lock→defense→synth work done
    before the attack cells fan out); they belong to no single cell but
    count toward the executed/cached totals.  ``interrupted`` marks a
    partial run (Ctrl-C / SIGTERM landed mid-grid): ``cells`` holds only
    what completed, and re-running the same spec resumes from the cache.
    """

    name: str
    cells: list[CellResult]
    elapsed_s: float
    cache: dict = field(default_factory=dict)
    spec: dict = field(default_factory=dict)
    warmup: list = field(default_factory=list)
    interrupted: bool = False

    @property
    def executed_stages(self) -> int:
        return sum(cell.executed_stages for cell in self.cells) + sum(
            1 for entry in self.warmup if not entry["cached"]
        )

    @property
    def cached_stages(self) -> int:
        return sum(cell.cached_stages for cell in self.cells) + sum(
            1 for entry in self.warmup if entry["cached"]
        )

    def cell(
        self, benchmark: str, attack: str = "", strategy: str = ""
    ) -> CellResult:
        """Look up one grid cell by benchmark label (and attack name).

        ``strategy`` narrows the lookup to one variant of a strategy-sweep
        run; left empty, the first matching cell wins (sweep variants keep
        spec order).
        """
        for candidate in self.cells:
            if (
                candidate.benchmark == benchmark
                and candidate.attack == attack
                and (not strategy or candidate.strategy == strategy)
            ):
                return candidate
        raise PipelineError(
            f"no cell ({benchmark!r}, {attack!r}"
            + (f", {strategy!r}" if strategy else "")
            + ") in this run; have "
            f"{[(c.benchmark, c.attack, c.strategy) for c in self.cells]}"
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "elapsed_s": self.elapsed_s,
            "executed_stages": self.executed_stages,
            "cached_stages": self.cached_stages,
            "cache": self.cache,
            "cells": [cell.to_dict() for cell in self.cells],
            "spec": self.spec,
            "warmup": self.warmup,
            "interrupted": self.interrupted,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "RunResult":
        return RunResult(
            name=data.get("name", ""),
            cells=[CellResult.from_dict(c) for c in data.get("cells", [])],
            elapsed_s=data.get("elapsed_s", 0.0),
            cache=dict(data.get("cache", {})),
            spec=dict(data.get("spec", {})),
            warmup=list(data.get("warmup", [])),
            interrupted=bool(data.get("interrupted", False)),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "RunResult":
        return RunResult.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @staticmethod
    def load(path: Union[str, Path]) -> "RunResult":
        return RunResult.from_json(Path(path).read_text())


def _json_safe(value: Any) -> Any:
    """Reduce a details payload to JSON-able primitives (drop the rest)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        result = {}
        for k, v in value.items():
            safe = _json_safe(v)
            if safe is not None or v is None:
                result[str(k)] = safe
        return result
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if hasattr(value, "item"):
        # numpy scalars (and 1-element arrays): unwrap to the native type.
        try:
            return _json_safe(value.item())
        except (TypeError, ValueError):
            return None
    return None


# -- the runner -----------------------------------------------------------

class Runner:
    """Executes :class:`ExperimentSpec` grids with caching and fan-out.

    ``workdir`` overrides the artifact-cache root (default
    ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``); ``jobs`` > 1 distributes
    grid cells over a process pool; ``use_cache=False`` recomputes
    everything (cold-run benchmarking).  ``progress`` receives each
    stage's execution-log entry (labelled with its benchmark/attack) as
    it settles — the job daemon's workers stream these upward.
    """

    def __init__(
        self,
        workdir: Optional[Union[str, Path]] = None,
        jobs: int = 1,
        use_cache: bool = True,
        cache: Optional[ArtifactCache] = None,
        progress: Optional[Callable[[dict], None]] = None,
    ):
        if jobs < 1:
            raise PipelineError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.use_cache = use_cache
        self.progress = progress
        self.workdir = Path(workdir).expanduser() if workdir else None
        if cache is not None:
            self.cache: Optional[ArtifactCache] = cache
        elif use_cache:
            self.cache = ArtifactCache(self.workdir)
        else:
            self.cache = None

    # -- validation -------------------------------------------------------

    def validate(self, spec: ExperimentSpec) -> None:
        """Fail fast on unknown registry names before any work starts."""
        registry.get("locker", spec.lock.locker)
        for attack in spec.attacks:
            registry.get("attack", attack.name)
        if spec.defense is not None:
            registry.get("defense", spec.defense.name)
            if spec.defense.is_sweep and spec.defense.name not in (
                _stages.SEARCH_DEFENSES
            ):
                # Structural defenses ignore the strategy; expanding a
                # sweep would recompute byte-identical cells per entry.
                raise PipelineError(
                    f"defense {spec.defense.name!r} does not run a recipe "
                    f"search, so a strategy sweep "
                    f"{list(spec.defense.strategies)} would only duplicate "
                    f"identical cells; sweeps apply to "
                    f"{sorted(_stages.SEARCH_DEFENSES)}"
                )
            # A typo'd search strategy must not survive until after the
            # lock + proxy-training stages have already burned minutes —
            # sweeps are checked entry by entry for the same reason.
            from repro.core.search import get_strategy

            for strategy in spec.defense.strategies:
                get_strategy(strategy)
        else:
            resolve_recipe(spec.synth)  # SynthesisError on a bad recipe
        registry.get("reporter", spec.report.format)

    # -- cell graph construction -----------------------------------------

    def _build_cell_stages(
        self,
        spec: ExperimentSpec,
        bench: BenchmarkSpec,
        attack: Optional[AttackSpec],
    ) -> list[Stage]:
        bench_payload = bench.to_dict()
        if bench.path:
            # Tie the fingerprint to the file *content*, not the path.
            bench_payload["sha256"] = file_digest(bench.path)

        def load_benchmark(_deps: dict) -> Any:
            if bench.path:
                from repro.netlist.bench_io import load_bench

                return load_bench(bench.path)
            from repro.circuits import load_iscas85

            return load_iscas85(bench.name, scale=bench.scale, seed=bench.seed)

        def lock(deps: dict) -> Any:
            locker = registry.get("locker", spec.lock.locker)
            return locker(deps["benchmark"], spec.lock)

        stage_list = [
            Stage("benchmark", bench_payload, (), load_benchmark),
            Stage("lock", spec.lock.to_dict(), ("benchmark",), lock),
        ]

        synth_deps: tuple[str, ...] = ("lock",)
        if spec.defense is not None:
            def defend(deps: dict) -> Any:
                defense = registry.get("defense", spec.defense.name)
                return defense(deps["lock"], spec.defense)

            stage_list.append(
                Stage("defense", spec.defense.to_dict(), ("lock",), defend)
            )
            synth_deps = ("lock", "defense")

        def synthesize(deps: dict) -> Any:
            from repro.synth.engine import synthesize_and_map
            from repro.synth.recipe import Recipe

            if spec.defense is not None and "recipe" in deps["defense"]:
                # Recipe-search defense (almost): follow its recipe.
                recipe = Recipe.parse(deps["defense"]["recipe"])
            else:
                # No defense, or a structural defense that replaced the
                # lock artifact instead of choosing a recipe.
                recipe = resolve_recipe(spec.synth)
            locked_netlist = _stages.effective_lock(deps).netlist
            if recipe is None:
                # "none" provider: attack the locked netlist exactly as
                # given; only the mapped view is derived (for structural
                # attacks).
                from repro.aig.build import aig_from_netlist
                from repro.mapping.mapper import map_aig

                return _stages.SynthArtifact(
                    netlist=locked_netlist,
                    mapped=map_aig(aig_from_netlist(locked_netlist)),
                    recipe="",
                )
            netlist, mapped = synthesize_and_map(
                locked_netlist, recipe, verify=spec.synth.verify or None
            )
            return _stages.SynthArtifact(
                netlist=netlist, mapped=mapped, recipe=recipe.short()
            )

        stage_list.append(
            Stage("synth", spec.synth.to_dict(), synth_deps, synthesize)
        )

        if attack is not None:
            attack_deps: tuple[str, ...] = ("lock", "synth")
            if spec.defense is not None:
                # Structural defenses extend the key; the attack must see
                # the defended artifact, not the pre-defense lock.
                attack_deps = ("lock", "defense", "synth")

            def run_attack(deps: dict) -> Any:
                adapter = registry.get("attack", attack.name)
                synth_artifact = deps["synth"]
                from repro.synth.recipe import Recipe

                context = AttackContext(
                    lock=_stages.effective_lock(deps),
                    synth=synth_artifact,
                    recipe=Recipe.parse(synth_artifact.recipe),
                )
                result = adapter(context, attack.params)
                summary = {
                    "attack_name": result.attack_name or attack.name,
                    "predicted_bits": list(result.predicted_bits),
                    "key_size": result.key_size,
                    "confidence": [float(c) for c in result.confidence],
                    "details": _json_safe(result.details) or {},
                }
                summary["accuracy"] = (
                    float(result.accuracy)
                    if result.true_key is not None
                    else None
                )
                return summary

            stage_list.append(
                Stage("attack", attack.to_dict(), attack_deps, run_attack)
            )
        return stage_list

    # -- execution --------------------------------------------------------

    def cell_artifacts(
        self,
        spec: ExperimentSpec,
        bench: Optional[BenchmarkSpec] = None,
        attack: Optional[AttackSpec] = None,
    ) -> dict[str, Any]:
        """Raw stage artifacts for one cell (cache-hot on a warm store).

        This is the escape hatch for callers that need the actual netlists
        or mapped circuits — e.g. ``repro defend --out`` writing the
        defended design, or the re-synthesis sweep seeding its SA search.
        """
        bench = bench if bench is not None else spec.benchmarks[0]
        artifacts, _log = execute_stages(
            self._build_cell_stages(spec, bench, attack), self.cache
        )
        return artifacts

    def run_cell(
        self,
        spec: ExperimentSpec,
        bench: BenchmarkSpec,
        attack: Optional[AttackSpec],
    ) -> CellResult:
        started = time.perf_counter()
        attack_label = attack.cell_label if attack is not None else ""
        progress = None
        if self.progress is not None:
            def progress(entry, _b=bench.label, _a=attack_label):
                self.progress({**entry, "benchmark": _b, "attack": _a})
        with get_tracer().span(
            "cell", benchmark=bench.label, attack=attack_label
        ):
            artifacts, log = execute_stages(
                self._build_cell_stages(spec, bench, attack), self.cache,
                progress=progress,
            )
        lock_artifact = _stages.effective_lock(artifacts)
        synth_artifact = artifacts["synth"]
        details: dict = {}
        if spec.defense is not None:
            # Structural defenses carry a LockArtifact under "lock";
            # _json_safe drops it (and anything else non-serializable).
            details["defense"] = _json_safe(dict(artifacts["defense"])) or {}
        predicted_key = ""
        accuracy = None
        if attack is not None:
            summary = artifacts["attack"]
            predicted_key = "".join(
                str(bit) for bit in summary["predicted_bits"]
            )
            accuracy = summary["accuracy"]
            details["attack"] = summary["details"]
            details["confidence"] = summary["confidence"]
        return CellResult(
            benchmark=bench.label,
            attack=attack.cell_label if attack is not None else "",
            key_size=len(lock_artifact.key_inputs),
            predicted_key=predicted_key,
            accuracy=accuracy,
            recipe=synth_artifact.recipe,
            elapsed_s=round(time.perf_counter() - started, 6),
            stages=log,
            details=details,
        )

    def _expanded(self, spec: ExperimentSpec) -> list[tuple[str, ExperimentSpec]]:
        """(strategy label, single-strategy sub-spec) pairs.

        A :class:`DefenseSpec` strategy sweep becomes one sub-spec per
        strategy (in declared order); everything else passes through as a
        single unlabelled sub-spec, so downstream stages only ever see
        single-strategy specs.
        """
        if spec.defense is None or not spec.defense.is_sweep:
            return [("", spec)]
        return [
            (variant.strategy, dataclasses.replace(spec, defense=variant))
            for variant in spec.defense.variants()
        ]

    @staticmethod
    def _install_sigterm():
        """Map SIGTERM onto :class:`KeyboardInterrupt` for the duration
        of a run, so daemon-style termination rides the same
        partial-result path as Ctrl-C.  Returns the previous handler, or
        ``None`` when signals are off-limits (not the main thread)."""
        if threading.current_thread() is not threading.main_thread():
            return None

        def _terminate(signum, frame):
            raise KeyboardInterrupt

        try:
            return signal.signal(signal.SIGTERM, _terminate)
        except (ValueError, OSError):
            return None

    def run(self, spec: ExperimentSpec) -> RunResult:
        """Execute the whole grid; cells fan out when ``jobs`` > 1.

        A strategy sweep multiplies the grid: every benchmark × attack
        cell runs once per swept strategy, tagged via
        :attr:`CellResult.strategy`.

        Ctrl-C (or SIGTERM) mid-grid does not lose the completed work:
        the pool is torn down, finished cells are kept, and the result
        comes back with ``interrupted=True`` — re-running the same spec
        resumes from the artifact cache.
        """
        self.validate(spec)
        started = time.perf_counter()
        expanded = self._expanded(spec)
        total_cells = sum(len(sub.cells) for _label, sub in expanded)
        _log.info(
            "run %s: %d cell(s), jobs=%d", spec.name or "<unnamed>",
            total_cells, self.jobs,
        )
        warmup: list = []
        interrupted = False
        restore = self._install_sigterm()
        try:
            with get_tracer().span(
                "run", run=spec.name, cells=total_cells, jobs=self.jobs
            ):
                if self.jobs > 1 and total_cells > 1:
                    results, warmup, interrupted = self._run_parallel(
                        expanded
                    )
                else:
                    results = []
                    try:
                        for label, sub in expanded:
                            for bench, attack in sub.cells:
                                cell = self.run_cell(sub, bench, attack)
                                cell.strategy = label
                                results.append(cell)
                    except KeyboardInterrupt:
                        interrupted = True
        finally:
            if restore is not None:
                signal.signal(signal.SIGTERM, restore)
        if interrupted:
            _log.warning(
                "run %s interrupted: %d/%d cell(s) completed",
                spec.name or "<unnamed>", len(results), total_cells,
            )
        return RunResult(
            name=spec.name,
            cells=results,
            elapsed_s=round(time.perf_counter() - started, 6),
            cache=self.cache.stats() if self.cache is not None else {},
            spec=spec.to_dict(),
            warmup=warmup,
            interrupted=interrupted,
        )

    def _run_parallel(
        self,
        expanded: Sequence[tuple[str, ExperimentSpec]],
    ) -> tuple[list[CellResult], list, bool]:
        import multiprocessing

        cache_root = str(self.cache.root) if self.cache is not None else None
        # Same (variant × benchmark × attack) order as the serial path, by
        # index — spec dataclasses carry dict params and are not hashable.
        payloads = []
        prefix_payloads = []
        for label, sub in expanded:
            spec_dict = sub.to_dict()
            attack_indices: Sequence[Optional[int]] = (
                range(len(sub.attacks)) if sub.attacks else [None]
            )
            payloads.extend(
                (spec_dict, bench_i, attack_i, cache_root, self.use_cache,
                 label)
                for bench_i in range(len(sub.benchmarks))
                for attack_i in attack_indices
            )
            if len(sub.attacks) > 1:
                prefix_payloads.extend(
                    (spec_dict, bench_i, cache_root)
                    for bench_i in range(len(sub.benchmarks))
                )
        workers = min(self.jobs, len(payloads))
        warmup: list = []
        interrupted = False
        on_prefix = on_cell = None
        if self.progress is not None:
            def on_prefix(outcome):
                for entry in outcome["log"]:
                    self.progress(
                        {**entry, "benchmark": "", "attack": ""}
                    )

            def on_cell(outcome):
                cell = outcome["cell"]
                for entry in cell["stages"]:
                    self.progress(
                        {
                            **entry,
                            "benchmark": cell["benchmark"],
                            "attack": cell["attack"],
                        }
                    )
        with multiprocessing.Pool(
            processes=workers,
            initializer=_worker_init,
            initargs=(get_tracer().worker_handle(),),
        ) as pool:
            outcomes: list = []
            if self.use_cache and cache_root is not None and prefix_payloads:
                # Warm each variant × benchmark's shared benchmark→lock→
                # defense→synth prefix first (one pool task each) so the
                # attack cells below all hit the cache instead of racing
                # to recompute the same — possibly expensive — prefix.
                prefix_outcomes, interrupted = _collect_async(
                    pool, _prefix_worker, prefix_payloads, on_prefix
                )
                self._absorb_worker_stats(prefix_outcomes)
                warmup = [
                    entry
                    for outcome in prefix_outcomes
                    for entry in outcome["log"]
                ]
            if not interrupted:
                outcomes, interrupted = _collect_async(
                    pool, _cell_worker, payloads, on_cell
                )
        # Workers are gone once the pool context exits; fold their queued
        # spans into the parent's stream.
        get_tracer().drain()
        self._absorb_worker_stats(outcomes)
        return (
            [CellResult.from_dict(o["cell"]) for o in outcomes],
            warmup,
            interrupted,
        )

    def _absorb_worker_stats(self, outcomes: Sequence[Mapping]) -> None:
        """Fold worker-process cache counters into this runner's cache."""
        if self.cache is None:
            return
        for outcome in outcomes:
            for counter in ("hits", "misses", "writes"):
                setattr(
                    self.cache, counter,
                    getattr(self.cache, counter)
                    + outcome["cache"].get(counter, 0),
                )

    def report(self, run: RunResult, spec: ExperimentSpec) -> str:
        """Render ``run`` via the spec's reporter; writes ``report.out``."""
        reporter = registry.get("reporter", spec.report.format)
        text = reporter(run, spec.report)
        if spec.report.out:
            Path(spec.report.out).write_text(text + "\n")
        return text


def _collect_async(
    pool, fn, payloads, on_result=None
) -> tuple[list, bool]:
    """``pool.map``, but a Ctrl-C actually lands.

    A plain ``map()`` parks the parent in a condition-variable wait
    where ``KeyboardInterrupt`` delivery is unreliable; ``apply_async``
    plus a ``ready()`` poll keeps the main thread interruptible.  On
    interrupt the pool is terminated and whatever already finished is
    returned with ``interrupted=True``.  ``on_result`` sees each
    successful outcome once, as soon as it is ready (progress streaming).
    """
    handles = [pool.apply_async(fn, (payload,)) for payload in payloads]
    reported = [False] * len(handles)

    def _scan() -> bool:
        pending = False
        for index, handle in enumerate(handles):
            if not handle.ready():
                pending = True
            elif not reported[index]:
                reported[index] = True
                if on_result is not None and handle.successful():
                    on_result(handle.get())
        return pending

    try:
        while _scan():
            time.sleep(0.05)
    except KeyboardInterrupt:
        pool.terminate()
        done = [
            handle.get()
            for handle in handles
            if handle.ready() and handle.successful()
        ]
        return done, True
    # Re-raise any worker exception with pool.map semantics.
    return [handle.get() for handle in handles], False


def _worker_init(tracer_handle) -> None:
    """Pool initializer: point the worker's telemetry at the parent's queue."""
    if tracer_handle is not None:
        set_tracer(tracer_handle)


def _cell_worker(payload) -> dict:
    """Top-level pool target (must be picklable): run one cell, return dicts."""
    spec_dict, bench_i, attack_i, cache_root, use_cache, strategy = payload
    spec = ExperimentSpec.from_dict(spec_dict)
    runner = Runner(workdir=cache_root, jobs=1, use_cache=use_cache)
    bench = spec.benchmarks[bench_i]
    attack = spec.attacks[attack_i] if attack_i is not None else None
    cell = runner.run_cell(spec, bench, attack)
    cell.strategy = strategy
    stats = runner.cache.stats() if runner.cache is not None else {}
    return {"cell": cell.to_dict(), "cache": stats}


def _prefix_worker(payload) -> dict:
    """Populate one benchmark's shared stage prefix into the cache."""
    spec_dict, bench_i, cache_root = payload
    spec = ExperimentSpec.from_dict(spec_dict)
    runner = Runner(workdir=cache_root, jobs=1)
    _artifacts, log = execute_stages(
        runner._build_cell_stages(spec, spec.benchmarks[bench_i], None),
        runner.cache,
    )
    return {"log": log, "cache": runner.cache.stats()}


def run_experiment(
    spec: ExperimentSpec,
    workdir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
    use_cache: bool = True,
) -> RunResult:
    """One-call front door: build a :class:`Runner` and execute ``spec``."""
    return Runner(workdir=workdir, jobs=jobs, use_cache=use_cache).run(spec)
