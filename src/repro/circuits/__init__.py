"""Benchmark circuits: synthetic ISCAS85 equivalents.

The original ISCAS85 netlist files are not redistributable inside this
offline reproduction, so :mod:`repro.circuits.iscas85` rebuilds each
benchmark as a deterministic synthetic circuit matched to the published
PI/PO/gate counts and functional flavour (see DESIGN.md, substitution 1).
"""

from repro.circuits.builder import CircuitBuilder
from repro.circuits.iscas85 import (
    ISCAS85_PROFILES,
    available_benchmarks,
    load_iscas85,
)

__all__ = [
    "CircuitBuilder",
    "ISCAS85_PROFILES",
    "available_benchmarks",
    "load_iscas85",
]
