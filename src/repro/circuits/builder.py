"""Fluent construction helper for gate-level netlists."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


class CircuitBuilder:
    """Builds a :class:`~repro.netlist.Netlist` with auto-named internal nets.

    Gate helpers return the name of the driven net so expressions compose::

        b = CircuitBuilder("demo")
        a, c = b.input("a"), b.input("c")
        b.output(b.xor(a, b.nand(a, c)), name="y")
        netlist = b.build()
    """

    def __init__(self, name: str):
        self._netlist = Netlist(name=name)
        self._counter = 0

    # -- nets ------------------------------------------------------------

    def _fresh(self, hint: str = "n") -> str:
        self._counter += 1
        return f"{hint}_{self._counter}"

    def input(self, name: str) -> str:
        return self._netlist.add_input(name)

    def inputs(self, prefix: str, count: int) -> list[str]:
        return [self.input(f"{prefix}{i}") for i in range(count)]

    def output(self, net: str, name: str | None = None) -> str:
        if name is not None and name != net:
            net = self.buf(net, out=name)
        self._netlist.add_output(net)
        return net

    def outputs(self, nets: Iterable[str]) -> None:
        for net in nets:
            self.output(net)

    # -- gates -----------------------------------------------------------

    def gate(self, gate_type: GateType, *ins: str, out: str | None = None) -> str:
        out = out or self._fresh(gate_type.value.lower())
        self._netlist.add_gate(out, gate_type, ins)
        return out

    def buf(self, a: str, out: str | None = None) -> str:
        return self.gate(GateType.BUF, a, out=out)

    def not_(self, a: str, out: str | None = None) -> str:
        return self.gate(GateType.NOT, a, out=out)

    def and_(self, *ins: str, out: str | None = None) -> str:
        return self.gate(GateType.AND, *ins, out=out)

    def nand(self, *ins: str, out: str | None = None) -> str:
        return self.gate(GateType.NAND, *ins, out=out)

    def or_(self, *ins: str, out: str | None = None) -> str:
        return self.gate(GateType.OR, *ins, out=out)

    def nor(self, *ins: str, out: str | None = None) -> str:
        return self.gate(GateType.NOR, *ins, out=out)

    def xor(self, *ins: str, out: str | None = None) -> str:
        return self.gate(GateType.XOR, *ins, out=out)

    def xnor(self, *ins: str, out: str | None = None) -> str:
        return self.gate(GateType.XNOR, *ins, out=out)

    def mux(self, sel: str, a: str, b: str, out: str | None = None) -> str:
        """2:1 mux built from primitive gates: ``b`` when ``sel`` else ``a``."""
        nsel = self.not_(sel)
        return self.or_(self.and_(nsel, a), self.and_(sel, b), out=out)

    # -- composite helpers --------------------------------------------------

    def xor_tree(self, nets: Sequence[str], out: str | None = None) -> str:
        """Balanced XOR reduction of two or more nets."""
        nets = list(nets)
        if not nets:
            raise ValueError("xor_tree needs at least one net")
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(self.xor(nets[i], nets[i + 1]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        if out is not None:
            return self.buf(nets[0], out=out)
        return nets[0]

    def and_tree(self, nets: Sequence[str]) -> str:
        nets = list(nets)
        while len(nets) > 1:
            nxt = [self.and_(nets[i], nets[i + 1]) for i in range(0, len(nets) - 1, 2)]
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def or_tree(self, nets: Sequence[str]) -> str:
        nets = list(nets)
        while len(nets) > 1:
            nxt = [self.or_(nets[i], nets[i + 1]) for i in range(0, len(nets) - 1, 2)]
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def full_adder(self, a: str, b: str, cin: str) -> tuple[str, str]:
        """Returns ``(sum, carry)`` built from XOR/AND/OR primitives."""
        axb = self.xor(a, b)
        total = self.xor(axb, cin)
        carry = self.or_(self.and_(a, b), self.and_(axb, cin))
        return total, carry

    def half_adder(self, a: str, b: str) -> tuple[str, str]:
        return self.xor(a, b), self.and_(a, b)

    def ripple_adder(
        self, a: Sequence[str], b: Sequence[str], cin: str | None = None
    ) -> tuple[list[str], str]:
        """Ripple-carry adder; returns ``(sum_bits, carry_out)``."""
        if len(a) != len(b):
            raise ValueError("operand widths differ")
        sums: list[str] = []
        carry = cin
        for bit_a, bit_b in zip(a, b):
            if carry is None:
                s, carry = self.half_adder(bit_a, bit_b)
            else:
                s, carry = self.full_adder(bit_a, bit_b, carry)
            sums.append(s)
        return sums, carry

    def equality(self, a: Sequence[str], b: Sequence[str]) -> str:
        """1 when the two buses are bitwise equal."""
        return self.and_tree([self.xnor(x, y) for x, y in zip(a, b)])

    def less_than(self, a: Sequence[str], b: Sequence[str]) -> str:
        """Unsigned ``a < b``, LSB-first buses."""
        lt = self.and_(self.not_(a[0]), b[0])
        for x, y in zip(a[1:], b[1:]):
            eq = self.xnor(x, y)
            here = self.and_(self.not_(x), y)
            lt = self.or_(here, self.and_(eq, lt))
        return lt

    def build(self, validate: bool = True) -> Netlist:
        if validate:
            self._netlist.validate()
        return self._netlist
