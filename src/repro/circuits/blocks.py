"""Reusable functional blocks for the synthetic ISCAS85 equivalents.

Each block appends gates to a :class:`~repro.circuits.builder.CircuitBuilder`
and returns the nets it drives.  The blocks mirror the functional flavour of
the original benchmarks: Hamming single-error-correction networks for the
XOR-dominated c499/c1355/c1908 family, ALU slices for c880/c3540/c5315, an
array multiplier for c6288, and priority/interrupt logic for c432.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.builder import CircuitBuilder
from repro.utils.rng import make_rng


def parity_groups(num_data: int) -> list[list[int]]:
    """Hamming-code parity groups: bit positions covered by each check bit."""
    num_checks = 1
    while (1 << num_checks) < num_data + num_checks + 1:
        num_checks += 1
    # Positions 1..n in codeword order; data bits fill non-power-of-two slots.
    data_positions = [
        p for p in range(1, num_data + num_checks + 1) if p & (p - 1) != 0
    ][:num_data]
    groups: list[list[int]] = []
    for check in range(num_checks):
        mask = 1 << check
        groups.append([i for i, p in enumerate(data_positions) if p & mask])
    return groups


def hamming_sec(
    builder: CircuitBuilder, data: Sequence[str], received_checks: Sequence[str]
) -> tuple[list[str], list[str]]:
    """Single-error-correcting decode: returns (corrected_data, syndrome).

    Computes check bits from ``data``, XORs against ``received_checks`` to get
    the syndrome, and conditionally flips each data bit whose codeword
    position matches the syndrome — the same XOR-rich structure as the
    ISCAS85 c499/c1355 32-bit SEC circuits.
    """
    groups = parity_groups(len(data))
    if len(received_checks) < len(groups):
        raise ValueError(
            f"need {len(groups)} check inputs, got {len(received_checks)}"
        )
    syndrome = [
        builder.xor_tree([data[i] for i in group] + [received_checks[g]])
        for g, group in enumerate(groups)
    ]
    num_checks = len(groups)
    data_positions = [
        p for p in range(1, len(data) + num_checks + 1) if p & (p - 1) != 0
    ][: len(data)]
    corrected = []
    for bit, position in enumerate(data_positions):
        match_terms = []
        for check in range(num_checks):
            s = syndrome[check]
            match_terms.append(
                s if (position >> check) & 1 else builder.not_(s)
            )
        flip = builder.and_tree(match_terms)
        corrected.append(builder.xor(data[bit], flip))
    return corrected, syndrome


def alu_slice(
    builder: CircuitBuilder,
    a: Sequence[str],
    b: Sequence[str],
    op: Sequence[str],
) -> list[str]:
    """A small ALU: op selects among ADD, AND, OR, XOR via mux tree.

    ``op`` is a 2-bit select bus.  Mirrors the ALU cores of c880/c3540/c5315.
    """
    if len(op) != 2:
        raise ValueError("alu_slice expects a 2-bit op select")
    add_bits, _carry = builder.ripple_adder(a, b)
    outs = []
    for i, (x, y) in enumerate(zip(a, b)):
        and_bit = builder.and_(x, y)
        or_bit = builder.or_(x, y)
        xor_bit = builder.xor(x, y)
        low = builder.mux(op[0], add_bits[i], and_bit)
        high = builder.mux(op[0], or_bit, xor_bit)
        outs.append(builder.mux(op[1], low, high))
    return outs


def array_multiplier(
    builder: CircuitBuilder, a: Sequence[str], b: Sequence[str]
) -> list[str]:
    """Carry-save array multiplier (the c6288 structure), LSB-first product."""
    width_a, width_b = len(a), len(b)
    partial = [
        [builder.and_(a[i], b[j]) for i in range(width_a)] for j in range(width_b)
    ]
    # Row-by-row carry-save accumulation.
    acc = list(partial[0])
    product: list[str] = [acc.pop(0)]
    for row_index in range(1, width_b):
        row = partial[row_index]
        carries: list[str] = []
        next_acc: list[str] = []
        for col in range(width_a):
            addend = acc[col] if col < len(acc) else None
            if addend is None:
                next_acc.append(row[col])
                continue
            if col < len(carries):
                s, c = builder.full_adder(row[col], addend, carries[col])
            else:
                s, c = builder.half_adder(row[col], addend)
            next_acc.append(s)
            carries.append(c)
        # Fold carries into the next-higher column with a ripple pass.
        carry_chain = None
        folded: list[str] = []
        for col in range(width_a):
            nets = [next_acc[col]]
            if col >= 1 and col - 1 < len(carries):
                nets.append(carries[col - 1])
            if carry_chain is not None:
                nets.append(carry_chain)
            if len(nets) == 1:
                folded.append(nets[0])
                carry_chain = None
            elif len(nets) == 2:
                s, carry_chain = builder.half_adder(nets[0], nets[1])
                folded.append(s)
            else:
                s, carry_chain = builder.full_adder(nets[0], nets[1], nets[2])
                folded.append(s)
        tail = [carries[width_a - 1]] if len(carries) >= width_a else []
        if carry_chain is not None:
            tail.append(carry_chain)
        acc = folded + (
            [builder.or_tree(tail)] if len(tail) > 1 else tail
        )
        product.append(acc.pop(0))
    product.extend(acc)
    return product


def priority_encoder(builder: CircuitBuilder, requests: Sequence[str]) -> list[str]:
    """Priority encoder + valid flag: the c432 interrupt-controller flavour."""
    width = max(1, (len(requests) - 1).bit_length())
    higher_clear = None
    grants = []
    for req in requests:
        if higher_clear is None:
            grant = builder.buf(req)
            higher_clear = builder.not_(req)
        else:
            grant = builder.and_(req, higher_clear)
            higher_clear = builder.and_(higher_clear, builder.not_(req))
        grants.append(grant)
    encoded = []
    for bit in range(width):
        terms = [g for i, g in enumerate(grants) if (i >> bit) & 1]
        encoded.append(builder.or_tree(terms) if terms else grants[0])
    valid = builder.or_tree(list(requests))
    return encoded + [valid]


def random_logic_cloud(
    builder: CircuitBuilder,
    sources: Sequence[str],
    num_gates: int,
    num_outputs: int,
    seed: int,
) -> list[str]:
    """Deterministic pseudo-random control-logic DAG.

    Pads benchmark equivalents up to published gate counts with a random but
    reproducible mix of NAND/NOR/AND/OR/XOR/NOT gates, then taps
    ``num_outputs`` of the deepest nets as outputs.  Every generated gate is
    kept live by folding unused nets into the output taps with XOR collectors.
    """
    rng = make_rng(seed)
    nets = list(sources)
    created: list[str] = []
    two_input = {
        "nand": builder.nand,
        "nor": builder.nor,
        "and": builder.and_,
        "or": builder.or_,
        "xor": builder.xor,
        "xnor": builder.xnor,
    }
    kinds = list(two_input) + ["not"]
    weights = [0.28, 0.14, 0.18, 0.14, 0.14, 0.06, 0.06]
    for _ in range(num_gates):
        kind = str(rng.choice(kinds, p=weights))
        if kind == "not":
            src = nets[int(rng.integers(len(nets)))]
            net = builder.not_(src)
        else:
            i = int(rng.integers(len(nets)))
            j = int(rng.integers(len(nets)))
            if i == j:
                j = (j + 1) % len(nets)
            net = two_input[kind](nets[i], nets[j])
        nets.append(net)
        created.append(net)
    if not created:
        return list(sources)[:num_outputs]
    # Collect all created nets into num_outputs XOR taps so none is dangling.
    taps: list[list[str]] = [[] for _ in range(num_outputs)]
    for index, net in enumerate(created):
        taps[index % num_outputs].append(net)
    outputs = []
    for group in taps:
        if not group:
            group = [created[-1]]
        outputs.append(builder.xor_tree(group) if len(group) > 1 else group[0])
    return outputs
