"""Synthetic equivalents of the large ISCAS85 combinational benchmarks.

Each benchmark is rebuilt as a deterministic circuit with the published
primary-input / primary-output counts and a gate count close to the published
one, using functional cores that match the documented flavour of the original
(SEC decoders, ALUs, a 16x16 array multiplier, adder/comparator datapaths)
padded with reproducible pseudo-random control logic.

Two scales are provided:

* ``full``  — published PI/PO counts and gate-count targets; used when
  ``REPRO_SCALE=full``.
* ``quick`` — the same construction with narrowed buses (roughly 1/4 width)
  and smaller padding clouds, for laptop-speed experiments.  Structure and
  gate mix are preserved, which is what the locality-learning attacks see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.circuits.blocks import (
    alu_slice,
    array_multiplier,
    hamming_sec,
    parity_groups,
    priority_encoder,
    random_logic_cloud,
)
from repro.circuits.builder import CircuitBuilder
from repro.errors import ReproError
from repro.netlist.netlist import Netlist
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class Iscas85Profile:
    """Published characteristics of one ISCAS85 benchmark."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    flavour: str


ISCAS85_PROFILES: dict[str, Iscas85Profile] = {
    "c432": Iscas85Profile("c432", 36, 7, 160, "priority/interrupt controller"),
    "c499": Iscas85Profile("c499", 41, 32, 202, "32-bit SEC circuit"),
    "c880": Iscas85Profile("c880", 60, 26, 383, "8-bit ALU"),
    "c1355": Iscas85Profile("c1355", 41, 32, 546, "32-bit SEC circuit"),
    "c1908": Iscas85Profile("c1908", 33, 25, 880, "16-bit SEC/detector"),
    "c2670": Iscas85Profile("c2670", 233, 140, 1193, "12-bit ALU and controller"),
    "c3540": Iscas85Profile("c3540", 50, 22, 1669, "8-bit ALU"),
    "c5315": Iscas85Profile("c5315", 178, 123, 2307, "9-bit ALU"),
    "c6288": Iscas85Profile("c6288", 32, 32, 2406, "16x16 array multiplier"),
    "c7552": Iscas85Profile("c7552", 207, 108, 3512, "32-bit adder/comparator"),
}

# The seven largest, as evaluated in the paper's tables.
PAPER_BENCHMARKS = ["c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552"]


def available_benchmarks() -> list[str]:
    """Names of all supported ISCAS85 benchmarks."""
    return sorted(ISCAS85_PROFILES)


def _scaled(profile: Iscas85Profile, scale: str) -> tuple[int, int, int]:
    """(inputs, outputs, gate-target) after applying the scale."""
    if scale == "full":
        return profile.num_inputs, profile.num_outputs, profile.num_gates
    if scale == "quick":
        return (
            max(8, min(56, profile.num_inputs // 4)),
            max(4, min(24, profile.num_outputs // 4)),
            max(50, profile.num_gates // 12),
        )
    raise ReproError(f"unknown benchmark scale {scale!r}; use 'quick' or 'full'")


def load_iscas85(name: str, scale: str = "quick", seed: int = 0) -> Netlist:
    """Build the synthetic equivalent of ISCAS85 benchmark ``name``.

    The construction is deterministic for a given ``(name, scale, seed)``.
    """
    profile = ISCAS85_PROFILES.get(name)
    if profile is None:
        raise ReproError(
            f"unknown benchmark {name!r}; available: {available_benchmarks()}"
        )
    num_in, num_out, gate_target = _scaled(profile, scale)
    builder = CircuitBuilder(profile.name)
    pis = builder.inputs("pi", num_in)
    core = _FLAVOUR_BUILDERS[profile.flavour](builder, pis, seed)
    _finalize(builder, pis, core, num_out, gate_target, seed=derive_seed(seed, name))
    netlist = builder.build()
    return netlist


# -- flavour cores -----------------------------------------------------------


def _sec_core(builder: CircuitBuilder, pis: list[str], seed: int) -> list[str]:
    """Hamming SEC decode over as many data bits as the PI budget allows."""
    num_checks = 1
    while True:
        data_bits = len(pis) - num_checks
        if (1 << num_checks) >= data_bits + num_checks + 1:
            break
        num_checks += 1
    data = pis[: len(pis) - num_checks]
    checks = pis[len(pis) - num_checks:]
    corrected, syndrome = hamming_sec(builder, data, checks)
    return corrected + syndrome


def _alu_core(builder: CircuitBuilder, pis: list[str], seed: int) -> list[str]:
    """ALU over two operand buses carved from the PIs, plus compare flags."""
    usable = len(pis) - 2
    width = max(2, usable // 2)
    a = pis[:width]
    b = pis[width: 2 * width]
    op = pis[2 * width: 2 * width + 2]
    if len(op) < 2:
        op = (op + pis[:2])[:2]
    outs = alu_slice(builder, a, b, op)
    outs.append(builder.equality(a, b))
    outs.append(builder.less_than(a, b))
    return outs


def _multiplier_core(builder: CircuitBuilder, pis: list[str], seed: int) -> list[str]:
    half = len(pis) // 2
    return array_multiplier(builder, pis[:half], pis[half: 2 * half])


def _priority_core(builder: CircuitBuilder, pis: list[str], seed: int) -> list[str]:
    split = max(4, len(pis) * 2 // 3)
    encoded = priority_encoder(builder, pis[:split])
    mask = pis[split:]
    gated = [
        builder.and_(net, mask[i % len(mask)]) if mask else net
        for i, net in enumerate(encoded)
    ]
    return gated


def _adder_comparator_core(
    builder: CircuitBuilder, pis: list[str], seed: int
) -> list[str]:
    usable = len(pis)
    width = max(2, usable // 3)
    a = pis[:width]
    b = pis[width: 2 * width]
    c = pis[2 * width: 3 * width]
    sums, carry = builder.ripple_adder(a, b)
    outs = list(sums) + [carry]
    outs.append(builder.less_than(sums, c))
    outs.append(builder.equality(b, c))
    parity = builder.xor_tree(c)
    outs.append(parity)
    return outs


_FLAVOUR_BUILDERS: dict[str, Callable[[CircuitBuilder, list[str], int], list[str]]] = {
    "priority/interrupt controller": _priority_core,
    "32-bit SEC circuit": _sec_core,
    "16-bit SEC/detector": _sec_core,
    "8-bit ALU": _alu_core,
    "12-bit ALU and controller": _alu_core,
    "9-bit ALU": _alu_core,
    "16x16 array multiplier": _multiplier_core,
    "32-bit adder/comparator": _adder_comparator_core,
}


def _finalize(
    builder: CircuitBuilder,
    pis: list[str],
    core_outputs: list[str],
    num_outputs: int,
    gate_target: int,
    seed: int,
) -> None:
    """Pad to the gate target and fix the output count.

    Core outputs beyond ``num_outputs`` are XOR-folded into the kept outputs
    (so the core logic stays observable); a pseudo-random cloud brings the
    gate count up to the target.
    """
    current = builder.build(validate=False).num_gates()
    deficit = max(0, gate_target - current - 2 * num_outputs)
    outs = list(core_outputs)
    if deficit > 0:
        cloud_sources = pis + outs[: min(len(outs), 16)]
        cloud_outs = random_logic_cloud(
            builder, cloud_sources, deficit, min(num_outputs, 8), seed
        )
        outs.extend(cloud_outs)
    if len(outs) < num_outputs:
        # Derive extra observable outputs from rotated XOR pairs of PIs.
        i = 0
        while len(outs) < num_outputs:
            outs.append(builder.xor(pis[i % len(pis)], pis[(i + 1) % len(pis)]))
            i += 1
    folded = outs[:num_outputs]
    for index, extra in enumerate(outs[num_outputs:]):
        slot = index % num_outputs
        folded[slot] = builder.xor(folded[slot], extra)
    for index, net in enumerate(folded):
        builder.output(builder.buf(net, out=f"po{index}"))
