"""Persistent job store: an append-only JSONL event log + in-memory index.

Every change to any job — acceptance, each state transition, every
per-stage progress report — is one appended line in
``<state_dir>/events.jsonl``; the in-memory :class:`~repro.service.jobs.\
JobRecord` index is nothing but a fold over that log.  Opening a store
over an existing directory therefore *replays* the log and reconstructs
the exact pre-crash state: no accepted job can be lost by killing the
daemon, because acceptance is durable (flushed + fsynced) before the
HTTP API acknowledges it.

After a replay, :meth:`JobStore.recover` demotes jobs the dead daemon
left ``RUNNING`` back to ``QUEUED`` (appending the compensating event,
so the log stays the single source of truth) — the supervisor re-
dispatches them and the :class:`~repro.pipeline.cache.ArtifactCache`
resumes each from its completed stage fingerprints.

A torn final line (daemon killed mid-append) is tolerated on replay,
mirroring :func:`repro.reporting.trace.load_trace`.  The store is
thread-safe: the HTTP API's request threads and the supervisor's pump
loop mutate it under one lock.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Callable, Optional, Union

from repro.errors import JobStateError, ServiceError
from repro.obs import metrics as _metrics
from repro.obs.logs import get_logger
from repro.service.jobs import (
    DONE,
    QUEUED,
    RUNNING,
    STATES,
    JobRecord,
    JobSpec,
)

#: Bumped when the event-log record shape changes.
STORE_SCHEMA = 1

_log = get_logger(__name__)


def _new_job_id() -> str:
    return uuid.uuid4().hex[:12]


class JobStore:
    """Append-only event log + replayable index of :class:`JobRecord`.

    ``state_dir`` is created if missing; an existing ``events.jsonl``
    inside it is replayed on open.  ``fsync=True`` (the daemon default)
    makes acceptance and state transitions durable against power loss,
    not just process death; progress events are flushed but never
    fsynced — losing a stage entry costs one table row, not a job.
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        fsync: bool = True,
        clock: Callable[[], float] = time.time,
    ):
        self.state_dir = Path(state_dir).expanduser()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.log_path = self.state_dir / "events.jsonl"
        self.fsync = fsync
        self._clock = clock
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        self._seq = 0
        self._sink = None
        self.replayed = self._replay() if self.log_path.exists() else 0

    # -- the log ----------------------------------------------------------

    def _append(self, event: dict, durable: bool = True) -> dict:
        """Write one event line; the caller holds the lock."""
        self._seq += 1
        event = {"seq": self._seq, "t": round(self._clock(), 6), **event}
        if self._sink is None:
            fresh = not self.log_path.exists()
            self._sink = open(self.log_path, "a")
            if fresh:
                self._sink.write(
                    json.dumps({"kind": "header", "schema": STORE_SCHEMA})
                    + "\n"
                )
        self._sink.write(json.dumps(event) + "\n")
        self._sink.flush()
        if durable and self.fsync:
            os.fsync(self._sink.fileno())
        return event

    def _replay(self) -> int:
        """Fold the existing log back into the index; returns event count."""
        applied = 0
        good = 0  # byte offset past the last parseable line
        # The lock is uncontended at construction time, but taking it makes
        # the guard explicit: _apply mutates the same index the public
        # mutators protect with it.
        with self._lock, open(self.log_path, "rb") as handle:
            for raw in handle:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    good += len(raw)
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail from a mid-append crash: stop folding —
                    # everything before it was already durable.
                    _log.warning(
                        "job log %s has a torn tail; dropping it",
                        self.log_path,
                    )
                    break
                good += len(raw)
                if event.get("kind") == "header":
                    continue
                self._apply(event)
                self._seq = max(self._seq, int(event.get("seq", 0)))
                applied += 1
        if good < self.log_path.stat().st_size:
            # Truncate the torn garbage so the next append starts on a
            # clean line instead of gluing itself onto the fragment.
            with open(self.log_path, "r+b") as handle:
                handle.truncate(good)
        _log.info(
            "replayed %d event(s) -> %d job(s) from %s",
            applied, len(self._jobs), self.log_path,
        )
        return applied

    def _apply(self, event: dict) -> None:
        """Apply one replayed event to the index (no validation: each
        event was validated before it was ever appended)."""
        kind = event.get("event")
        t = float(event.get("t", 0.0))
        if kind == "job.submitted":
            record = JobRecord(
                id=event["id"],
                spec=event["spec"],
                name=event.get("name", ""),
                options=event.get("options", {}),
                created_t=t,
                updated_t=t,
            )
            record.events.append(event)
            self._jobs[event["id"]] = record
            return
        record = self._jobs.get(event.get("id", ""))
        if record is None:
            return  # event for a job whose submission line was lost
        record.events.append(event)
        if kind == "job.state":
            record.state = event["state"]
            record.attempts = int(event.get("attempts", record.attempts))
            record.worker = event.get("worker", record.worker)
            record.worker_pid = int(
                event.get("worker_pid", record.worker_pid)
            )
            record.error = event.get("error", record.error)
            record.updated_t = t
            if event.get("result") is not None:
                record.result = event["result"]
        elif kind == "job.progress":
            record.progress.append(event.get("entry", {}))

    # -- mutations --------------------------------------------------------

    def submit(self, job: JobSpec) -> JobRecord:
        """Accept a job: durable log line first, then the index entry."""
        with self._lock:
            job_id = _new_job_id()
            while job_id in self._jobs:  # vanishing collision odds, free
                job_id = _new_job_id()
            event = self._append(
                {
                    "event": "job.submitted",
                    "id": job_id,
                    "name": job.name,
                    "spec": job.experiment.to_dict(),
                    "options": dict(job.options),
                }
            )
            record = JobRecord(
                id=job_id,
                spec=event["spec"],
                name=job.name,
                options=dict(job.options),
                created_t=event["t"],
                updated_t=event["t"],
            )
            record.events.append(event)
            self._jobs[job_id] = record
            _metrics.inc("service.jobs_submitted")
            _log.info("job %s accepted (%s)", job_id, job.name or "unnamed")
            return record

    def transition(
        self,
        job_id: str,
        new_state: str,
        *,
        worker: str = "",
        worker_pid: int = 0,
        error: str = "",
        reason: str = "",
        result: Optional[dict] = None,
    ) -> JobRecord:
        """One validated state-machine edge, logged then applied."""
        with self._lock:
            record = self.get(job_id)
            # Validate against the in-memory record BEFORE logging, so an
            # illegal edge can never reach the log (replay never checks).
            now = self._clock()
            record.transition(
                new_state,
                worker=worker,
                worker_pid=worker_pid,
                error=error,
                t=now,
                result=result,
            )
            event = {
                "event": "job.state",
                "id": job_id,
                "state": new_state,
                "attempts": record.attempts,
                "worker": record.worker,
                "worker_pid": record.worker_pid,
            }
            if error:
                event["error"] = error
            if reason:
                event["reason"] = reason
            if result is not None:
                event["result"] = result
            record.events.append(self._append(event))
            _log.info(
                "job %s -> %s%s", job_id, new_state,
                f" ({reason})" if reason else "",
            )
            return record

    def progress(self, job_id: str, entry: dict) -> None:
        """Record one per-stage progress entry (dropped once terminal —
        a killed worker's straggler events must not mutate a settled
        job)."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None or record.terminal:
                return
            event = self._append(
                {"event": "job.progress", "id": job_id, "entry": entry},
                durable=False,
            )
            record.events.append(event)
            record.progress.append(entry)

    def recover(self) -> list[str]:
        """Demote every ``RUNNING`` job to ``QUEUED`` (daemon restart).

        Returns the requeued job ids.  Call once after constructing a
        store over a pre-existing state dir, before dispatching.
        """
        with self._lock:
            requeued = []
            for record in self._jobs.values():
                if record.state == RUNNING:
                    self.transition(
                        record.id, QUEUED, reason="daemon-restart"
                    )
                    requeued.append(record.id)
            if requeued:
                _metrics.inc("service.jobs_requeued", len(requeued))
            return requeued

    # -- queries ----------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise JobStateError(f"unknown job {job_id!r}")
            return record

    def list(self) -> list[JobRecord]:
        """Every record, in acceptance order."""
        with self._lock:
            return list(self._jobs.values())

    def queued(self) -> list[JobRecord]:
        """Dispatch candidates, FIFO by acceptance order."""
        with self._lock:
            return [r for r in self._jobs.values() if r.state == QUEUED]

    def counts(self) -> dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in STATES}
            for record in self._jobs.values():
                counts[record.state] += 1
            return counts

    def result(self, job_id: str) -> dict:
        record = self.get(job_id)
        if record.state != DONE or record.result is None:
            raise ServiceError(
                f"job {job_id} has no result (state: {record.state})"
            )
        return record.result

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.flush()
                self._sink.close()
                self._sink = None

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
