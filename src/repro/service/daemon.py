"""Daemon wiring: store + supervisor + HTTP server, one lifecycle.

:class:`Service` composes the pieces (``repro serve`` and the tests both
build one); :func:`serve` adds the foreground-process ceremony — signal
handlers, the blocking wait, ordered teardown.

Shutdown ordering matters and is fixed here::

    server.shutdown()      # stop accepting/answering requests
    supervisor.stop()      # SIGTERM busy workers, requeue their jobs
    store.close()          # final flush of the event log

SIGTERM and SIGINT both set a :class:`threading.Event` the main thread
blocks on — handlers never call :meth:`~http.server.HTTPServer.shutdown`
directly (calling it from the ``serve_forever`` thread's own signal
context deadlocks).  The event log ends with every interrupted job
demoted back to ``QUEUED``, so ``repro serve`` over the same state dir
resumes exactly where the last daemon stopped.
"""

from __future__ import annotations

import signal
import threading
from pathlib import Path
from typing import Optional, Union

from repro.obs.logs import get_logger
from repro.service.api import ServiceFacade, create_server
from repro.service.client import DEFAULT_PORT
from repro.service.store import JobStore
from repro.service.supervisor import Supervisor

_log = get_logger(__name__)


def default_state_dir() -> Path:
    """Where the daemon keeps its event log unless told otherwise."""
    import os

    env = os.environ.get("REPRO_STATE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".local" / "state" / "repro"


class Service:
    """One daemon instance: job store, worker pool, HTTP server.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports the
    actual one after :meth:`start`.
    """

    def __init__(
        self,
        state_dir: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = 2,
        cache_root=None,
        use_cache: bool = True,
        watchdog_s: float = 60.0,
        max_attempts: int = 3,
    ):
        self.state_dir = Path(state_dir or default_state_dir())
        self.store = JobStore(self.state_dir)
        self.supervisor = Supervisor(
            self.store,
            workers=workers,
            cache_root=cache_root,
            use_cache=use_cache,
            watchdog_s=watchdog_s,
            max_attempts=max_attempts,
        )
        self.facade = ServiceFacade(self.store, self.supervisor)
        self.server = create_server(self.facade, host=host, port=port)
        self.host, self.port = self.server.server_address[:2]
        self._http_thread: Optional[threading.Thread] = None
        self._started = False

    def start(self) -> "Service":
        """Bring everything up (idempotent); returns self."""
        if self._started:
            return self
        self._started = True
        self.supervisor.start()
        self._http_thread = threading.Thread(
            target=self.server.serve_forever,
            name="repro-http",
            daemon=True,
        )
        self._http_thread.start()
        _log.info(
            "serving on http://%s:%d (state: %s)",
            self.host, self.port, self.state_dir,
        )
        return self

    def stop(self) -> None:
        """Ordered teardown; safe to call more than once."""
        if not self._started:
            return
        self._started = False
        self.server.shutdown()
        self.server.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
        self.supervisor.stop()
        self.store.close()
        _log.info("service stopped")

    def __enter__(self) -> "Service":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(service: Service) -> int:
    """Run ``service`` in the foreground until SIGTERM/SIGINT.

    Returns the process exit code (0 on a clean signal-driven stop).
    """
    stop = threading.Event()

    def _request_stop(signum, frame):
        _log.info("received signal %d; shutting down", signum)
        stop.set()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _request_stop),
        signal.SIGINT: signal.signal(signal.SIGINT, _request_stop),
    }
    try:
        with service:
            print(
                f"repro daemon on http://{service.host}:{service.port} "
                f"({service.supervisor.num_workers} worker(s), state: "
                f"{service.state_dir})",
                flush=True,
            )
            stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0
