"""The typed job model: what the daemon accepts, tracks and replays.

A *job* is one :class:`~repro.pipeline.spec.ExperimentSpec` — a defend
run, a single attack cell, or a whole benchmark × attack grid — wrapped
with service-level metadata (:class:`JobSpec`) and tracked through a
validated state machine (:class:`JobRecord`)::

    QUEUED ──▶ RUNNING ──▶ DONE
       │          │  ├────▶ FAILED
       │          │  └────▶ CANCELLED
       │          └────▶ QUEUED        (requeue: worker died / shutdown)
       └────────────────▶ CANCELLED

``DONE`` / ``FAILED`` / ``CANCELLED`` are terminal.  Every transition
goes through :func:`check_transition`, which raises
:class:`~repro.errors.JobStateError` on anything not in the diagram —
the supervisor, the HTTP API and event-log replay all share the same
rules, so an illegal edge can never be recorded, served, or replayed.

The requeue edge (``RUNNING → QUEUED``) is what makes worker crashes
survivable: a re-dispatched job re-runs its spec through the
:class:`~repro.pipeline.runner.Runner`, whose stage fingerprints hit the
content-hashed :class:`~repro.pipeline.cache.ArtifactCache` for every
stage the dead worker already completed — a crash mid-grid re-executes
at most the one interrupted cell.

    >>> check_transition(QUEUED, RUNNING)
    >>> check_transition(DONE, RUNNING)  # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.errors.JobStateError: invalid job transition done -> running; ...
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.errors import JobStateError, SpecError
from repro.pipeline.spec import ExperimentSpec

#: The five job states (stored lowercase in the event log and the API).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES: tuple[str, ...] = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: Every legal edge of the job state machine.
TRANSITIONS: dict[str, frozenset[str]] = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({DONE, FAILED, CANCELLED, QUEUED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}

TERMINAL: frozenset[str] = frozenset({DONE, FAILED, CANCELLED})


def check_transition(current: str, new: str) -> None:
    """Raise :class:`JobStateError` unless ``current -> new`` is legal."""
    allowed = TRANSITIONS.get(current)
    if allowed is None:
        raise JobStateError(
            f"unknown job state {current!r}; states: {list(STATES)}"
        )
    if new not in STATES:
        raise JobStateError(
            f"unknown job state {new!r}; states: {list(STATES)}"
        )
    if new not in allowed:
        raise JobStateError(
            f"invalid job transition {current} -> {new}; valid from "
            f"{current}: {', '.join(sorted(allowed)) or 'none (terminal)'}"
        )


#: Service-level knobs a submission may carry alongside its spec.
#: ``jobs`` fans the grid's cells out inside the worker process;
#: ``stage_delay_s`` injects a sleep after every completed stage — a
#: chaos/testing knob that widens the window for supervision tests
#: (worker-kill injection) and has no place in production submissions.
_KNOWN_OPTIONS = {"jobs": int, "stage_delay_s": (int, float)}


def validate_options(options: Mapping[str, Any]) -> dict:
    """Check a submission's option table; returns it as a plain dict."""
    if not isinstance(options, Mapping):
        raise SpecError(
            f"job options must be a table/object, got "
            f"{type(options).__name__}"
        )
    unknown = set(options) - set(_KNOWN_OPTIONS)
    if unknown:
        raise SpecError(
            f"unknown job option(s): {sorted(unknown)}; "
            f"allowed: {sorted(_KNOWN_OPTIONS)}"
        )
    for name, types in _KNOWN_OPTIONS.items():
        if name not in options:
            continue
        value = options[name]
        if isinstance(value, bool) or not isinstance(value, types):
            raise SpecError(
                f"job option {name!r} must be numeric, got {value!r}"
            )
        if value < 0 or (name == "jobs" and value < 1):
            raise SpecError(
                f"job option {name!r} out of range: {value!r}"
            )
    return dict(options)


@dataclass(frozen=True)
class JobSpec:
    """One submission: a typed experiment spec plus service options.

    Constructing one validates both halves — the experiment through
    :meth:`ExperimentSpec.from_dict` (so a malformed spec is rejected at
    the API boundary, before it is ever accepted into the event log) and
    the options through :func:`validate_options`.
    """

    experiment: ExperimentSpec
    name: str = ""
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.experiment, ExperimentSpec):
            raise SpecError(
                "JobSpec.experiment must be an ExperimentSpec, got "
                f"{type(self.experiment).__name__}"
            )
        object.__setattr__(self, "options", validate_options(self.options))
        if not self.name:
            object.__setattr__(self, "name", self.experiment.name)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "spec": self.experiment.to_dict(),
            "options": dict(self.options),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "JobSpec":
        if not isinstance(data, Mapping):
            raise SpecError(
                f"job submission must be a table/object, got "
                f"{type(data).__name__}"
            )
        unknown = set(data) - {"name", "spec", "options"}
        if unknown:
            raise SpecError(
                f"unknown job field(s): {sorted(unknown)}; "
                "allowed: ['name', 'options', 'spec']"
            )
        if "spec" not in data:
            raise SpecError("job submission is missing 'spec'")
        name = data.get("name", "")
        if not isinstance(name, str):
            raise SpecError(f"job name must be a string, got {name!r}")
        return JobSpec(
            experiment=ExperimentSpec.from_dict(data["spec"]),
            name=name,
            options=data.get("options", {}),
        )


@dataclass
class JobRecord:
    """One accepted job's full tracked state (the store's index entry).

    ``worker``/``worker_pid`` name the worker currently (or last) running
    the job; ``attempts`` counts ``QUEUED → RUNNING`` dispatches, so a
    crash-requeued job shows ``attempts == 2`` once it completes.
    ``progress`` accumulates the per-stage entries streamed by the worker
    (stage name, fingerprint, cached flag, elapsed) and ``events`` every
    event the store recorded for the job, in log order.
    """

    id: str
    spec: dict
    name: str = ""
    options: dict = field(default_factory=dict)
    state: str = QUEUED
    attempts: int = 0
    worker: str = ""
    worker_pid: int = 0
    error: str = ""
    created_t: float = 0.0
    updated_t: float = 0.0
    result: Optional[dict] = None
    progress: list = field(default_factory=list)
    events: list = field(default_factory=list)

    def transition(
        self,
        new_state: str,
        *,
        worker: str = "",
        worker_pid: int = 0,
        error: str = "",
        t: float = 0.0,
        result: Optional[dict] = None,
    ) -> None:
        """Apply one validated edge; mutates the record in place."""
        check_transition(self.state, new_state)
        if result is not None and new_state != DONE:
            raise JobStateError(
                f"a result may only accompany the {DONE} state, "
                f"not {new_state}"
            )
        self.state = new_state
        self.updated_t = t
        if new_state == RUNNING:
            self.attempts += 1
            self.worker = worker
            self.worker_pid = worker_pid
            self.error = ""
        if error:
            self.error = error
        if result is not None:
            self.result = result

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    def summary(self) -> dict:
        """The table/API row: everything except the bulky payloads."""
        return {
            "id": self.id,
            "name": self.name,
            "state": self.state,
            "attempts": self.attempts,
            "worker": self.worker,
            "worker_pid": self.worker_pid,
            "error": self.error,
            "created_t": self.created_t,
            "updated_t": self.updated_t,
            "stages": len(self.progress),
            "cells": (
                len(self.result.get("cells", [])) if self.result else 0
            ),
        }

    def to_dict(self) -> dict:
        """Full JSON view (what ``GET /jobs/{id}`` serves)."""
        data = dataclasses.asdict(self)
        data.pop("events")  # served separately by /jobs/{id}/events
        return data
