"""The daemon's HTTP/JSON surface, on nothing but ``http.server``.

Routes (all JSON in, JSON out)::

    POST   /jobs             {"spec": {...}, "name"?, "options"?} -> 201 job
    GET    /jobs             every job's summary row
    GET    /jobs/{id}        one job in full (result included once DONE)
    GET    /jobs/{id}/events the job's event-log slice, in log order
    DELETE /jobs/{id}        cancel (409 once terminal)
    GET    /healthz          supervisor + worker liveness
    GET    /metrics          the obs registry snapshot (pool-aggregated)

Error contract: a failed request returns ``{"error": "<message>"}`` with
400 for malformed submissions (:class:`~repro.errors.SpecError` — the
job was never accepted), 404 for unknown ids, and 409 for illegal
state transitions (cancelling a finished job).  The server is a
:class:`~http.server.ThreadingHTTPServer`, so a long poll can never
starve a submission; all shared state sits behind the store's lock.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import JobStateError, ServiceError, SpecError
from repro.obs import metrics as _metrics
from repro.obs.logs import get_logger
from repro.service import jobs as _jobs
from repro.service.jobs import JobSpec

#: Bumped when a route's response shape changes.
API_SCHEMA = 1

_log = get_logger(__name__)

#: Submission payloads above this are rejected, not buffered (64 MiB —
#: generous for a grid spec, hostile to a mistake).
_MAX_BODY = 64 * 1024 * 1024


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the service facade in :attr:`service`."""

    service = None  # installed by create_server()
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _log.debug("%s %s", self.address_string(), format % args)

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise SpecError("request body required (JSON)")
        if length > _MAX_BODY:
            raise SpecError(f"request body too large ({length} bytes)")
        try:
            return json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON body: {exc}") from None

    def _route(self, method: str) -> None:
        _metrics.inc("service.http_requests")
        path = self.path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]
        try:
            if method == "GET" and path == "/healthz":
                self._send(200, self.service.health())
            elif method == "GET" and path == "/metrics":
                self._send(
                    200,
                    {"schema": API_SCHEMA, "metrics": self.service.metrics()},
                )
            elif method == "GET" and path == "/jobs":
                self._send(200, {"jobs": self.service.job_summaries()})
            elif method == "POST" and path == "/jobs":
                job = JobSpec.from_dict(self._read_json())
                record = self.service.submit(job)
                self._send(201, {"job": record.summary()})
            elif len(parts) == 2 and parts[0] == "jobs":
                if method == "GET":
                    self._send(
                        200, {"job": self.service.job(parts[1]).to_dict()}
                    )
                elif method == "DELETE":
                    record = self.service.cancel(parts[1])
                    self._send(200, {"job": record.summary()})
                else:
                    self._error(405, f"method {method} not allowed")
            elif (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "events"
            ):
                record = self.service.job(parts[1])
                self._send(
                    200, {"id": record.id, "events": list(record.events)}
                )
            else:
                self._error(404, f"no route for {method} {path}")
        except SpecError as exc:
            self._error(400, str(exc))
        except JobStateError as exc:
            status = 404 if "unknown job" in str(exc) else 409
            self._error(status, str(exc))
        except ServiceError as exc:
            self._error(400, str(exc))
        except Exception as exc:  # noqa: BLE001 — a handler bug must
            # answer 500, not silently drop the connection.
            _log.exception("unhandled API error on %s %s", method, path)
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_GET(self) -> None:  # noqa: N802
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")


def create_server(service, host: str = "127.0.0.1", port: int = 8737):
    """A ready-to-``serve_forever`` HTTP server bound to ``service``.

    Pass ``port=0`` for an ephemeral port (tests); read the actual one
    back from ``server.server_address``.
    """
    handler = type(
        "BoundServiceHandler", (ServiceHandler,), {"service": service}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


class ServiceFacade:
    """What the handler calls: store + supervisor behind one seam.

    Kept separate from the daemon wiring so tests can drive the API
    against a real supervisor without sockets-and-signals ceremony.
    """

    def __init__(self, store, supervisor):
        self.store = store
        self.supervisor = supervisor

    def submit(self, job: JobSpec):
        return self.store.submit(job)

    def cancel(self, job_id: str):
        record = self.store.get(job_id)
        # Validation (e.g. cancelling a DONE job -> 409) happens in the
        # transition; the supervisor's next tick kills the worker of a
        # cancelled RUNNING job.
        self.store.transition(
            record.id, _jobs.CANCELLED, reason="api-cancel"
        )
        _metrics.inc("service.jobs_cancelled")
        return record

    def job(self, job_id: str):
        return self.store.get(job_id)

    def job_summaries(self) -> list[dict]:
        return [record.summary() for record in self.store.list()]

    def health(self) -> dict:
        return self.supervisor.health()

    def metrics(self) -> dict:
        return _metrics.get_registry().snapshot()
