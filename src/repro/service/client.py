"""A thin stdlib client for the ``repro serve`` HTTP API.

:class:`ServiceClient` is what ``repro submit`` / ``repro jobs`` /
``repro cancel`` use, and what scripts should use too
(``examples/submit_job.py``).  It speaks plain :mod:`urllib`, maps the
API's ``{"error": ...}`` payloads onto :class:`~repro.errors.\
ServiceError`, and adds one convenience the raw API doesn't have:
:meth:`wait`, a poll loop that returns the job once it reaches a
terminal state.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping, Optional

from repro.errors import ServiceError
from repro.service.jobs import TERMINAL, JobSpec

DEFAULT_PORT = 8737


class ServiceClient:
    """Talks to one daemon at ``http://{host}:{port}``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout_s: float = 30.0,
    ):
        self.base_url = f"http://{host}:{port}"
        self.timeout_s = timeout_s

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> dict:
        request = urllib.request.Request(
            self.base_url + path,
            method=method,
            data=(
                json.dumps(payload).encode()
                if payload is not None
                else None
            ),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except (json.JSONDecodeError, OSError):
                message = str(exc)
            raise ServiceError(
                f"{method} {path} -> {exc.code}: {message}"
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach job daemon at {self.base_url}: {exc.reason}"
            ) from None

    # -- the API, one method per route ------------------------------------

    def submit(
        self,
        spec: Mapping[str, Any],
        name: str = "",
        options: Optional[Mapping[str, Any]] = None,
    ) -> dict:
        """POST a job; returns its summary row (``id``, ``state``, ...).

        ``spec`` is an experiment-spec dict (``ExperimentSpec.to_dict()``
        shape, i.e. what a spec TOML parses to).
        """
        payload = {"spec": dict(spec)}
        if name:
            payload["name"] = name
        if options:
            payload["options"] = dict(options)
        return self._request("POST", "/jobs", payload)["job"]

    def submit_spec(self, job: JobSpec) -> dict:
        """POST an already-validated :class:`JobSpec`."""
        return self._request("POST", "/jobs", job.to_dict())["job"]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def events(self, job_id: str) -> list[dict]:
        return self._request("GET", f"/jobs/{job_id}/events")["events"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")["job"]

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")["metrics"]

    # -- conveniences ------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout_s: float = 600.0,
        poll_s: float = 0.5,
    ) -> dict:
        """Poll until the job settles; returns the full job dict.

        Raises :class:`ServiceError` on timeout — the job keeps running
        server-side; waiting is a client-side convenience only.
        """
        deadline = time.time() + timeout_s
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL:
                return job
            if time.time() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout_s:.0f}s waiting for job "
                    f"{job_id} (state: {job['state']})"
                )
            time.sleep(poll_s)
