"""Worker-pool supervision: dispatch, heartbeat watchdog, crash requeue.

The :class:`Supervisor` owns a fixed-size pool of worker *processes*
(:func:`repro.service.worker.worker_main`) and a single control loop
(one daemon thread) that every tick:

1. **pumps** worker events from the shared manager queue into the
   :class:`~repro.service.store.JobStore` (progress entries, results,
   errors, heartbeats),
2. **reaps** dead workers — a worker that exited (or was SIGKILLed)
   while running a job gets its job requeued (``RUNNING → QUEUED``, up
   to ``max_attempts`` dispatches, then ``FAILED``) and a fresh process
   spawned in its place,
3. **watchdogs** busy workers whose heartbeats stopped (a wedged or
   SIGSTOPped process) by killing them, which turns them into case 2,
4. **enforces cancellations** — a job marked ``CANCELLED`` while running
   gets its worker killed and replaced (the only way to stop an
   arbitrary in-flight computation), and
5. **dispatches** queued jobs to idle workers, FIFO by acceptance.

Requeue is safe because execution is idempotent-by-cache: a re-
dispatched job re-runs its spec through the stage DAG, and every stage
the dead worker completed is a content-hash hit in the shared
:class:`~repro.pipeline.cache.ArtifactCache` — the retry pays only for
the stage that was actually interrupted.

Queues are manager-backed (like the obs bridge and
:class:`~repro.synth.cache.SharedSynthCache`) rather than pipe-backed:
a SIGKILLed client cannot corrupt a manager queue for the survivors,
which is precisely the failure mode a supervisor exists to absorb.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import JobStateError
from repro.obs import metrics as _metrics
from repro.obs.logs import get_logger
from repro.obs.trace import get_tracer
from repro.service import jobs as _jobs
from repro.service.store import JobStore
from repro.service.worker import worker_main

_log = get_logger(__name__)


@dataclass
class WorkerHandle:
    """One pool slot: the live process plus its dispatch bookkeeping."""

    id: str
    process: multiprocessing.Process
    task_q: object
    busy_job: str = ""
    last_beat: float = field(default_factory=time.time)
    generation: int = 0

    @property
    def pid(self) -> int:
        return self.process.pid or 0

    def describe(self, now: float) -> dict:
        return {
            "id": self.id,
            "pid": self.pid,
            "alive": self.process.is_alive(),
            "busy": self.busy_job,
            "generation": self.generation,
            "beat_age_s": round(now - self.last_beat, 3),
        }


class Supervisor:
    """Supervised fan-out of store-backed jobs over worker processes.

    ``workers`` sizes the pool; ``watchdog_s`` is the no-heartbeat
    tolerance before a busy worker is presumed wedged and killed;
    ``max_attempts`` caps dispatches per job before a crash loop turns
    into ``FAILED``.  ``cache_root`` is the shared artifact-cache root
    every worker resumes from.
    """

    def __init__(
        self,
        store: JobStore,
        workers: int = 2,
        cache_root=None,
        use_cache: bool = True,
        poll_s: float = 0.1,
        watchdog_s: float = 60.0,
        max_attempts: int = 3,
        heartbeat_s: float = 0.5,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.cache_root = str(cache_root) if cache_root else None
        self.use_cache = use_cache
        self.poll_s = poll_s
        self.watchdog_s = watchdog_s
        self.max_attempts = max_attempts
        self.heartbeat_s = heartbeat_s
        self.num_workers = workers
        self._manager = None
        self._events = None
        self._workers: dict[str, WorkerHandle] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started = False

    def __getstate__(self):
        # Parent-process-only: the supervisor owns a SyncManager, live
        # worker processes and a control thread, none of which survive a
        # pickle boundary.  Workers receive (job_id, spec) payloads via
        # their task queues — never the supervisor itself.  Failing loudly
        # here beats the opaque "cannot pickle AuthenticationString" that
        # an accidental capture would raise deep inside a pool.
        raise TypeError(
            "Supervisor is not picklable: it holds a multiprocessing "
            "Manager and live worker handles; ship job payloads instead"
        )

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Recover the store, spawn the pool, start the control loop."""
        if self._started:
            return
        self._started = True
        self.store.recover()
        self._manager = multiprocessing.Manager()
        self._events = self._manager.Queue()
        for index in range(self.num_workers):
            self._spawn(f"w{index}")
        self._thread = threading.Thread(
            target=self._loop, name="repro-supervisor", daemon=True
        )
        self._thread.start()
        _log.info(
            "supervisor up: %d worker(s), watchdog %.1fs, max %d attempts",
            self.num_workers, self.watchdog_s, self.max_attempts,
        )

    def stop(self, join_s: float = 10.0) -> None:
        """Graceful shutdown: SIGTERM busy workers (partial-result path),
        sentinel idle ones, requeue whatever was still running."""
        if not self._started:
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=join_s)
        self._pump()
        for handle in self._workers.values():
            if not handle.process.is_alive():
                continue
            if handle.busy_job:
                handle.process.terminate()
            else:
                try:
                    handle.task_q.put(None)
                except (OSError, EOFError):
                    handle.process.terminate()
        deadline = time.time() + join_s
        for handle in self._workers.values():
            handle.process.join(timeout=max(0.1, deadline - time.time()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
        self._pump()
        # Jobs still RUNNING lost their worker; the log must say QUEUED
        # so the next daemon resumes them (recover() would too — this
        # keeps the log truthful even without a restart).
        for record in self.store.list():
            if record.state == _jobs.RUNNING:
                self.store.transition(
                    record.id, _jobs.QUEUED, reason="shutdown"
                )
                _metrics.inc("service.jobs_requeued")
        self._workers.clear()
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
            self._events = None
        self._started = False
        _log.info("supervisor stopped")

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- pool plumbing ----------------------------------------------------

    def _spawn(self, worker_id: str, generation: int = 0) -> WorkerHandle:
        task_q = self._manager.Queue()
        process = multiprocessing.Process(
            target=worker_main,
            args=(worker_id, task_q, self._events, self.cache_root,
                  self.use_cache, self.heartbeat_s,
                  get_tracer().worker_handle()),
            name=f"repro-{worker_id}",
            daemon=False,  # workers may fan grid cells out to pools
        )
        process.start()
        handle = WorkerHandle(
            id=worker_id, process=process, task_q=task_q,
            generation=generation,
        )
        self._workers[worker_id] = handle
        _metrics.gauge("service.workers").set(len(self._workers))
        _log.info(
            "worker %s gen %d up (pid %d)", worker_id, generation,
            process.pid,
        )
        return handle

    def _respawn(self, handle: WorkerHandle) -> None:
        _metrics.inc("service.worker_restarts")
        self._spawn(handle.id, generation=handle.generation + 1)

    def _kill(self, handle: WorkerHandle, reason: str) -> None:
        _log.warning(
            "killing worker %s (pid %d): %s", handle.id, handle.pid, reason
        )
        handle.process.kill()
        handle.process.join(timeout=2.0)

    # -- the control loop -------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_s):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 — the loop must survive
                _log.exception("supervisor tick failed")

    def tick(self) -> None:
        """One supervision round (public so tests can single-step)."""
        self._pump()
        self._watchdog()
        self._reap()
        self._enforce_cancellations()
        self._dispatch()
        get_tracer().drain()

    def _pump(self) -> None:
        if self._events is None:
            return
        while True:
            try:
                event = self._events.get_nowait()
            except Exception:  # queue.Empty, or manager already down
                return
            self._handle_event(event)

    def _handle_event(self, event: tuple) -> None:
        kind, worker_id = event[0], event[1]
        handle = self._workers.get(worker_id)
        if kind == "heartbeat":
            if handle is not None:
                handle.last_beat = float(event[2])
            return
        if kind == "online":
            if handle is not None:
                handle.last_beat = time.time()
            return
        job_id = event[2]
        if kind == "progress":
            entry = event[3]
            self.store.progress(job_id, entry)
            _metrics.inc(
                "service.stages_cached"
                if entry.get("cached")
                else "service.stages_executed"
            )
            return
        if handle is not None and handle.busy_job == job_id:
            handle.busy_job = ""
            handle.last_beat = time.time()
        try:
            record = self.store.get(job_id)
        except JobStateError:
            _log.warning("event %r for unknown job %s", kind, job_id)
            return
        if record.terminal:
            # A cancelled job's worker raced us to the finish line; its
            # outcome is void — the record already settled.
            return
        if kind == "result":
            _run_dict, deltas = event[3], event[4]
            self._fold_metrics(deltas)
            self.store.transition(job_id, _jobs.DONE, result=_run_dict)
            _metrics.inc("service.jobs_completed")
        elif kind == "error":
            message, deltas = event[3], event[4]
            self._fold_metrics(deltas)
            self.store.transition(job_id, _jobs.FAILED, error=message)
            _metrics.inc("service.jobs_failed")
        elif kind == "interrupted":
            # SIGTERM mid-job (shutdown, or a stray signal): requeue so
            # the job resumes — on this daemon or the next one.
            if record.state == _jobs.RUNNING:
                self.store.transition(
                    job_id, _jobs.QUEUED, reason="interrupted"
                )
                _metrics.inc("service.jobs_requeued")

    @staticmethod
    def _fold_metrics(deltas: dict) -> None:
        for name, amount in (deltas or {}).items():
            if isinstance(amount, int) and amount > 0:
                _metrics.inc(name, amount)

    def _watchdog(self) -> None:
        now = time.time()
        for handle in self._workers.values():
            if not handle.busy_job or not handle.process.is_alive():
                continue
            if now - handle.last_beat > self.watchdog_s:
                _metrics.inc("service.watchdog_kills")
                self._kill(
                    handle,
                    f"no heartbeat for {now - handle.last_beat:.1f}s "
                    f"(job {handle.busy_job})",
                )

    def _reap(self) -> None:
        for worker_id in list(self._workers):
            handle = self._workers[worker_id]
            if handle.process.is_alive():
                continue
            exitcode = handle.process.exitcode
            _log.warning(
                "worker %s gen %d died (exitcode %s)",
                handle.id, handle.generation, exitcode,
            )
            job_id = handle.busy_job
            if job_id:
                record = self.store.get(job_id)
                if record.state == _jobs.RUNNING:
                    if record.attempts >= self.max_attempts:
                        self.store.transition(
                            job_id, _jobs.FAILED,
                            error=(
                                f"worker died (exitcode {exitcode}) on "
                                f"attempt {record.attempts}/"
                                f"{self.max_attempts}"
                            ),
                            reason="crash-loop",
                        )
                        _metrics.inc("service.jobs_failed")
                    else:
                        self.store.transition(
                            job_id, _jobs.QUEUED,
                            reason=f"worker-died-exitcode-{exitcode}",
                        )
                        _metrics.inc("service.jobs_requeued")
            self._respawn(handle)

    def _enforce_cancellations(self) -> None:
        for handle in self._workers.values():
            if not handle.busy_job or not handle.process.is_alive():
                continue
            record = self.store.get(handle.busy_job)
            if record.state == _jobs.CANCELLED:
                self._kill(handle, f"job {handle.busy_job} cancelled")
                handle.busy_job = ""
                # Dead now; the next _reap() respawns the slot.

    def _dispatch(self) -> None:
        idle = [
            h for h in self._workers.values()
            if not h.busy_job and h.process.is_alive()
        ]
        if not idle:
            return
        for record in self.store.queued():
            if not idle:
                break
            handle = idle.pop(0)
            self.store.transition(
                record.id, _jobs.RUNNING,
                worker=handle.id, worker_pid=handle.pid,
            )
            handle.busy_job = record.id
            handle.last_beat = time.time()
            handle.task_q.put(
                {
                    "id": record.id,
                    "spec": record.spec,
                    "options": record.options,
                }
            )
            _log.info(
                "job %s dispatched to %s (attempt %d)",
                record.id, handle.id, record.attempts,
            )
        _metrics.gauge("service.workers_busy").set(
            sum(1 for h in self._workers.values() if h.busy_job)
        )

    # -- introspection ----------------------------------------------------

    def health(self) -> dict:
        now = time.time()
        return {
            "status": "ok",
            "workers": [
                h.describe(now) for h in self._workers.values()
            ],
            "jobs": self.store.counts(),
        }
