"""``repro serve``: the async job daemon.

A long-running service that accepts experiment specs over HTTP, fans
them out to a supervised pool of worker processes, and survives both
worker crashes (heartbeat watchdog + requeue, resuming from the
artifact cache) and its own death (append-only event log replayed on
restart — no accepted job is ever lost).  See ``docs/service.md``.
"""

from repro.service.client import DEFAULT_PORT, ServiceClient
from repro.service.daemon import Service, default_state_dir, serve
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL,
    JobRecord,
    JobSpec,
    check_transition,
)
from repro.service.store import JobStore
from repro.service.supervisor import Supervisor

__all__ = [
    "CANCELLED",
    "DEFAULT_PORT",
    "DONE",
    "FAILED",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "STATES",
    "Service",
    "ServiceClient",
    "Supervisor",
    "TERMINAL",
    "check_transition",
    "default_state_dir",
    "serve",
]
