"""The worker process: pulls assigned jobs, runs them, streams events.

One worker = one long-lived OS process spawned by the
:class:`~repro.service.supervisor.Supervisor`.  It owns nothing durable:
every fact the daemon needs — liveness, per-stage progress, the final
:class:`~repro.pipeline.runner.RunResult` — flows back through the
supervisor's manager queue as a plain-tuple event, so a SIGKILLed worker
loses only its in-flight process state, never recorded history.

Event protocol (worker -> supervisor), all tuples headed by a kind tag::

    ("online",      worker_id, pid)
    ("heartbeat",   worker_id, t_wall)                      # watchdog food
    ("progress",    worker_id, job_id, stage_entry_dict)
    ("result",      worker_id, job_id, run_dict, metric_deltas)
    ("error",       worker_id, job_id, message, metric_deltas)
    ("interrupted", worker_id, job_id)                      # SIGTERM path

Heartbeats come from a daemon thread, so they keep flowing through long
CPU-bound stages; only a truly wedged (or stopped) process goes silent,
which is exactly what the supervisor's watchdog is for.  ``metric_deltas``
carries the worker-local :mod:`repro.obs.metrics` counter movement for the
job (artifact-cache traffic, solver effort), which the supervisor folds
into the daemon registry — ``GET /metrics`` aggregates across the pool.

SIGTERM is mapped to :class:`KeyboardInterrupt`, so a graceful shutdown
rides the same partial-result path as Ctrl-C in ``repro grid``
(:meth:`Runner.run` returns with ``interrupted=True``); SIGINT is ignored
because a foreground daemon's Ctrl-C reaches the whole process group and
teardown belongs to the supervisor.
"""

from __future__ import annotations

import os
import signal
import threading
import time

from repro.obs.metrics import REGISTRY
from repro.obs.trace import get_tracer, set_tracer
from repro.pipeline.runner import Runner
from repro.pipeline.spec import ExperimentSpec


def _counters_delta(before: dict) -> dict:
    return {
        name: value - before.get(name, 0)
        for name, value in REGISTRY.counters().items()
        if value != before.get(name, 0)
    }


def _heartbeat_loop(worker_id: str, event_q, interval_s: float, stop) -> None:
    while not stop.wait(interval_s):
        try:
            event_q.put(("heartbeat", worker_id, time.time()))
        except (OSError, EOFError, BrokenPipeError):
            return  # supervisor is gone; nothing left to feed


def _raise_interrupt(signum, frame):
    raise KeyboardInterrupt


def run_job(
    worker_id: str,
    task: dict,
    event_q,
    cache_root,
    use_cache: bool = True,
) -> bool:
    """Execute one assigned job; returns False when the worker must exit
    (the run was interrupted by SIGTERM)."""
    job_id = task["id"]
    options = task.get("options") or {}
    stage_delay = float(options.get("stage_delay_s") or 0.0)

    def progress(entry: dict) -> None:
        event_q.put(("progress", worker_id, job_id, entry))
        if stage_delay:
            # Chaos/testing knob: hold here so supervision tests get a
            # deterministic window to kill the worker mid-job.
            time.sleep(stage_delay)

    before = dict(REGISTRY.counters())
    try:
        spec = ExperimentSpec.from_dict(task["spec"])
        runner = Runner(
            workdir=cache_root,
            jobs=int(options.get("jobs", 1)),
            use_cache=use_cache,
            progress=progress,
        )
        with get_tracer().span("job", job=job_id, worker=worker_id):
            run = runner.run(spec)
    except KeyboardInterrupt:
        event_q.put(("interrupted", worker_id, job_id))
        return False
    except Exception as exc:  # noqa: BLE001 — job isolation:
        # any worker-side failure becomes a FAILED job, never a dead pool.
        event_q.put(
            ("error", worker_id, job_id,
             f"{type(exc).__name__}: {exc}", _counters_delta(before))
        )
        return True
    if run.interrupted:
        event_q.put(("interrupted", worker_id, job_id))
        return False
    event_q.put(
        ("result", worker_id, job_id, run.to_dict(),
         _counters_delta(before))
    )
    return True


def worker_main(
    worker_id: str,
    task_q,
    event_q,
    cache_root=None,
    use_cache: bool = True,
    heartbeat_s: float = 1.0,
    tracer_handle=None,
) -> None:
    """Process entry point: heartbeat thread + the task loop.

    ``task_q`` delivers job assignment dicts (``{"id", "spec",
    "options"}``); ``None`` is the shutdown sentinel.  ``tracer_handle``
    (from :meth:`Tracer.worker_handle`) routes this worker's spans into
    the daemon's trace stream over the existing obs bridge.
    """
    signal.signal(signal.SIGTERM, _raise_interrupt)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if tracer_handle is not None:
        set_tracer(tracer_handle)
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(worker_id, event_q, heartbeat_s, stop),
        daemon=True,
    )
    beat.start()
    try:
        event_q.put(("online", worker_id, os.getpid()))
        while True:
            try:
                task = task_q.get()
            except KeyboardInterrupt:
                break  # SIGTERM while idle
            if task is None:
                break
            if not run_job(
                worker_id, task, event_q, cache_root, use_cache
            ):
                break
    finally:
        stop.set()
