"""The lint driver: collect files, run every selected rule, apply the
baseline, render the report.

Stdlib-only and deliberately boring: one pass parses each file once,
hands the same :class:`~repro.analysis.base.ModuleUnderLint` to every
checker, then project-wide rules flush from ``finish()``.  The exit-code
contract (shared by ``repro lint`` and ``tools/lint.py``) is::

    0  no fresh findings (baselined ones don't count)
    1  at least one fresh finding
    2  usage / internal error (raised as AnalysisError upstream)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.base import (
    ModuleUnderLint,
    create_checkers,
    rule_selected,
)
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Severity
from repro.errors import AnalysisError

#: Engine-emitted pseudo-rule: the file did not parse, nothing else ran.
PARSE_ERROR_CODE = "RPR001"

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


def iter_python_files(paths: Sequence["str | Path"]) -> list[Path]:
    """Every ``*.py`` under ``paths`` (files pass through), sorted."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisError(f"lint path does not exist: {path}")
        if path.is_file():
            files.add(path)
            continue
        for candidate in path.rglob("*.py"):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                files.add(candidate)
    return sorted(files)


def _relpath(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class LintReport:
    """Everything one lint run produced, pre-rendered-format."""

    findings: list[Finding]          # fresh (not matched by the baseline)
    baselined: int = 0               # findings absorbed by the baseline
    stale_baseline: list[str] = field(default_factory=list)
    files_scanned: int = 0
    rules: list[str] = field(default_factory=list)
    all_findings: list[Finding] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "baselined": self.baselined,
            "stale_baseline": list(self.stale_baseline),
            "files_scanned": self.files_scanned,
            "rules": list(self.rules),
            "exit_code": self.exit_code,
        }


def run_lint(
    paths: Sequence["str | Path"],
    *,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    baseline: "str | Path | None" = None,
    docs_root: "str | Path | None" = None,
) -> LintReport:
    """Run every selected rule over ``paths`` (plus the docs pass when
    ``docs_root`` is given) and fold in the baseline."""
    select = tuple(select)
    ignore = tuple(ignore)
    checkers = create_checkers(select, ignore)
    findings: list[Finding] = []
    files = iter_python_files(paths)
    modules = [
        ModuleUnderLint.load(path, _relpath(path)) for path in files
    ]
    for module in modules:
        if module.tree is None:
            if rule_selected(PARSE_ERROR_CODE, select, ignore):
                findings.append(Finding(
                    file=module.relpath, line=1, code=PARSE_ERROR_CODE,
                    severity=Severity.ERROR,
                    message=f"file does not parse: {module.parse_error}",
                ))
            continue
        for checker in checkers:
            for finding in checker.check_module(module) or ():
                if not module.suppressed(finding.line, finding.code):
                    findings.append(finding)
    by_relpath = {m.relpath: m for m in modules}
    for checker in checkers:
        for finding in checker.finish() or ():
            module = by_relpath.get(finding.file)
            if module and module.suppressed(finding.line, finding.code):
                continue
            findings.append(finding)
    if docs_root is not None:
        from repro.analysis.docs import doc_findings

        findings.extend(
            f for f in doc_findings(docs_root)
            if rule_selected(f.code, select, ignore)
        )
    findings.sort(key=Finding.sort_key)

    report = LintReport(
        findings=findings,
        files_scanned=len(files),
        rules=[c.code for c in checkers],
        all_findings=list(findings),
    )
    if baseline is not None and Path(baseline).exists():
        fresh, matched, stale = Baseline.load(baseline).apply(findings)
        report.findings = fresh
        report.baselined = matched
        report.stale_baseline = stale
    return report


# -- output formats --------------------------------------------------------


def render_text(report: LintReport) -> str:
    lines = [f.text() for f in report.findings]
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_scanned} "
        f"file(s), {len(report.rules)} rule(s) active"
    )
    if report.baselined:
        summary += f"; {report.baselined} baselined"
    if report.stale_baseline:
        summary += f"; {len(report.stale_baseline)} stale baseline entr(y/ies)"
        lines += [
            f"stale baseline entry (debt paid — prune it): {entry}"
            for entry in report.stale_baseline
        ]
    lines.append(summary)
    return "\n".join(lines)


def render_github(report: LintReport) -> str:
    """GitHub workflow annotations, one per finding, plus a notice line."""
    lines = [f.github() for f in report.findings]
    lines.append(
        f"::notice title=repro lint::{len(report.findings)} finding(s), "
        f"{report.baselined} baselined, {report.files_scanned} file(s) "
        "scanned"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2)


RENDERERS = {
    "text": render_text,
    "github": render_github,
    "json": render_json,
}


def list_rules() -> str:
    """The ``--list-rules`` catalogue (code, severity, summary)."""
    from repro.analysis.base import available_rules

    rows = [
        f"{cls.code}  {cls.severity:7}  {cls.name}: {cls.summary}"
        for cls in available_rules()
    ]
    rows.append(
        f"{PARSE_ERROR_CODE}  error    parse-error: file does not parse "
        "(engine-emitted; nothing else runs on the file)"
    )
    return "\n".join(sorted(rows))
