"""Static analysis for the repro codebase: ``repro lint``.

An AST-based invariant checker enforcing the contracts the test suite
can only probabilistically catch: determinism (RPR1xx), concurrency and
picklability (RPR2xx), repo conventions (RPR3xx), and docs/CLI sync
(RPR4xx).  Stdlib-only by design — it must run in the same bare
container as the pipeline itself.
"""

from repro.analysis.base import (
    Checker,
    ModuleUnderLint,
    available_rules,
    create_checkers,
    register_checker,
    rule_selected,
)
from repro.analysis.baseline import Baseline, write_baseline
from repro.analysis.engine import (
    LintReport,
    RENDERERS,
    iter_python_files,
    list_rules,
    render_github,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.findings import Finding, Severity

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "LintReport",
    "ModuleUnderLint",
    "RENDERERS",
    "Severity",
    "available_rules",
    "create_checkers",
    "iter_python_files",
    "list_rules",
    "register_checker",
    "render_github",
    "render_json",
    "render_text",
    "rule_selected",
    "run_lint",
    "write_baseline",
]
