"""Documentation checks, unified into the lint finding model (RPR4xx).

This is the engine behind both ``repro lint --docs`` and the legacy
``tools/check_docs.py`` entry point: internal markdown links must
resolve (anchors included) and every ``repro <cmd>`` the docs mention
must answer ``--help`` with exit 0, so the docs can drift neither ahead
of nor behind the CLI surface.

Rule codes: ``RPR401`` broken link / missing anchor, ``RPR402`` unknown
subcommand, ``RPR403`` docs reference no subcommands at all (the check
would be vacuous).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

from repro.analysis.findings import Finding, Severity

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_INLINE_CODE = re.compile(r"`[^`]+`")
_SUBCOMMAND = re.compile(
    # Lookbehind keeps path-embedded mentions (~/.cache/repro, src/repro)
    # from reading their following word as a subcommand.
    r"(?:python -m repro\.cli|(?<![\w./-])repro)\s+([a-z][a-z0-9-]*)\b"
)
#: Tokens that follow "repro" in code spans without being subcommands.
#: ("daemon": docs quote the `repro serve` startup banner verbatim.)
NOT_SUBCOMMANDS = frozenset({"console", "daemon"})


def doc_files(root: Path) -> list[Path]:
    files = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def _slug(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\s-]", "", heading)
    return re.sub(r"\s+", "-", heading).strip("-")


def _anchors(path: Path) -> set[str]:
    return {_slug(h) for h in _HEADING.findall(path.read_text())}


def link_problems(files: list[Path], root: Path) -> list[Finding]:
    """Broken relative links / anchors across ``files`` as findings."""
    problems = []
    for path in files:
        relpath = str(path.relative_to(root))
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            for target in _LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                raw, _, anchor = target.partition("#")
                resolved = (path.parent / raw).resolve() if raw else path
                message = ""
                if not resolved.exists():
                    message = f"broken link -> {target}"
                elif anchor and resolved.suffix == ".md" and _slug(
                    anchor
                ) not in _anchors(resolved):
                    message = (
                        f"missing anchor #{anchor} in {raw or path.name}"
                    )
                if message:
                    problems.append(Finding(
                        file=relpath, line=lineno, code="RPR401",
                        severity=Severity.ERROR, message=message,
                        source=line.strip(),
                    ))
    return problems


def subcommand_mentions(files: list[Path]) -> dict[str, tuple[Path, int]]:
    """``repro <cmd>`` names in code spans -> first (file, line) mention."""
    mentions: dict[str, tuple[Path, int]] = {}
    for path in files:
        text = path.read_text()
        fenced_lines: set[int] = set()
        for match in _FENCE.finditer(text):
            first = text.count("\n", 0, match.start()) + 1
            last = text.count("\n", 0, match.end()) + 1
            fenced_lines.update(range(first, last + 1))
        for lineno, line in enumerate(text.splitlines(), start=1):
            code = (
                line if lineno in fenced_lines
                else "\n".join(_INLINE_CODE.findall(line))
            )
            for command in _SUBCOMMAND.findall(code):
                if command not in NOT_SUBCOMMANDS:
                    mentions.setdefault(command, (path, lineno))
    return mentions


def subcommand_problems(
    mentions: dict[str, tuple[Path, int]], root: Path
) -> list[Finding]:
    """Findings for documented subcommands whose ``--help`` fails."""
    problems = []
    # The child must import repro from this checkout no matter where the
    # linter itself was launched from.
    env = dict(os.environ)
    src = str(root / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    for command, (path, lineno) in sorted(mentions.items()):
        outcome = subprocess.run(
            [sys.executable, "-m", "repro.cli", command, "--help"],
            capture_output=True,
            text=True,
            cwd=root,
            env=env,
        )
        if outcome.returncode != 0:
            stderr = outcome.stderr.strip()
            problems.append(Finding(
                file=str(path.relative_to(root)), line=lineno,
                code="RPR402", severity=Severity.ERROR,
                message=(
                    f"documented subcommand `repro {command}` is not a "
                    f"real CLI command (--help exited "
                    f"{outcome.returncode}): "
                    f"{stderr.splitlines()[-1] if stderr else ''}"
                ),
            ))
    return problems


def doc_findings(root: "str | Path") -> list[Finding]:
    """The full docs pass rooted at ``root`` (repo checkout)."""
    root = Path(root).resolve()
    files = doc_files(root)
    if not files:
        return [Finding(
            file=str(root), line=1, code="RPR403",
            severity=Severity.ERROR,
            message="no documentation files found (docs/*.md, README.md)",
        )]
    findings = link_problems(files, root)
    mentions = subcommand_mentions(files)
    if not mentions:
        findings.append(Finding(
            file="README.md", line=1, code="RPR403",
            severity=Severity.ERROR,
            message=(
                "docs reference no `repro <cmd>` subcommands at all — "
                "the command check has nothing to pin"
            ),
        ))
    findings.extend(subcommand_problems(mentions, root))
    return findings
