"""The finding model every checker reports through.

A :class:`Finding` is one violation at one ``file:line`` with a stable
rule code (``RPR101``), a severity, and the stripped source line it fired
on.  The source text — not the line number — is the baseline identity:
grandfathered findings stay matched when unrelated edits shift the file
(see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(str, enum.Enum):
    """How a finding renders (GitHub annotation level); every non-baselined
    finding fails the run regardless of severity — the CI contract is
    *zero* fresh findings, not zero errors."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # "error", not "Severity.ERROR", in output
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to a file, line and source text."""

    file: str
    line: int
    code: str
    message: str
    severity: Severity = Severity.ERROR
    col: int = 0
    #: The stripped source line the finding fired on — the line-drift-proof
    #: part of the baseline key.
    source: str = field(default="", compare=False)

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.col, self.code)

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used to match against grandfathered baseline entries."""
        return (self.file, self.code, self.source)

    def text(self) -> str:
        return (
            f"{self.file}:{self.line}:{self.col}: {self.code} "
            f"[{self.severity}] {self.message}"
        )

    def github(self) -> str:
        """One ``::error``/``::warning`` workflow annotation line."""
        # Annotation messages are single-line; the %0A escape is the
        # documented newline encoding, commas/colons pass through fine.
        message = self.message.replace("\n", "%0A")
        return (
            f"::{self.severity} file={self.file},line={self.line},"
            f"title={self.code}::{message}"
        )

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "source": self.source,
        }
