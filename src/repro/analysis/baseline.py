"""The committed baseline: grandfathered findings that don't fail the run.

Format is one entry per line, diff-friendly and line-number-free so
unrelated edits don't invalidate it::

    # justification comment for the entry below
    src/repro/service/store.py:RPR203: self._jobs[record.id] = record

The key is ``relpath:CODE: <stripped source line>`` — a finding matches
when all three agree, wherever the line moved to.  Duplicate keys stack
(two identical offending lines need two entries).  ``repro lint
--write-baseline`` regenerates the file from the current findings;
entries that no longer match anything are reported as stale so the
baseline shrinks as debt is paid.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

_HEADER = (
    "# repro lint baseline — grandfathered findings (see "
    "docs/static-analysis.md).\n"
    "# One `relpath:CODE: source line` per entry; keep a one-line\n"
    "# justification comment above anything intentionally kept.\n"
)


def _parse_line(line: str, path: Path, lineno: int) -> tuple[str, str, str]:
    relpath, _, rest = line.partition(":")
    code, _, source = rest.partition(":")
    code = code.strip()
    if not relpath or not code.startswith("RPR"):
        raise AnalysisError(
            f"{path}:{lineno}: malformed baseline entry {line!r} "
            "(expected 'relpath:CODE: source line')"
        )
    return (relpath.strip(), code, source.strip())


class Baseline:
    """Multiset of grandfathered finding keys loaded from one file."""

    def __init__(self, entries: Counter | None = None, path: Path | None = None):
        self.entries: Counter = entries or Counter()
        self.path = path

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        path = Path(path)
        entries: Counter = Counter()
        for lineno, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            entries[_parse_line(line, path, lineno)] += 1
        return cls(entries, path)

    def apply(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], int, list[str]]:
        """Split ``findings`` into (fresh, matched count, stale entries).

        Each baseline entry absorbs at most as many findings as its
        multiplicity; leftover entries are stale (the debt was paid —
        or the file was renamed) and should be pruned.
        """
        remaining = Counter(self.entries)
        fresh: list[Finding] = []
        for finding in findings:
            key = finding.baseline_key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                fresh.append(finding)
        matched = sum(self.entries.values()) - sum(remaining.values())
        stale = [
            f"{relpath}:{code}: {source}"
            for (relpath, code, source), count in sorted(remaining.items())
            for _ in range(count)
            if count > 0
        ]
        return fresh, matched, stale


def write_baseline(findings: Iterable[Finding], path: "str | Path") -> int:
    """Write every finding as a baseline entry; returns the entry count."""
    path = Path(path)
    entries = sorted(
        f"{f.file}:{f.code}: {f.source}" for f in findings
    )
    path.write_text(
        _HEADER + "".join(f"{entry}\n" for entry in entries),
        encoding="utf-8",
    )
    return len(entries)
