"""Determinism rules (RPR1xx).

These encode the bit-identical-replay contract the search/cache subsystems
promise (``docs/search-tuning.md``, ``synth/cache.py``): no unordered set
iteration on paths that can feed node ordering or cache keys (the
``Aig.replace`` raw-set-order bug fixed in PR 4 was exactly this), no
module-level RNG (every stream goes through ``repro.utils.rng``), and no
wall-clock or hash-randomized values anywhere near a fingerprint.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.base import (
    Checker,
    ModuleUnderLint,
    ancestors,
    attach_parents,
    call_name,
    dotted_name,
    module_aliases,
    register_checker,
)
from repro.analysis.findings import Finding, Severity

#: Methods that return a fresh set — iterating their result is unordered.
_SET_RETURNING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
    # Repo-specific: Aig.fanout_vars / mffc hand back raw node sets.
    "fanout_vars", "mffc",
})

#: Order-sensitive one-arg consumers of an iterable.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "iter", "enumerate"})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.split("[")[0].strip() in ("set", "frozenset", "Set")
    return dotted_name(annotation).split(".")[-1] in ("set", "frozenset", "Set")


class _SetScope:
    """Names known to hold sets within one function (or module) body."""

    def __init__(self):
        self.names: set[str] = set()

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_RETURNING_METHODS
            ):
                # .union()/.copy() only count when the receiver is known
                # set-typed; the repo-specific methods always return sets.
                if func.attr in ("fanout_vars", "mffc"):
                    return True
                return self.is_set(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set(node.body) and self.is_set(node.orelse)
        return False

    def observe(self, stmt: ast.stmt) -> None:
        """Track simple ``name = <set expr>`` flow, in statement order."""
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if self.is_set(stmt.value):
                    self.names.add(target.id)
                else:
                    self.names.discard(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if _is_set_annotation(stmt.annotation):
                self.names.add(stmt.target.id)
            else:
                self.names.discard(stmt.target.id)


@register_checker
class UnorderedSetIteration(Checker):
    code = "RPR101"
    name = "unordered-set-iteration"
    summary = (
        "iteration over a set (for/list/tuple/comprehension) without "
        "sorted() — replay order would depend on hashing"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return
        for scope_node, scope in _scopes(module.tree):
            for node in _scope_body_walk(scope_node):
                if isinstance(node, ast.stmt):
                    scope.observe(node)
                yield from self._check_node(module, scope, node)

    def _check_node(self, module, scope, node) -> Iterable[Finding]:
        iterables: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # SetComp is exempt: a set built from a set stays unordered.
            iterables.extend(gen.iter for gen in node.generators)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SENSITIVE_CALLS
            and node.args
        ):
            iterables.append(node.args[0])
        for iterable in iterables:
            if scope.is_set(iterable):
                yield self.finding(
                    module, iterable,
                    "iterating an unordered set; wrap it in sorted(...) so "
                    "traversal order is canonical (bit-identical replay "
                    "contract, cf. the Aig.replace raw-set-order bug)",
                )


def _scopes(tree: ast.Module):
    """(scope node, seeded _SetScope) for the module and every function."""
    module_scope = _SetScope()
    yield tree, module_scope
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope = _SetScope()
            args = node.args
            for arg in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ):
                if _is_set_annotation(arg.annotation):
                    scope.names.add(arg.arg)
            yield node, scope


def _scope_body_walk(scope_node: ast.AST):
    """Pre-order walk of a scope's body without descending into nested
    functions — each nested function gets its own scope pass.

    Pre-order *depth-first* matters: a statement's sub-expressions must be
    checked before the next sibling statement is observed, or a later
    ``x = sorted(x)`` rebinding would retroactively launder an earlier
    ``list(x)``."""
    stack = list(reversed(
        scope_node.body
        if isinstance(
            scope_node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)
        )
        else []
    ))
    while stack:
        node = stack.pop()
        yield node
        # Nested defs/classes are yielded but not entered: they get their
        # own scope pass (a seed-time push would otherwise descend into
        # module-level functions twice — once per scope).
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                   ast.ClassDef)
        ):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


#: Module-level RNG entry points (shared global state, unseeded by default).
_RANDOM_MODULE_CALLS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "getrandbits", "seed",
})
_NUMPY_RANDOM_CALLS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "normal", "uniform", "seed", "bytes",
})


@register_checker
class ModuleLevelRng(Checker):
    code = "RPR102"
    name = "module-level-rng"
    summary = (
        "random.*/numpy.random.* module-level RNG call — streams must come "
        "from repro.utils.rng (make_rng/derive_seed)"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return
        aliases = module_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                # numpy.random.default_rng() with no seed is the one bare
                # Name-ish case worth catching via the attribute below.
                continue
            func = node.func
            receiver = dotted_name(func.value)
            target = aliases.get(receiver.split(".")[0], "")
            resolved = (
                receiver.replace(receiver.split(".")[0], target, 1)
                if target else receiver
            )
            if resolved == "random" and func.attr in _RANDOM_MODULE_CALLS:
                yield self.finding(
                    module, node,
                    f"random.{func.attr}() uses the shared module-level "
                    "RNG; build a seeded generator via "
                    "repro.utils.rng.make_rng/derive_seed",
                )
            elif (
                resolved in ("numpy.random", "np.random")
                or resolved.endswith(".random")
                and target.startswith("numpy")
            ) and func.attr in _NUMPY_RANDOM_CALLS:
                yield self.finding(
                    module, node,
                    f"numpy.random.{func.attr}() uses the legacy global "
                    "RNG; use repro.utils.rng.make_rng(seed) instead",
                )
            elif func.attr == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    module, node,
                    "default_rng() without a seed is non-deterministic; "
                    "pass a derived seed (repro.utils.rng.derive_seed)",
                )


#: The one module allowed to touch numpy's RNG machinery directly.
_RNG_HOME = "utils/rng.py"


@register_checker
class DirectNumpyRandom(Checker):
    code = "RPR105"
    name = "direct-numpy-random"
    summary = (
        "direct np.random.* call outside utils/rng.py — every stream "
        "(legacy globals AND Generator construction) goes through "
        "repro.utils.rng so the packed numpy simulation paths can't "
        "reintroduce unseeded randomness"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return
        if module.relpath.replace("\\", "/").endswith(_RNG_HOME):
            return
        aliases = module_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            receiver = dotted_name(node.func.value)
            if not receiver:
                continue
            head = receiver.split(".")[0]
            target = aliases.get(head, "")
            resolved = (
                receiver.replace(head, target, 1) if target else receiver
            )
            if resolved == "numpy.random" or (
                resolved == "np.random" and "np" not in aliases
            ):
                yield self.finding(
                    module, node,
                    f"np.random.{node.func.attr}(...) outside utils/rng.py; "
                    "route every stream through repro.utils.rng "
                    "(make_rng/derive_seed) so seeds stay auditable",
                )


_WALL_CLOCK_ATTRS = {
    ("time", "time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
}
_FINGERPRINT_MARKERS = ("fingerprint", "cache_key")


@register_checker
class WallClockInFingerprint(Checker):
    code = "RPR103"
    name = "wall-clock-in-fingerprint"
    summary = (
        "time.time()/datetime.now() feeding a fingerprint or cache-key "
        "expression — cache identity must be content-derived"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return
        attach_parents(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            receiver = dotted_name(node.func.value).split(".")[-1]
            if (receiver, node.func.attr) not in _WALL_CLOCK_ATTRS:
                continue
            context = self._fingerprint_context(node)
            if context:
                yield self.finding(
                    module, node,
                    f"wall-clock call inside {context}: fingerprints and "
                    "cache keys must be derived from content, never time",
                )

    @staticmethod
    def _fingerprint_context(node: ast.AST) -> str:
        for parent in ancestors(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(m in parent.name.lower() for m in _FINGERPRINT_MARKERS):
                    return f"{parent.name}()"
                return ""  # nearest function wins; plain timing is fine
            if isinstance(parent, ast.Call):
                name = call_name(parent).lower()
                if any(m in name for m in _FINGERPRINT_MARKERS):
                    return f"a {call_name(parent)}(...) argument"
        return ""


@register_checker
class BuiltinHashForIdentity(Checker):
    code = "RPR104"
    name = "builtin-hash-identity"
    severity = Severity.WARNING
    summary = (
        "builtin hash() call — str/bytes hashing is randomized per process "
        "(PYTHONHASHSEED); persisted identities use hashlib.sha256"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return
        attach_parents(module.tree)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                if any(
                    isinstance(p, ast.FunctionDef) and p.name == "__hash__"
                    for p in ancestors(node)
                ):
                    continue
                yield self.finding(
                    module, node,
                    "hash() is salted per process for str/bytes; anything "
                    "persisted or shipped across workers needs "
                    "hashlib.sha256 (see utils/rng.derive_seed)",
                )
