"""Rule catalogue: importing this package registers every built-in rule.

Mirrors how :mod:`repro.pipeline.stages` self-registers into the pipeline
registry — one import, all rules addressable by code.
"""

from repro.analysis.checkers import (  # noqa: F401
    concurrency,
    conventions,
    determinism,
)
