"""Concurrency and picklability rules (RPR2xx).

Everything shipped to a ``multiprocessing`` pool, a supervised service
worker, or a ``ProcessPoolEvaluator`` crosses a pickle boundary — under
the ``spawn`` start method *nothing* is inherited.  These rules encode
the unpicklable-Manager and fork-vs-spawn bridge lessons of PRs 5–6:
no lambdas/closures into pools, no Manager proxies in classes without a
``__getstate__``, and no lock-guarded state mutated off-lock.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.base import (
    Checker,
    ModuleUnderLint,
    ancestors,
    attach_parents,
    call_name,
    dotted_name,
    register_checker,
)
from repro.analysis.findings import Finding

#: Pool methods whose callable argument is always pickled.
_POOL_METHODS = frozenset({
    "apply_async", "map_async", "starmap_async", "imap", "imap_unordered",
})
#: Methods that only pickle when the receiver is a pool/executor.
_POOLISH_METHODS = frozenset({"map", "apply", "starmap", "submit"})
#: Constructors whose callable kwargs/args cross the process boundary.
_POOL_CONSTRUCTORS = frozenset({
    "Pool", "Process", "ProcessPoolExecutor", "ProcessPoolEvaluator",
})


def _is_poolish(receiver: ast.expr) -> bool:
    name = dotted_name(receiver).split(".")[-1].lower()
    return "pool" in name or "executor" in name


def _nested_function_names(node: ast.AST) -> set[str]:
    """Names of functions defined directly inside enclosing functions of
    ``node`` — passing one to a pool pickles a closure, which fails under
    spawn."""
    names: set[str] = set()
    for parent in ancestors(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in ast.walk(parent):
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt is not parent
                ):
                    names.add(stmt.name)
    return names


@register_checker
class UnpicklableCallableToPool(Checker):
    code = "RPR201"
    name = "unpicklable-pool-callable"
    summary = (
        "lambda or locally-defined function handed to a process pool / "
        "evaluator API — unpicklable under the spawn start method"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return
        attach_parents(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._pool_target(node)
            if not target:
                continue
            nested = None
            for arg in (*node.args, *(kw.value for kw in node.keywords)):
                if isinstance(arg, ast.Lambda):
                    yield self.finding(
                        module, arg,
                        f"lambda passed to {target} cannot be pickled to a "
                        "worker process; use a module-level function",
                    )
                elif isinstance(arg, ast.Name):
                    if nested is None:
                        nested = _nested_function_names(node)
                    if arg.id in nested:
                        yield self.finding(
                            module, arg,
                            f"locally-defined function {arg.id!r} passed to "
                            f"{target} closes over its frame and cannot be "
                            "pickled under spawn; hoist it to module level",
                        )

    @staticmethod
    def _pool_target(node: ast.Call) -> str:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _POOL_METHODS:
                return f"{func.attr}()"
            if func.attr in _POOLISH_METHODS and _is_poolish(func.value):
                return f"{dotted_name(func.value)}.{func.attr}()"
            if func.attr in _POOL_CONSTRUCTORS:
                return f"{func.attr}(...)"
            return ""
        if isinstance(func, ast.Name) and func.id in _POOL_CONSTRUCTORS:
            return f"{func.id}(...)"
        return ""


def _manager_proxy_call(value: ast.AST) -> Optional[str]:
    """Describe the Manager proxy produced by ``value``, if any."""
    for node in ast.walk(value):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name == "Manager":
            return "multiprocessing.Manager()"
        if isinstance(node.func, ast.Attribute) and name in (
            "dict", "list", "Queue", "JoinableQueue", "Lock", "RLock",
            "Namespace", "Value", "Array", "Event", "Semaphore", "Condition",
        ):
            receiver = dotted_name(node.func.value).lower()
            if "manager" in receiver:
                return f"{dotted_name(node.func.value)}.{name}()"
    return None


@register_checker
class ManagerProxyWithoutGetstate(Checker):
    code = "RPR202"
    name = "manager-proxy-without-getstate"
    summary = (
        "class stores multiprocessing.Manager state but defines no "
        "__getstate__/__reduce__ — pickling it (pool fan-out) explodes"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            has_getstate = any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name in ("__getstate__", "__reduce__",
                                  "__reduce_ex__")
                for item in node.body
            )
            if has_getstate:
                continue
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.Assign):
                    continue
                proxy = _manager_proxy_call(stmt.value)
                if proxy is None:
                    continue
                targets = [
                    t for t in stmt.targets
                    if isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ]
                if not targets:
                    continue
                yield self.finding(
                    module, stmt,
                    f"class {node.name} stores {proxy} in "
                    f"self.{targets[0].attr} but defines no __getstate__; "
                    "the manager (and a SyncManager is never picklable) "
                    "rides along into every pickle of the instance — drop "
                    "or guard it like SharedSynthCache/Tracer do",
                )
                break  # one finding per class is enough


_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "pop", "popleft", "remove", "discard",
    "add", "clear", "update", "setdefault", "put", "put_nowait",
})
#: Methods where unlocked mutation is expected: construction and the
#: pickle protocol run before/outside any sharing.
_EXEMPT_METHODS = frozenset({
    "__init__", "__new__", "__getstate__", "__setstate__", "__del__",
})


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_attr(node: ast.AST) -> Optional[str]:
    """The ``self.<attr>`` a statement/expression mutates, if any."""
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Attribute):
                attr = _self_attr(target)
            elif isinstance(target, ast.Subscript):
                # self._index[key] = v mutates self._index
                attr = _self_attr(target.value)
            else:
                attr = None
            if attr is not None:
                return attr
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                return _self_attr(target.value)
            if isinstance(target, ast.Attribute):
                return _self_attr(target)
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATOR_METHODS:
            return _self_attr(node.func.value)
    return None


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """self attributes that look like locks assigned from a constructor."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            for target in node.targets:
                attr = _self_attr(target)
                if attr and "lock" in attr.lower():
                    locks.add(attr)
    return locks


def _inside_lock(node: ast.AST, locks: set[str]) -> bool:
    for parent in ancestors(node):
        if isinstance(parent, (ast.With, ast.AsyncWith)):
            for item in parent.items:
                expr = item.context_expr
                # both `with self._lock:` and `with self._lock.acquire():`
                if isinstance(expr, ast.Call):
                    expr = expr.func
                    if isinstance(expr, ast.Attribute) and _self_attr(
                        expr.value
                    ) in locks:
                        return True
                if _self_attr(expr) in locks:
                    return True
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
    return False


@register_checker
class SharedStateMutatedOffLock(Checker):
    code = "RPR203"
    name = "shared-state-off-lock"
    summary = (
        "attribute that is mutated under `with self._lock` elsewhere is "
        "also mutated without it — a supervisor/store race"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return
        attach_parents(module.tree)
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(module, cls)

    def _check_class(self, module, cls: ast.ClassDef) -> Iterable[Finding]:
        locks = _lock_attrs(cls)
        if not locks:
            return
        methods = [
            item for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        guarded: set[str] = set()
        mutations: list[tuple[str, ast.AST, str, bool]] = []
        for method in methods:
            for node in ast.walk(method):
                attr = _mutated_attr(node)
                if attr is None or attr in locks:
                    continue
                locked = _inside_lock(node, locks)
                if locked:
                    guarded.add(attr)
                mutations.append((attr, node, method.name, locked))
        if not guarded:
            return
        # A private helper whose call sites (self.helper(...)) all sit
        # inside locked blocks inherits the lock: flagging SynthCache-style
        # `_touch` helpers would force the lock to be re-entrant for no
        # safety gain.
        locked_helpers = self._lock_held_helpers(cls, locks, methods)
        for attr, node, method_name, locked in mutations:
            if locked or attr not in guarded:
                continue
            if method_name in _EXEMPT_METHODS or method_name in locked_helpers:
                continue
            yield self.finding(
                module, node,
                f"self.{attr} is lock-guarded elsewhere in {cls.name} but "
                f"mutated here (in {method_name}()) without "
                f"`with self.{sorted(locks)[0]}:`",
            )

    @staticmethod
    def _lock_held_helpers(cls, locks, methods) -> set[str]:
        method_names = {m.name for m in methods}
        call_sites: dict[str, list[bool]] = {}
        for node in ast.walk(cls):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if (
                    _self_attr(node.func.value) is None
                    and not isinstance(node.func.value, ast.Name)
                ):
                    continue
                if (
                    isinstance(node.func.value, ast.Name)
                    and node.func.value.id != "self"
                ):
                    continue
                if node.func.attr in method_names:
                    call_sites.setdefault(node.func.attr, []).append(
                        _inside_lock(node, locks)
                    )
        return {
            name for name, sites in call_sites.items()
            if sites and all(sites)
        }
