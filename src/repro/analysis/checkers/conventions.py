"""Convention rules (RPR3xx): observability naming, registry hygiene.

The telemetry layer (PR 6) and the pipeline registry both rely on names
being boring: metrics live in the canonical ``dotted.snake`` namespaces
documented in ``docs/observability.md``, counters only go up, a
``(kind, name)`` registers exactly once, and the CLI's hand-written
``choices=`` lists must not drift behind the registry they mirror.
"""

from __future__ import annotations

import ast
import configparser
import re
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis.base import (
    Checker,
    ModuleUnderLint,
    call_name,
    dotted_name,
    find_upward,
    module_aliases,
    register_checker,
)
from repro.analysis.findings import Finding, Severity

_METRIC_FUNCS = frozenset({"inc", "counter", "gauge", "histogram"})
_METRICS_MODULES = ("repro.obs.metrics", "repro.obs")
_NAME_SHAPE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Fallback namespaces when docs/observability.md is out of reach (lint
#: run on a file tree without the docs, e.g. test fixtures).
DEFAULT_METRIC_NAMESPACES = frozenset({
    "sat", "dip", "search", "synth_cache", "artifact_cache", "service",
    "stage", "lint",
})

_BACKTICKED_METRIC = re.compile(r"`([a-z][a-z0-9_]*)\.[a-z0-9_.*]+`")


def _documented_namespaces(start: Path) -> frozenset:
    """First segments of the metric names documented in observability.md."""
    doc = find_upward(start, "docs/observability.md")
    if doc is None:
        return DEFAULT_METRIC_NAMESPACES
    text = doc.read_text(encoding="utf-8", errors="replace")
    marker = text.find("## Metric names")
    if marker < 0:
        return DEFAULT_METRIC_NAMESPACES
    found = frozenset(_BACKTICKED_METRIC.findall(text[marker:]))
    return found | frozenset({"stage"}) if found else DEFAULT_METRIC_NAMESPACES


def _metric_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases of repro.obs.metrics, directly imported helpers)."""
    modules: set[str] = set()
    helpers: set[str] = set()
    for local, target in module_aliases(tree).items():
        if target in _METRICS_MODULES or target == "repro.obs.metrics":
            modules.add(local)
        if (
            target.startswith("repro.obs")
            and target.rsplit(".", 1)[-1] in _METRIC_FUNCS
        ):
            helpers.add(local)
        if target == "repro.obs.metrics":
            modules.add(local)
    return modules, helpers


def _metric_calls(tree: ast.Module):
    """(call node, helper name, literal-or-None metric name) triples."""
    modules, helpers = _metric_aliases(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr not in _METRIC_FUNCS:
                continue
            if dotted_name(func.value) not in modules:
                continue
            kind = func.attr
        elif isinstance(func, ast.Name) and func.id in helpers:
            kind = func.id
        else:
            continue
        name_arg = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "name":
                name_arg = keyword.value
        yield node, kind, name_arg


def _literal_prefix(name_arg: Optional[ast.expr]) -> tuple[str, bool]:
    """(text, is_complete) for a metric-name argument: a plain constant is
    complete; an f-string contributes only its leading literal part."""
    if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
        return name_arg.value, True
    if isinstance(name_arg, ast.JoinedStr) and name_arg.values:
        first = name_arg.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value, False
    return "", False


@register_checker
class MetricNameConvention(Checker):
    code = "RPR301"
    name = "metric-name-convention"
    summary = (
        "metric name outside the canonical dotted.snake namespaces from "
        "docs/observability.md"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return
        namespaces: Optional[frozenset] = None
        for node, kind, name_arg in _metric_calls(module.tree):
            text, complete = _literal_prefix(name_arg)
            if not text or (not complete and "." not in text):
                continue
            if namespaces is None:
                namespaces = _documented_namespaces(module.path)
            namespace = text.split(".")[0]
            if complete and not _NAME_SHAPE.match(text):
                yield self.finding(
                    module, node,
                    f"metric name {text!r} is not dotted.snake "
                    "(namespace.metric_name, lowercase)",
                )
            elif namespace not in namespaces:
                yield self.finding(
                    module, node,
                    f"metric namespace {namespace!r} (in {kind}({text!r}"
                    f"{'' if complete else '…'})) is not documented in "
                    f"docs/observability.md; known: {sorted(namespaces)}",
                )


def _negative_constant(node: Optional[ast.expr]) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
        return isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        )
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and node.value < 0
    )


@register_checker
class MonotonicMetricMisuse(Checker):
    code = "RPR302"
    name = "monotonic-metric-misuse"
    summary = (
        "counter decremented or gauge .inc()'d — counters are monotonic, "
        "gauges are last-write-wins (.set)"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return
        for node, kind, _ in _metric_calls(module.tree):
            if kind == "inc":
                amount = node.args[1] if len(node.args) > 1 else None
                for keyword in node.keywords:
                    if keyword.arg == "amount":
                        amount = keyword.value
                if _negative_constant(amount):
                    yield self.finding(
                        module, node,
                        "counters are monotonic; inc() with a negative "
                        "amount hides work instead of counting it — use a "
                        "gauge for levels",
                    )
        # method calls on counter(...)/gauge(...) results
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            receiver = node.func.value
            if not isinstance(receiver, ast.Call):
                continue
            maker = call_name(receiver)
            if maker == "counter" and node.func.attr in ("dec", "set"):
                yield self.finding(
                    module, node,
                    f"counter(...).{node.func.attr}() breaks monotonicity; "
                    "a value that goes down (or jumps) is a gauge",
                )
            elif maker == "counter" and node.func.attr == "inc" and (
                node.args and _negative_constant(node.args[0])
            ):
                yield self.finding(
                    module, node,
                    "counter(...).inc(negative) breaks monotonicity; use a "
                    "gauge for levels",
                )
            elif maker == "gauge" and node.func.attr in ("inc", "dec"):
                yield self.finding(
                    module, node,
                    f"gauge(...).{node.func.attr}() — gauges are "
                    "last-write-wins; compute the level and .set() it",
                )


def _literal_registrations(tree: ast.Module):
    """Literal ``register(kind, name)`` / ``register_<kind>(name)`` uses."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        kind = value = None
        if name == "register" and len(node.args) >= 2:
            if all(
                isinstance(a, ast.Constant) and isinstance(a.value, str)
                for a in node.args[:2]
            ):
                kind, value = node.args[0].value, node.args[1].value
        elif name.startswith("register_") and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                kind, value = name[len("register_"):], arg.value
        if kind is not None:
            yield node, kind, value


@register_checker
class DuplicateRegistryName(Checker):
    code = "RPR303"
    name = "duplicate-registry-name"
    summary = (
        "the same (kind, name) registered twice across modules — the "
        "second import dies with PipelineError at runtime"
    )

    def __init__(self):
        self._seen: dict[tuple[str, str], tuple[str, int]] = {}
        self._duplicates: list[Finding] = []

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return ()
        for node, kind, value in _literal_registrations(module.tree):
            key = (kind, value)
            if key in self._seen:
                first_file, first_line = self._seen[key]
                self._duplicates.append(self.finding(
                    module, node,
                    f"{kind} {value!r} is already registered at "
                    f"{first_file}:{first_line}; duplicate registration "
                    "raises PipelineError on import",
                ))
            else:
                self._seen[key] = (module.relpath, node.lineno)
        return ()

    def finish(self) -> Iterable[Finding]:
        return self._duplicates


@register_checker
class CliChoicesDrift(Checker):
    code = "RPR304"
    name = "cli-choices-drift"
    severity = Severity.WARNING
    summary = (
        "literal argparse choices= list missing names from the registry "
        "it mirrors — use available(kind) instead of a hand copy"
    )

    def __init__(self):
        self._registered: dict[str, set[str]] = {}
        self._choices: list[tuple[ModuleUnderLint, ast.Call, str, set]] = []

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return ()
        for _, kind, value in _literal_registrations(module.tree):
            self._registered.setdefault(kind, set()).add(value)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and call_name(node) == "add_argument"
            ):
                flag = ""
                if node.args and isinstance(node.args[0], ast.Constant):
                    flag = str(node.args[0].value)
                for keyword in node.keywords:
                    if keyword.arg != "choices":
                        continue
                    if isinstance(keyword.value, (ast.List, ast.Tuple)):
                        if any(
                            isinstance(e, ast.Starred)
                            for e in keyword.value.elts
                        ):
                            # ["", *available("defense")] is already
                            # registry-derived — nothing to drift.
                            continue
                        literals = {
                            e.value for e in keyword.value.elts
                            if isinstance(e, ast.Constant)
                            and isinstance(e.value, str)
                        }
                        if literals:
                            self._choices.append(
                                (module, node, flag, literals)
                            )
        return ()

    def finish(self) -> Iterable[Finding]:
        for module, node, flag, literals in self._choices:
            flag_text = flag.lstrip("-").replace("-", "_").lower()
            for kind, registered in sorted(self._registered.items()):
                named_after_kind = kind in flag_text or (
                    flag_text and flag_text.rstrip("s") in kind
                )
                overlap = literals & registered
                # Enough overlap (or an explicit name match) says this list
                # mirrors the registry; "none" alone matching two kinds
                # must not.
                if not named_after_kind and len(overlap) < max(
                    2, len(registered) // 2
                ):
                    continue
                missing = registered - literals
                if missing:
                    yield self.finding(
                        module, node,
                        f"choices for {flag or 'argument'} is missing "
                        f"registered {kind} name(s) {sorted(missing)}; "
                        f"derive it from available({kind!r}) so plugins "
                        "stay addressable",
                    )


_BUILTIN_MARKS = frozenset({
    "parametrize", "skip", "skipif", "xfail", "usefixtures",
    "filterwarnings",
})


def _registered_markers(start: Path) -> Optional[frozenset]:
    """Marker names from the nearest pytest.ini (None when there is none)."""
    ini = find_upward(start, "pytest.ini")
    if ini is None:
        return None
    parser = configparser.ConfigParser()
    try:
        parser.read(ini)
        raw = parser.get("pytest", "markers", fallback="")
    except configparser.Error:
        return None
    names = set()
    for line in raw.splitlines():
        line = line.strip()
        if line:
            names.add(line.split(":")[0].strip().split("(")[0])
    return frozenset(names)


@register_checker
class UnregisteredPytestMark(Checker):
    code = "RPR305"
    name = "unregistered-pytest-mark"
    summary = (
        "@pytest.mark.<name> not registered under `markers =` in "
        "pytest.ini — typo'd marks select nothing, silently"
    )

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if module.tree is None:
            return
        marks = [
            (node, node.attr)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Attribute)
            and dotted_name(node.value) == "pytest.mark"
        ]
        if not marks:
            return
        registered = _registered_markers(module.path)
        for node, mark in marks:
            if mark in _BUILTIN_MARKS:
                continue
            if registered is None:
                yield self.finding(
                    module, node,
                    f"@pytest.mark.{mark} used but no pytest.ini with a "
                    "`markers =` section was found above this file",
                )
            elif mark not in registered:
                yield self.finding(
                    module, node,
                    f"@pytest.mark.{mark} is not registered in pytest.ini "
                    f"(markers = {sorted(registered)}); register it or fix "
                    "the typo — unknown marks deselect silently",
                )
