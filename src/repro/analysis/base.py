"""Checker base class, rule registry, and the per-file AST container.

The registry mirrors :mod:`repro.pipeline.registry`'s idiom — a decorator
that fails loudly on duplicates — so adding a rule is one decorated class::

    @register_checker
    class MyRule(Checker):
        code = "RPR199"
        name = "my-rule"
        summary = "what it catches"

        def check_module(self, module):
            ...yield self.finding(module, node, "message")

Checkers are instantiated fresh per lint run: per-file rules implement
:meth:`Checker.check_module`, project-wide rules accumulate state there
and emit from :meth:`Checker.finish` after every file has been visited.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Type

from repro.analysis.findings import Finding, Severity
from repro.errors import AnalysisError

#: Inline suppression pragma: ``# lint: ignore[RPR203]`` on the offending
#: line (comma-separate several codes; bare ``# lint: ignore`` mutes all).
#: Prefer the baseline file for grandfathered findings — pragmas are for
#: lines whose justification belongs next to the code.
_PRAGMA = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Z0-9, ]+)\])?")


@dataclass
class ModuleUnderLint:
    """One parsed source file handed to every checker."""

    path: Path
    relpath: str
    text: str
    lines: list[str] = field(default_factory=list)
    tree: Optional[ast.Module] = None
    parse_error: str = ""

    @classmethod
    def load(cls, path: Path, relpath: str) -> "ModuleUnderLint":
        text = path.read_text(encoding="utf-8", errors="replace")
        module = cls(path=path, relpath=relpath, text=text,
                     lines=text.splitlines())
        try:
            module.tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            module.parse_error = f"{exc.msg} (line {exc.lineno})"
        return module

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, code: str) -> bool:
        """True when ``lineno`` carries a pragma muting ``code``."""
        match = _PRAGMA.search(self.source_line(lineno))
        if not match:
            return False
        listed = match.group(1)
        if listed is None:
            return True
        return code in {c.strip() for c in listed.split(",")}


class Checker:
    """Base class for one lint rule.

    Class attributes pin the rule's identity (``code``), display name,
    default severity and one-line ``summary`` (shown by
    ``repro lint --list-rules`` and the docs catalogue).
    """

    code: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check_module(self, module: ModuleUnderLint) -> Iterable[Finding]:
        """Per-file pass; yield findings for ``module``."""
        return ()

    def finish(self) -> Iterable[Finding]:
        """Project-wide pass, called once after every module."""
        return ()

    def finding(
        self,
        module: ModuleUnderLint,
        node: "ast.AST | int",
        message: str,
    ) -> Finding:
        """Build a finding for ``node`` (an AST node or a line number)."""
        line = node if isinstance(node, int) else node.lineno
        col = 0 if isinstance(node, int) else node.col_offset
        return Finding(
            file=module.relpath,
            line=line,
            col=col,
            code=self.code,
            severity=self.severity,
            message=message,
            source=module.source_line(line),
        )


_CHECKERS: dict[str, Type[Checker]] = {}

_CODE_SHAPE = re.compile(r"^RPR\d{3}$")


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Register a rule class under its ``code`` (duplicates fail loudly)."""
    if not _CODE_SHAPE.match(cls.code or ""):
        raise AnalysisError(
            f"checker {cls.__name__} needs a code like 'RPR101', "
            f"got {cls.code!r}"
        )
    if cls.code in _CHECKERS:
        raise AnalysisError(
            f"duplicate rule code {cls.code}: {cls.__name__} vs "
            f"{_CHECKERS[cls.code].__name__}"
        )
    _CHECKERS[cls.code] = cls
    return cls


def available_rules() -> list[Type[Checker]]:
    """Registered rule classes sorted by code."""
    _load_builtin_checkers()
    return [_CHECKERS[code] for code in sorted(_CHECKERS)]


def rule_selected(code: str, select: tuple, ignore: tuple) -> bool:
    """Apply ``--select``/``--ignore`` prefix patterns to a rule code.

    Patterns match whole codes or prefixes — ``RPR1`` selects the whole
    determinism family (a trailing run of ``x`` wildcards is accepted, so
    ``RPR1xx`` reads naturally too).  An empty ``select`` means all rules.
    """

    def matches(patterns: tuple) -> bool:
        return any(code.startswith(p.rstrip("xX")) for p in patterns if p)

    if select and not matches(select):
        return False
    return not matches(ignore)


def create_checkers(
    select: tuple = (), ignore: tuple = ()
) -> list[Checker]:
    """Fresh instances of every selected rule."""
    return [
        cls()
        for cls in available_rules()
        if rule_selected(cls.code, select, ignore)
    ]


def _load_builtin_checkers() -> None:
    # Import-for-effect mirrors how pipeline stages self-register; the
    # local import breaks the base <-> checkers cycle.
    from repro.analysis import checkers  # noqa: F401


# -- shared AST helpers used by several rule families ----------------------


def attach_parents(tree: ast.AST) -> None:
    """Stamp ``_repro_parent`` on every node so rules can walk upward."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def ancestors(node: ast.AST) -> Iterable[ast.AST]:
    current = getattr(node, "_repro_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_repro_parent", None)


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(call: ast.Call) -> str:
    """The called function's trailing name (``foo`` for ``a.b.foo(...)``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def module_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> imported module path (``import numpy.random as npr``
    maps ``npr`` to ``numpy.random``; ``from repro.obs import metrics as m``
    maps ``m`` to ``repro.obs.metrics``)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def find_upward(start: Path, name: str) -> Optional[Path]:
    """Nearest ``name`` in ``start``'s ancestor directories (or None)."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / name
        if candidate.exists():
            return candidate
    return None
