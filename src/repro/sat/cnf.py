"""CNF containers and Tseitin encodings of circuits.

A :class:`Cnf` holds clauses over DIMACS-style variables (positive integers
starting at 1; a negative literal is the complemented phase).  The Tseitin
encoders translate an :class:`~repro.aig.aig.Aig` or a gate-level
:class:`~repro.netlist.netlist.Netlist` into a :class:`CircuitCnf`, which
pairs the clause set with name-indexed variable maps so callers can
constrain primary inputs/outputs, share input variables between circuit
copies (the SAT attack encodes the locked circuit twice over one set of
functional inputs), and decode solver models back to net values.

Encodings are full Tseitin (both implication directions), so any literal —
input, internal or output — may be constrained to either polarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.aig.aig import CONST_VAR, Aig, lit_var
from repro.errors import SatError
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


class Cnf:
    """A growable clause database over DIMACS-style variables."""

    def __init__(self, num_vars: int = 0):
        if num_vars < 0:
            raise SatError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.clauses: list[tuple[int, ...]] = []

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Iterable[int]) -> None:
        """Append a clause; literals must reference allocated variables."""
        clause = tuple(lits)
        for lit in clause:
            if lit == 0:
                raise SatError("literal 0 is reserved for the DIMACS terminator")
            if abs(lit) > self.num_vars:
                raise SatError(
                    f"literal {lit} references unallocated variable "
                    f"(have {self.num_vars})"
                )
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    # -- DIMACS ---------------------------------------------------------------

    def to_dimacs(self, comments: Sequence[str] = ()) -> str:
        """Serialize to DIMACS CNF text."""
        lines = [f"c {comment}" for comment in comments]
        lines.append(f"p cnf {self.num_vars} {len(self.clauses)}")
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"Cnf(vars={self.num_vars}, clauses={len(self.clauses)})"


def cnf_from_dimacs(text: str) -> Cnf:
    """Parse DIMACS CNF text (comments tolerated anywhere) into a :class:`Cnf`."""
    cnf: Optional[Cnf] = None
    declared_clauses = 0
    pending: list[int] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            if cnf is not None:
                raise SatError(f"line {line_number}: duplicate problem line")
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SatError(f"line {line_number}: malformed problem line {line!r}")
            try:
                num_vars, declared_clauses = int(parts[2]), int(parts[3])
            except ValueError as exc:
                raise SatError(f"line {line_number}: {exc}") from exc
            cnf = Cnf(num_vars)
            continue
        if cnf is None:
            raise SatError(f"line {line_number}: clause before problem line")
        try:
            values = [int(token) for token in line.split()]
        except ValueError as exc:
            raise SatError(f"line {line_number}: {exc}") from exc
        for value in values:
            if value == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(value)
    if cnf is None:
        raise SatError("no problem line in DIMACS input")
    if pending:
        raise SatError("unterminated clause at end of DIMACS input")
    if len(cnf.clauses) != declared_clauses:
        raise SatError(
            f"problem line declares {declared_clauses} clauses, "
            f"found {len(cnf.clauses)}"
        )
    return cnf


# -- circuit encodings --------------------------------------------------------


@dataclass
class CircuitCnf:
    """A circuit's Tseitin encoding with its variable maps.

    ``inputs`` maps primary-input names to (positive) CNF variables;
    ``outputs`` maps primary-output names to signed literals; ``lits`` maps
    every encoded signal — net names for netlists, live variable ids for
    AIGs — to its signed literal.
    """

    cnf: Cnf
    inputs: dict[str, int] = field(default_factory=dict)
    outputs: dict[str, int] = field(default_factory=dict)
    lits: dict = field(default_factory=dict)

    def input_model(self, model: Mapping[int, bool]) -> dict[str, int]:
        """Decode a solver model into 0/1 values for the primary inputs."""
        return {
            name: int(model.get(var, False))
            for name, var in self.inputs.items()
        }


def add_and_clauses(cnf: Cnf, y: int, operands: Sequence[int]) -> None:
    """Constrain ``y == AND(operands)`` (signed literals)."""
    for lit in operands:
        cnf.add_clause((-y, lit))
    cnf.add_clause((y, *(-lit for lit in operands)))


def add_or_clauses(cnf: Cnf, y: int, operands: Sequence[int]) -> None:
    """Constrain ``y == OR(operands)`` (signed literals)."""
    for lit in operands:
        cnf.add_clause((y, -lit))
    cnf.add_clause((-y, *operands))


def add_xor_clauses(cnf: Cnf, y: int, a: int, b: int) -> None:
    """Constrain ``y == a XOR b`` (signed literals)."""
    cnf.add_clause((-y, a, b))
    cnf.add_clause((-y, -a, -b))
    cnf.add_clause((y, -a, b))
    cnf.add_clause((y, a, -b))


def add_mux_clauses(cnf: Cnf, y: int, sel: int, a: int, b: int) -> None:
    """Constrain ``y == (b if sel else a)`` (signed literals)."""
    cnf.add_clause((-y, -sel, b))
    cnf.add_clause((y, -sel, -b))
    cnf.add_clause((-y, sel, a))
    cnf.add_clause((y, sel, -a))


class _ConstPool:
    """Lazily allocated constant-FALSE variable (one unit clause)."""

    def __init__(self, cnf: Cnf):
        self._cnf = cnf
        self._false: Optional[int] = None

    def false_lit(self) -> int:
        if self._false is None:
            self._false = self._cnf.new_var()
            self._cnf.add_clause((-self._false,))
        return self._false

    def true_lit(self) -> int:
        return -self.false_lit()


def tseitin_aig(
    aig: Aig,
    cnf: Optional[Cnf] = None,
    input_vars: Optional[Mapping[str, int]] = None,
) -> CircuitCnf:
    """Tseitin-encode an AIG's primary-output cone.

    ``cnf`` lets callers accumulate several circuits into one clause set;
    ``input_vars`` pre-assigns CNF variables to primary inputs *by name*, so
    two encodings can share inputs (miters, attack copies).  Unlisted inputs
    get fresh variables.
    """
    cnf = cnf if cnf is not None else Cnf()
    shared = dict(input_vars) if input_vars else {}
    consts = _ConstPool(cnf)
    lits: dict[int, int] = {}
    inputs: dict[str, int] = {}
    for var, name in zip(aig.pi_vars(), aig.pi_names()):
        cnf_var = shared.get(name)
        if cnf_var is None:
            cnf_var = cnf.new_var()
        inputs[name] = cnf_var
        lits[var] = cnf_var

    def signed(aig_lit: int) -> int:
        var = lit_var(aig_lit)
        if var == CONST_VAR:
            base = consts.false_lit()
        else:
            base = lits[var]
        return -base if aig_lit & 1 else base

    for var in aig.topological_ands(roots=aig.po_lits()):
        f0, f1 = aig.fanins(var)
        y = cnf.new_var()
        add_and_clauses(cnf, y, (signed(f0), signed(f1)))
        lits[var] = y
    outputs = {
        name: signed(po) for po, name in zip(aig.po_lits(), aig.po_names())
    }
    return CircuitCnf(cnf=cnf, inputs=inputs, outputs=outputs, lits=dict(lits))


def _fold_xor(cnf: Cnf, operands: Sequence[int]) -> int:
    """Chain ``operands`` into one signed literal computing their XOR."""
    acc = operands[0]
    for lit in operands[1:]:
        y = cnf.new_var()
        add_xor_clauses(cnf, y, acc, lit)
        acc = y
    return acc


def tseitin_netlist(
    netlist: Netlist,
    cnf: Optional[Cnf] = None,
    input_vars: Optional[Mapping[str, int]] = None,
) -> CircuitCnf:
    """Tseitin-encode a gate-level netlist directly (no AIG round trip).

    Net names survive into the variable maps, so locking-specific nets
    (``keyinput*``) stay addressable — which is what the SAT attack needs to
    tie or split key variables between circuit copies.  ``input_vars``
    shares primary-input variables exactly as in :func:`tseitin_aig`.
    """
    cnf = cnf if cnf is not None else Cnf()
    shared = dict(input_vars) if input_vars else {}
    consts = _ConstPool(cnf)
    lits: dict[str, int] = {}
    inputs: dict[str, int] = {}
    for net in netlist.inputs:
        var = shared.get(net)
        if var is None:
            var = cnf.new_var()
        inputs[net] = var
        lits[net] = var

    for gate in netlist.topological_gates():
        ins = [lits[n] for n in gate.inputs]
        kind = gate.gate_type
        if kind is GateType.CONST0:
            lits[gate.output] = consts.false_lit()
        elif kind is GateType.CONST1:
            lits[gate.output] = consts.true_lit()
        elif kind is GateType.BUF:
            lits[gate.output] = ins[0]
        elif kind is GateType.NOT:
            lits[gate.output] = -ins[0]
        elif kind in (GateType.AND, GateType.NAND):
            y = cnf.new_var()
            add_and_clauses(cnf, y, ins)
            lits[gate.output] = -y if kind is GateType.NAND else y
        elif kind in (GateType.OR, GateType.NOR):
            y = cnf.new_var()
            add_or_clauses(cnf, y, ins)
            lits[gate.output] = -y if kind is GateType.NOR else y
        elif kind in (GateType.XOR, GateType.XNOR):
            y = _fold_xor(cnf, ins)
            lits[gate.output] = -y if kind is GateType.XNOR else y
        elif kind is GateType.MUX:
            y = cnf.new_var()
            add_mux_clauses(cnf, y, ins[0], ins[1], ins[2])
            lits[gate.output] = y
        else:  # pragma: no cover - GateType is closed
            raise SatError(f"cannot encode gate type {kind}")
    outputs = {net: lits[net] for net in netlist.outputs}
    return CircuitCnf(cnf=cnf, inputs=inputs, outputs=outputs, lits=dict(lits))
