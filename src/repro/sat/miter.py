"""Miter construction and SAT-based combinational equivalence checking.

A *miter* joins two circuits over shared primary inputs and ORs the XORs of
their paired outputs: the miter output is 1 exactly on input patterns where
the circuits disagree.  :func:`check_equivalence` encodes the miter to CNF,
asks the CDCL solver for a disagreeing pattern, and returns either a proof
of equivalence (UNSAT) or a concrete counterexample — which is re-simulated
through :mod:`repro.aig.simulate` before being reported, so a returned
counterexample is always a *verified* functional difference.

Before encoding anything, a packed random-simulation prefilter pushes
``prefilter_width`` patterns through the miter in uint64 lanes; any set bit
of the ``diff`` output is already a counterexample, so grossly inequivalent
pairs never pay for CNF construction or a solver run.  Only the UNSAT-ish
hard cases — equivalent circuits, or differences on a vanishing input
fraction — reach the solver.

This is the exact complement of the randomized
:func:`repro.aig.simulate.functionally_equal`: same question, proof instead
of sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.aig.aig import Aig, lit_var
from repro.aig.build import aig_from_netlist
from repro.aig.simulate import (
    po_lanes,
    po_words,
    simulate_lanes,
    simulate_words,
    word_to_lanes,
)
from repro.errors import SatError
from repro.netlist.netlist import Netlist
from repro.sat.cnf import tseitin_aig
from repro.sat.solver import CdclSolver
from repro.utils.rng import make_rng

Circuit = Union[Aig, Netlist]


@dataclass
class EquivalenceResult:
    """Verdict of a SAT equivalence check.

    ``counterexample`` maps primary-input names to 0/1 for a disagreeing
    pattern (None when equivalent); ``outputs_first``/``outputs_second`` give
    each circuit's named output values under that pattern.
    """

    equivalent: bool
    counterexample: Optional[dict[str, int]] = None
    outputs_first: Optional[dict[str, int]] = None
    outputs_second: Optional[dict[str, int]] = None
    stats: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.equivalent


def _as_aig(circuit: Circuit) -> Aig:
    if isinstance(circuit, Netlist):
        return aig_from_netlist(circuit)
    return circuit


def _copy_into(miter: Aig, source: Aig, pi_lits: dict[str, int]) -> list[int]:
    """Rebuild ``source``'s PO cone inside ``miter`` over shared PI literals."""
    mapping: dict[int, int] = {0: 0}
    for var, name in zip(source.pi_vars(), source.pi_names()):
        mapping[var] = pi_lits[name]
    for var in source.topological_ands(roots=source.po_lits()):
        f0, f1 = source.fanins(var)
        l0 = mapping[lit_var(f0)] ^ (f0 & 1)
        l1 = mapping[lit_var(f1)] ^ (f1 & 1)
        mapping[var] = miter.add_and(l0, l1)
    return [mapping[lit_var(po)] ^ (po & 1) for po in source.po_lits()]


def _match_outputs(first: Aig, second: Aig) -> list[tuple[int, int]]:
    """Pair up PO indices, by name when both sides name the same set."""
    if first.num_pos != second.num_pos:
        raise SatError(
            f"output count mismatch: {first.num_pos} vs {second.num_pos}"
        )
    names_a, names_b = first.po_names(), second.po_names()
    if sorted(names_a) == sorted(names_b) and len(set(names_a)) == len(names_a):
        index_b = {name: i for i, name in enumerate(names_b)}
        return [(i, index_b[name]) for i, name in enumerate(names_a)]
    return [(i, i) for i in range(first.num_pos)]


def build_miter(first: Circuit, second: Circuit) -> Aig:
    """Single-output miter AIG of two circuits with identical PI name sets.

    The miter's PO (named ``diff``) is 1 iff some paired primary output
    differs.  Outputs are paired by name when possible, by index otherwise.
    """
    aig_a, aig_b = _as_aig(first), _as_aig(second)
    if set(aig_a.pi_names()) != set(aig_b.pi_names()):
        only_a = set(aig_a.pi_names()) - set(aig_b.pi_names())
        only_b = set(aig_b.pi_names()) - set(aig_a.pi_names())
        raise SatError(
            f"primary-input mismatch: only-first={sorted(only_a)}, "
            f"only-second={sorted(only_b)}"
        )
    pairs = _match_outputs(aig_a, aig_b)
    miter = Aig(f"miter({aig_a.name},{aig_b.name})")
    pi_lits = {name: miter.add_pi(name) for name in aig_a.pi_names()}
    pos_a = _copy_into(miter, aig_a, pi_lits)
    pos_b = _copy_into(miter, aig_b, pi_lits)
    diffs = [miter.add_xor(pos_a[i], pos_b[j]) for i, j in pairs]
    miter.add_po(miter.add_many_or(diffs), "diff")
    return miter


def _prefilter_counterexample(
    miter: Aig, width: int, seed: int
) -> Optional[dict[str, int]]:
    """Packed random simulation of the miter; first differing pattern or None.

    The returned pattern is the lowest-indexed random pattern whose
    ``diff`` bit is set — deterministic for a fixed seed.
    """
    rng = make_rng(seed)
    pi_lanes = {
        var: word_to_lanes(
            int.from_bytes(rng.bytes((width + 7) // 8), "big"), width
        )
        for var in miter.pi_vars()
    }
    lanes = simulate_lanes(miter, pi_lanes, width)
    diff = po_lanes(miter, lanes, width)[0]
    hits = np.nonzero(diff)[0]
    if hits.size == 0:
        return None
    lane = int(hits[0])
    word = int(diff[lane])
    offset = (word & -word).bit_length() - 1
    return {
        name: (int(pi_lanes[var][lane]) >> offset) & 1
        for var, name in zip(miter.pi_vars(), miter.pi_names())
    }


def _output_values(aig: Aig, pattern: dict[str, int]) -> list[int]:
    pi_words = {
        var: pattern[name] & 1
        for var, name in zip(aig.pi_vars(), aig.pi_names())
    }
    words = simulate_words(aig, pi_words, width=1)
    return po_words(aig, words, width=1)


def _verified_counterexample(
    aig_a: Aig, aig_b: Aig, pattern: dict[str, int], stats: dict
) -> EquivalenceResult:
    """Re-simulate a claimed counterexample; raise if it is spurious."""
    values_a = _output_values(aig_a, pattern)
    values_b = _output_values(aig_b, pattern)
    pairs = _match_outputs(aig_a, aig_b)
    if all(values_a[i] == values_b[j] for i, j in pairs):
        raise SatError(
            "solver produced a spurious counterexample (encoder bug?)"
        )
    return EquivalenceResult(
        equivalent=False,
        counterexample=pattern,
        outputs_first=dict(zip(aig_a.po_names(), values_a)),
        outputs_second=dict(zip(aig_b.po_names(), values_b)),
        stats=stats,
    )


def check_equivalence(
    first: Circuit,
    second: Circuit,
    prefilter_width: int = 1024,
    prefilter_seed: int = 1,
) -> EquivalenceResult:
    """Prove two circuits combinationally equivalent or produce a witness.

    Accepts any mix of :class:`Aig` and :class:`Netlist`.  A packed
    random-simulation prefilter (``prefilter_width`` patterns; 0 disables
    it) catches easy differences without touching the solver.  UNSAT on
    the miter is a proof of equivalence; on SAT the distinguishing
    pattern is verified by simulation before being returned (a
    :class:`SatError` on that verification would indicate an
    encoder/solver bug).
    """
    aig_a, aig_b = _as_aig(first), _as_aig(second)
    miter = build_miter(aig_a, aig_b)
    if prefilter_width:
        pattern = _prefilter_counterexample(
            miter, prefilter_width, prefilter_seed
        )
        if pattern is not None:
            return _verified_counterexample(
                aig_a,
                aig_b,
                pattern,
                {"prefiltered": True, "prefilter_patterns": prefilter_width},
            )
    encoded = tseitin_aig(miter)
    solver = CdclSolver(encoded.cnf)
    solver.add_clause((encoded.outputs["diff"],))
    result = solver.solve()
    if not result.satisfiable:
        return EquivalenceResult(equivalent=True, stats=result.stats)
    assert result.model is not None
    pattern = encoded.input_model(result.model)
    return _verified_counterexample(aig_a, aig_b, pattern, result.stats)
